//! Butterworth IIR design (bilinear transform) and biquad-cascade filtering.
//!
//! The paper removes high-frequency ICG noise with a *"zero-phase low-pass
//! Butterworth filter with cut-off frequency f = 20 Hz"*. [`Butterworth`]
//! designs that filter as a cascade of second-order sections (biquads),
//! which is numerically far better conditioned than a single high-order
//! direct form; [`crate::zero_phase::filtfilt_iir`] then applies it
//! forward–backward for the zero-phase property.

use crate::DspError;

/// One second-order (or degenerate first-order) IIR section in direct form.
///
/// Transfer function `H(z) = (b0 + b1 z⁻¹ + b2 z⁻²) / (1 + a1 z⁻¹ + a2 z⁻²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Biquad {
    /// Numerator coefficient of z⁰.
    pub b0: f64,
    /// Numerator coefficient of z⁻¹.
    pub b1: f64,
    /// Numerator coefficient of z⁻².
    pub b2: f64,
    /// Denominator coefficient of z⁻¹ (a0 is normalised to 1).
    pub a1: f64,
    /// Denominator coefficient of z⁻².
    pub a2: f64,
}

impl Biquad {
    /// Identity (pass-through) section.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 0.0,
        }
    }

    /// A notch (band-reject) section at `f0` hertz with quality factor
    /// `q` (RBJ audio-EQ cookbook form) — the standard powerline filter
    /// for 50/60 Hz rejection.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFrequency`] for `f0` outside
    /// `(0, fs/2)` or [`DspError::InvalidParameter`] for a non-positive
    /// `q`.
    pub fn notch(f0: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        if !(f0 > 0.0 && f0 < fs / 2.0 && f0.is_finite()) {
            return Err(DspError::InvalidFrequency {
                frequency_hz: f0,
                sample_rate_hz: fs,
            });
        }
        if !(q > 0.0 && q.is_finite()) {
            return Err(DspError::InvalidParameter {
                name: "q",
                value: q,
                constraint: "must be positive and finite",
            });
        }
        let w = 2.0 * std::f64::consts::PI * f0 / fs;
        let alpha = w.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: 1.0 / a0,
            b1: -2.0 * w.cos() / a0,
            b2: 1.0 / a0,
            a1: -2.0 * w.cos() / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Filters `x` through this section (direct form II transposed),
    /// starting from zero state.
    ///
    /// Allocates the output vector; delegates to
    /// [`Biquad::filter_in_place`], so both paths are
    /// arithmetic-identical.
    #[must_use]
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.filter_in_place(&mut y);
        y
    }

    /// Filters the buffer through this section in place (direct form II
    /// transposed, zero initial state) without allocating.
    pub fn filter_in_place(&self, x: &mut [f64]) {
        let (mut s1, mut s2) = (0.0, 0.0);
        for xn in x.iter_mut() {
            let input = *xn;
            let yn = self.b0 * input + s1;
            s1 = self.b1 * input - self.a1 * yn + s2;
            s2 = self.b2 * input - self.a2 * yn;
            *xn = yn;
        }
    }

    /// Complex magnitude response at normalised angular frequency
    /// `omega = 2π f / fs`.
    #[must_use]
    pub fn magnitude_at_omega(&self, omega: f64) -> f64 {
        let (c1, s1) = (omega.cos(), omega.sin());
        let (c2, s2) = ((2.0 * omega).cos(), (2.0 * omega).sin());
        let num_re = self.b0 + self.b1 * c1 + self.b2 * c2;
        let num_im = -(self.b1 * s1 + self.b2 * s2);
        let den_re = 1.0 + self.a1 * c1 + self.a2 * c2;
        let den_im = -(self.a1 * s1 + self.a2 * s2);
        ((num_re * num_re + num_im * num_im) / (den_re * den_re + den_im * den_im)).sqrt()
    }

    /// `true` when both poles lie strictly inside the unit circle
    /// (Schur–Cohn / jury conditions for a quadratic).
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.a2.abs() < 1.0 && self.a1.abs() < 1.0 + self.a2
    }
}

/// A Butterworth filter realised as a cascade of [`Biquad`] sections.
///
/// # Example
///
/// The paper's ICG low-pass (20 Hz at fs = 250 Hz):
///
/// ```
/// use cardiotouch_dsp::iir::Butterworth;
///
/// # fn main() -> Result<(), cardiotouch_dsp::DspError> {
/// let lp = Butterworth::lowpass(4, 20.0, 250.0)?;
/// // −3 dB at the cut-off, maximally flat below it:
/// let g = lp.magnitude_at(20.0, 250.0);
/// assert!((g - 0.5_f64.sqrt()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Butterworth {
    sections: Vec<Biquad>,
    order: usize,
}

/// Band sense of a Butterworth design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Lowpass,
    Highpass,
}

impl Butterworth {
    /// Designs an order-`n` low-pass with cut-off `fc` hertz at sampling
    /// rate `fs` hertz, via analog prototype poles, frequency pre-warping
    /// and the bilinear transform.
    ///
    /// # Errors
    ///
    /// * [`DspError::InvalidOrder`] if `n == 0`;
    /// * [`DspError::InvalidFrequency`] if `fc` is not in `(0, fs/2)`.
    pub fn lowpass(n: usize, fc: f64, fs: f64) -> Result<Self, DspError> {
        Self::design(n, fc, fs, Kind::Lowpass)
    }

    /// Designs an order-`n` high-pass with cut-off `fc` hertz.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Butterworth::lowpass`].
    pub fn highpass(n: usize, fc: f64, fs: f64) -> Result<Self, DspError> {
        Self::design(n, fc, fs, Kind::Highpass)
    }

    /// Designs a band-pass as a cascade of an order-`n` high-pass at `f1`
    /// and an order-`n` low-pass at `f2` (each edge then shows the
    /// Butterworth −3 dB characteristic of its own order).
    ///
    /// # Errors
    ///
    /// * [`DspError::InvalidFrequency`] if `f1 >= f2` or either edge is
    ///   outside `(0, fs/2)`;
    /// * [`DspError::InvalidOrder`] if `n == 0`.
    pub fn bandpass(n: usize, f1: f64, f2: f64, fs: f64) -> Result<Self, DspError> {
        if f1 >= f2 {
            return Err(DspError::InvalidFrequency {
                frequency_hz: f1,
                sample_rate_hz: fs,
            });
        }
        let hp = Self::highpass(n, f1, fs)?;
        let lp = Self::lowpass(n, f2, fs)?;
        let mut sections = hp.sections;
        sections.extend(lp.sections);
        Ok(Self {
            sections,
            order: 2 * n,
        })
    }

    fn design(n: usize, fc: f64, fs: f64, kind: Kind) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::InvalidOrder {
                order: n,
                constraint: "must be positive",
            });
        }
        if !(fc.is_finite() && fs.is_finite()) || fc <= 0.0 || fc >= fs / 2.0 {
            return Err(DspError::InvalidFrequency {
                frequency_hz: fc,
                sample_rate_hz: fs,
            });
        }
        // Pre-warped analog cut-off and bilinear constant.
        let k = 2.0 * fs;
        let wc = k * (std::f64::consts::PI * fc / fs).tan();
        let mut sections = Vec::with_capacity(n.div_ceil(2));

        // Conjugate pole pairs of the normalised analog prototype:
        // s² + 2 sin(θ_i) s + 1 with θ_i = π (2i + 1) / (2n), i = 0..n/2.
        for i in 0..n / 2 {
            let theta = std::f64::consts::PI * (2.0 * i as f64 + 1.0) / (2.0 * n as f64);
            let q2 = 2.0 * theta.sin(); // = 2·ζ for this pair
                                        // Denominator after bilinear transform of
                                        // wc² / (s² + q2·wc·s + wc²):
            let a0 = k * k + q2 * wc * k + wc * wc;
            let a1 = (2.0 * wc * wc - 2.0 * k * k) / a0;
            let a2 = (k * k - q2 * wc * k + wc * wc) / a0;
            let (b0, b1, b2) = match kind {
                Kind::Lowpass => {
                    let g = wc * wc / a0;
                    (g, 2.0 * g, g)
                }
                Kind::Highpass => {
                    let g = k * k / a0;
                    (g, -2.0 * g, g)
                }
            };
            sections.push(Biquad { b0, b1, b2, a1, a2 });
        }

        // Real pole for odd orders: wc / (s + wc).
        if n % 2 == 1 {
            let a0 = k + wc;
            let a1 = (wc - k) / a0;
            let (b0, b1) = match kind {
                Kind::Lowpass => (wc / a0, wc / a0),
                Kind::Highpass => (k / a0, -k / a0),
            };
            sections.push(Biquad {
                b0,
                b1,
                b2: 0.0,
                a1,
                a2: 0.0,
            });
        }

        Ok(Self { sections, order: n })
    }

    /// The total filter order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Borrow the biquad sections of the cascade.
    #[must_use]
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Filters `x` causally through the cascade (zero initial state).
    ///
    /// The output has the group-delay distortion inherent to causal IIR
    /// filtering; the paper's processing uses
    /// [`crate::zero_phase::filtfilt_iir`] instead.
    ///
    /// Allocates the output vector; delegates to
    /// [`Butterworth::filter_in_place`], so both paths are
    /// arithmetic-identical.
    #[must_use]
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.filter_in_place(&mut y);
        y
    }

    /// Filters the buffer through the cascade in place without
    /// allocating: each biquad section runs over the buffer in sequence,
    /// exactly as the allocating path does.
    pub fn filter_in_place(&self, x: &mut [f64]) {
        for s in &self.sections {
            s.filter_in_place(x);
        }
    }

    /// Magnitude response at `f` hertz for sampling rate `fs`.
    #[must_use]
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * f / fs;
        self.sections
            .iter()
            .map(|s| s.magnitude_at_omega(omega))
            .product()
    }

    /// `true` when every section is stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    #[test]
    fn lowpass_minus_3db_at_cutoff() {
        for n in 1..=8 {
            let f = Butterworth::lowpass(n, 20.0, FS).unwrap();
            let g = f.magnitude_at(20.0, FS);
            assert!(
                (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9,
                "order {n}: gain at cutoff = {g}"
            );
        }
    }

    #[test]
    fn lowpass_dc_gain_unity() {
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        assert!((f.magnitude_at(0.0, FS) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_rolloff_increases_with_order() {
        let g2 = Butterworth::lowpass(2, 20.0, FS)
            .unwrap()
            .magnitude_at(40.0, FS);
        let g6 = Butterworth::lowpass(6, 20.0, FS)
            .unwrap()
            .magnitude_at(40.0, FS);
        assert!(g6 < g2);
        assert!(g2 < 0.3);
    }

    #[test]
    fn highpass_minus_3db_at_cutoff_and_blocks_dc() {
        let f = Butterworth::highpass(3, 5.0, FS).unwrap();
        assert!((f.magnitude_at(5.0, FS) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!(f.magnitude_at(0.0, FS) < 1e-12);
        assert!((f.magnitude_at(100.0, FS) - 1.0).abs() < 0.01);
    }

    #[test]
    fn bandpass_passes_centre_rejects_edges() {
        // Pan-Tompkins style 5–15 Hz.
        let f = Butterworth::bandpass(2, 5.0, 15.0, FS).unwrap();
        assert!(f.magnitude_at(9.0, FS) > 0.8);
        assert!(f.magnitude_at(0.5, FS) < 0.1);
        assert!(f.magnitude_at(60.0, FS) < 0.1);
    }

    #[test]
    fn bandpass_rejects_swapped_edges() {
        assert!(Butterworth::bandpass(2, 15.0, 5.0, FS).is_err());
    }

    #[test]
    fn all_designs_stable() {
        for n in 1..=10 {
            assert!(Butterworth::lowpass(n, 20.0, FS).unwrap().is_stable());
            assert!(Butterworth::highpass(n, 0.5, FS).unwrap().is_stable());
        }
    }

    #[test]
    fn section_count_matches_order() {
        assert_eq!(
            Butterworth::lowpass(4, 20.0, FS).unwrap().sections().len(),
            2
        );
        assert_eq!(
            Butterworth::lowpass(5, 20.0, FS).unwrap().sections().len(),
            3
        );
        assert_eq!(
            Butterworth::lowpass(1, 20.0, FS).unwrap().sections().len(),
            1
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Butterworth::lowpass(0, 20.0, FS).is_err());
        assert!(Butterworth::lowpass(4, 0.0, FS).is_err());
        assert!(Butterworth::lowpass(4, 125.0, FS).is_err());
        assert!(Butterworth::lowpass(4, f64::NAN, FS).is_err());
    }

    #[test]
    fn filter_attenuates_out_of_band_sine() {
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        // 60 Hz sine should be strongly attenuated after the transient.
        let x: Vec<f64> = (0..2000)
            .map(|n| (2.0 * std::f64::consts::PI * 60.0 * n as f64 / FS).sin())
            .collect();
        let y = f.filter(&x);
        let peak = y[500..].iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let expect = f.magnitude_at(60.0, FS);
        assert!(
            (peak - expect).abs() < 0.02,
            "peak {peak} vs expected {expect}"
        );
    }

    #[test]
    fn filter_passes_in_band_sine() {
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        let x: Vec<f64> = (0..2000)
            .map(|n| (2.0 * std::f64::consts::PI * 5.0 * n as f64 / FS).sin())
            .collect();
        let y = f.filter(&x);
        let peak = y[500..].iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.01);
    }

    #[test]
    fn notch_rejects_centre_passes_neighbours() {
        let n = Biquad::notch(50.0, 8.0, FS).unwrap();
        assert!(n.is_stable());
        let omega = |f: f64| 2.0 * std::f64::consts::PI * f / FS;
        assert!(n.magnitude_at_omega(omega(50.0)) < 1e-6);
        assert!(n.magnitude_at_omega(omega(40.0)) > 0.9);
        assert!(n.magnitude_at_omega(omega(60.0)) > 0.9);
        assert!((n.magnitude_at_omega(omega(5.0)) - 1.0).abs() < 0.01);
    }

    #[test]
    fn notch_q_controls_width() {
        let narrow = Biquad::notch(50.0, 20.0, FS).unwrap();
        let wide = Biquad::notch(50.0, 2.0, FS).unwrap();
        let omega = 2.0 * std::f64::consts::PI * 47.0 / FS;
        assert!(narrow.magnitude_at_omega(omega) > wide.magnitude_at_omega(omega));
    }

    #[test]
    fn notch_filters_out_mains_tone() {
        let n = Biquad::notch(50.0, 8.0, FS).unwrap();
        let x: Vec<f64> = (0..3000)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 8.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 50.0 * t).sin()
            })
            .collect();
        let y = n.filter(&x);
        let g50 = crate::spectrum::goertzel(&y[1000..], 50.0, FS)
            .unwrap()
            .magnitude();
        let g8 = crate::spectrum::goertzel(&y[1000..], 8.0, FS)
            .unwrap()
            .magnitude();
        assert!(g8 > 50.0 * g50, "8 Hz {g8} vs residual 50 Hz {g50}");
    }

    #[test]
    fn notch_rejects_bad_params() {
        assert!(Biquad::notch(0.0, 8.0, FS).is_err());
        assert!(Biquad::notch(130.0, 8.0, FS).is_err());
        assert!(Biquad::notch(50.0, 0.0, FS).is_err());
    }

    #[test]
    fn biquad_identity_is_transparent() {
        let x = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(Biquad::identity().filter(&x), x.to_vec());
    }

    #[test]
    fn biquad_stability_check() {
        assert!(Biquad::identity().is_stable());
        let unstable = Biquad {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: -2.1,
            a2: 1.05,
        };
        assert!(!unstable.is_stable());
    }
}
