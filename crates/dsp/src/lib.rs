//! Signal-processing substrate for the `cardiotouch` workspace.
//!
//! This crate implements, from scratch, every DSP kernel the touch-based
//! ICG/ECG system of Sopic et al. (DATE 2016) relies on:
//!
//! * windowed-sinc **FIR design** ([`fir`]) — the paper's 32nd-order
//!   0.05–40 Hz ECG bandpass;
//! * **Butterworth IIR design** via bilinear transform ([`iir`]) — the
//!   paper's 20 Hz ICG low-pass;
//! * **zero-phase (forward–backward) filtering** ([`zero_phase`]) so that
//!   characteristic-point timing is not skewed by group delay;
//! * 1-D **morphological filtering** ([`morph`]) for ECG baseline-wander
//!   estimation (Sun, Chan & Krishnan, 2002);
//! * discrete **derivatives** ([`diff`]) used by the B- and X-point rules;
//! * peak/zero-crossing/sign-pattern utilities ([`peaks`]);
//! * descriptive **statistics** ([`stats`]) including the Pearson
//!   correlation used for the paper's Tables II–IV;
//! * a small **spectrum** toolbox ([`spectrum`]) used mainly to verify
//!   designed filters against their specifications;
//! * linear **resampling** helpers ([`resample`]).
//!
//! All routines operate on `&[f64]` slices and return owned `Vec<f64>`
//! results; they are `Send + Sync` and usable from multi-threaded
//! experiment runners. The hot kernels additionally expose
//! zero-allocation entry points (`filter_into`, `filter_in_place`, the
//! `filtfilt_*_into` family with [`zero_phase::ZeroPhaseScratch`]) that
//! reuse caller-owned buffers, and [`design_cache`] memoises filter
//! designs process-wide so repeated constructions share coefficients.
//!
//! # Example
//!
//! Design the paper's ICG low-pass and apply it with zero phase:
//!
//! ```
//! use cardiotouch_dsp::iir::Butterworth;
//! use cardiotouch_dsp::zero_phase::filtfilt_iir;
//!
//! # fn main() -> Result<(), cardiotouch_dsp::DspError> {
//! let fs = 250.0;
//! let lp = Butterworth::lowpass(4, 20.0, fs)?;
//! let x: Vec<f64> = (0..500).map(|n| (n as f64 * 0.1).sin()).collect();
//! let y = filtfilt_iir(&lp, &x)?;
//! assert_eq!(y.len(), x.len());
//! # Ok(())
//! # }
//! ```

pub mod design_cache;
pub mod diff;
pub mod fir;
pub mod fixed;
pub mod iir;
pub mod morph;
pub mod optimize;
pub mod peaks;
pub mod resample;
pub mod spectrum;
pub mod stats;
pub mod streaming;
pub mod wavelet;
pub mod window;
pub mod zero_phase;

mod error;

pub use error::DspError;
