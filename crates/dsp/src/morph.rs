//! 1-D grayscale morphological filtering.
//!
//! The paper removes ECG baseline wander with the morphological method of
//! Sun, Chan & Krishnan (2002) \[21\]: *"It first applies an erosion followed
//! by a dilation, which removes peaks in the signal. Then, the resultant
//! waveforms with pits are removed by a dilation followed by an erosion.
//! The final result is an estimate of the baseline drift."* That is an
//! opening followed by a closing, with flat structuring elements sized to
//! straddle the widest in-beat feature. [`estimate_baseline`] implements
//! exactly that pipeline and [`remove_baseline`] subtracts the estimate.
//!
//! Erosion and dilation use the van Herk/Gil–Werman sliding-window
//! min/max algorithm, which is O(n) regardless of element length — this is
//! what makes the method viable on a 32 MHz STM32L151.

use crate::DspError;
use std::collections::VecDeque;

/// Flat (all-zero) structuring element of odd length, described by its
/// half-width. A `FlatElement::new(k)` spans `2k + 1` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlatElement {
    half_width: usize,
}

impl FlatElement {
    /// Element spanning `2 * half_width + 1` samples.
    #[must_use]
    pub fn new(half_width: usize) -> Self {
        Self { half_width }
    }

    /// Element sized to span `duration_s` seconds at sampling rate `fs`
    /// (rounded to the nearest odd sample count).
    #[must_use]
    pub fn from_duration(duration_s: f64, fs: f64) -> Self {
        let len = (duration_s * fs).round().max(1.0) as usize;
        Self {
            half_width: len / 2,
        }
    }

    /// Half-width in samples.
    #[must_use]
    pub fn half_width(&self) -> usize {
        self.half_width
    }

    /// Full length in samples (always odd).
    #[must_use]
    pub fn len(&self) -> usize {
        2 * self.half_width + 1
    }

    /// `true` only for the degenerate single-sample element.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Sliding-window extremum with a monotonic deque; `cmp` returns `true`
/// when the first argument should *evict* the second from the deque
/// (i.e. `a <= b` for erosion/min, `a >= b` for dilation/max). Edge
/// handling clamps the window to the signal (equivalent to padding with
/// replicated border values, which is the standard choice for baseline
/// estimation).
fn sliding_extremum(x: &[f64], k: usize, keep_min: bool) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let mut dq: VecDeque<usize> = VecDeque::new();
    let dominates = |a: f64, b: f64| if keep_min { a <= b } else { a >= b };

    // The window for output i is [i - k, i + k] ∩ [0, n).
    let mut right = 0usize; // next index to admit
    for i in 0..n {
        let hi = (i + k).min(n - 1);
        while right <= hi {
            while let Some(&back) = dq.back() {
                if dominates(x[right], x[back]) {
                    dq.pop_back();
                } else {
                    break;
                }
            }
            dq.push_back(right);
            right += 1;
        }
        let lo = i.saturating_sub(k);
        while let Some(&front) = dq.front() {
            if front < lo {
                dq.pop_front();
            } else {
                break;
            }
        }
        out.push(x[*dq.front().expect("window is never empty")]);
    }
    out
}

/// Grayscale erosion (sliding minimum) of `x` by a flat element.
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when the element is wider than the
/// signal.
pub fn erode(x: &[f64], element: FlatElement) -> Result<Vec<f64>, DspError> {
    check(x, element)?;
    Ok(sliding_extremum(x, element.half_width(), true))
}

/// Grayscale dilation (sliding maximum) of `x` by a flat element.
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when the element is wider than the
/// signal.
pub fn dilate(x: &[f64], element: FlatElement) -> Result<Vec<f64>, DspError> {
    check(x, element)?;
    Ok(sliding_extremum(x, element.half_width(), false))
}

/// Opening: erosion followed by dilation. Removes positive peaks narrower
/// than the element.
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when the element is wider than the
/// signal.
pub fn open(x: &[f64], element: FlatElement) -> Result<Vec<f64>, DspError> {
    dilate(&erode(x, element)?, element)
}

/// Closing: dilation followed by erosion. Removes negative pits narrower
/// than the element.
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when the element is wider than the
/// signal.
pub fn close(x: &[f64], element: FlatElement) -> Result<Vec<f64>, DspError> {
    erode(&dilate(x, element)?, element)
}

/// Parameters of the Sun–Chan–Krishnan baseline estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaselineConfig {
    /// Element used by the opening stage (must exceed the QRS width).
    pub peak_element: FlatElement,
    /// Element used by the closing stage (conventionally 1.5× the first).
    pub pit_element: FlatElement,
}

impl BaselineConfig {
    /// Conventional sizing for ECG at sampling rate `fs`: the opening
    /// element spans 0.2 s (wider than any QRS) and the closing element
    /// spans 0.3 s (1.5×), per Sun et al.
    #[must_use]
    pub fn for_ecg(fs: f64) -> Self {
        Self {
            peak_element: FlatElement::from_duration(0.2, fs),
            pit_element: FlatElement::from_duration(0.3, fs),
        }
    }
}

/// Estimates the baseline drift of `x`: opening (removes peaks) followed by
/// closing (removes pits), exactly the two-stage construction the paper
/// cites from \[21\].
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when either element is wider than
/// the signal.
pub fn estimate_baseline(x: &[f64], config: BaselineConfig) -> Result<Vec<f64>, DspError> {
    close(&open(x, config.peak_element)?, config.pit_element)
}

/// Removes baseline wander: `x − estimate_baseline(x)`.
///
/// # Errors
///
/// Returns [`DspError::InvalidKernel`] when either element is wider than
/// the signal.
pub fn remove_baseline(x: &[f64], config: BaselineConfig) -> Result<Vec<f64>, DspError> {
    let b = estimate_baseline(x, config)?;
    Ok(x.iter().zip(&b).map(|(v, w)| v - w).collect())
}

fn check(x: &[f64], element: FlatElement) -> Result<(), DspError> {
    if x.is_empty() || element.len() > x.len() {
        return Err(DspError::InvalidKernel {
            kernel_len: element.len(),
            signal_len: x.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erode_is_sliding_min() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = erode(&x, FlatElement::new(1)).unwrap();
        assert_eq!(y, vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn dilate_is_sliding_max() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = dilate(&x, FlatElement::new(1)).unwrap();
        assert_eq!(y, vec![3.0, 4.0, 4.0, 5.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn zero_half_width_is_identity() {
        let x = [3.0, 1.0, 4.0];
        assert_eq!(erode(&x, FlatElement::new(0)).unwrap(), x.to_vec());
        assert_eq!(dilate(&x, FlatElement::new(0)).unwrap(), x.to_vec());
    }

    #[test]
    fn opening_removes_narrow_peak_keeps_plateau() {
        // narrow spike of width 1 on a flat signal disappears under a
        // 3-sample element
        let mut x = vec![0.0; 20];
        x[10] = 5.0;
        let y = open(&x, FlatElement::new(1)).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-12));

        // a plateau of width 5 survives a 3-sample opening
        let mut x2 = vec![0.0; 20];
        for v in x2[8..13].iter_mut() {
            *v = 5.0;
        }
        let y2 = open(&x2, FlatElement::new(1)).unwrap();
        assert_eq!(y2[10], 5.0);
    }

    #[test]
    fn closing_fills_narrow_pit() {
        let mut x = vec![1.0; 20];
        x[10] = -5.0;
        let y = close(&x, FlatElement::new(1)).unwrap();
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn erosion_below_dilation_above() {
        let x: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.3).sin()).collect();
        let e = erode(&x, FlatElement::new(4)).unwrap();
        let d = dilate(&x, FlatElement::new(4)).unwrap();
        for i in 0..100 {
            assert!(e[i] <= x[i] + 1e-12);
            assert!(d[i] >= x[i] - 1e-12);
        }
    }

    #[test]
    fn opening_is_idempotent() {
        let x: Vec<f64> = (0..200)
            .map(|i| ((i as f64) * 0.17).sin() + 0.3 * ((i as f64) * 0.71).cos())
            .collect();
        let el = FlatElement::new(3);
        let once = open(&x, el).unwrap();
        let twice = open(&once, el).unwrap();
        for i in 0..200 {
            assert!((once[i] - twice[i]).abs() < 1e-12, "idempotence at {i}");
        }
    }

    #[test]
    fn element_wider_than_signal_rejected() {
        let x = [1.0, 2.0, 3.0];
        assert!(erode(&x, FlatElement::new(2)).is_err());
        assert!(erode(&[], FlatElement::new(0)).is_err());
    }

    #[test]
    fn from_duration_sizes_correctly() {
        // 0.2 s at 250 Hz = 50 samples → half-width 25, span 51.
        let el = FlatElement::from_duration(0.2, 250.0);
        assert_eq!(el.half_width(), 25);
        assert_eq!(el.len(), 51);
    }

    #[test]
    fn baseline_estimator_tracks_slow_drift_ignores_spikes() {
        let fs = 250.0;
        let n = 2500;
        // slow 0.3 Hz drift plus narrow periodic spikes ("QRS")
        let drift: Vec<f64> = (0..n)
            .map(|i| 0.5 * (2.0 * std::f64::consts::PI * 0.3 * i as f64 / fs).sin())
            .collect();
        let mut x = drift.clone();
        for beat in (100..n).step_by(250) {
            x[beat] += 2.0; // 4 ms spike, far narrower than 0.2 s element
        }
        let est = estimate_baseline(&x, BaselineConfig::for_ecg(fs)).unwrap();
        // interior estimate should track the drift within the drift change
        // over half an element (~0.15 s of a 0.3 Hz sine → ≲ 0.15)
        for i in 200..n - 200 {
            assert!(
                (est[i] - drift[i]).abs() < 0.2,
                "sample {i}: est {} vs drift {}",
                est[i],
                drift[i]
            );
        }
        let corrected = remove_baseline(&x, BaselineConfig::for_ecg(fs)).unwrap();
        // spikes must survive correction
        assert!(corrected[100 + 250] > 1.5);
        // flat regions must be near zero
        assert!(corrected[300].abs() < 0.25);
    }

    #[test]
    fn monotone_deque_matches_naive_on_random_data() {
        // deterministic pseudo-random data; compare against O(n·k) naive
        let mut state = 0x1234_5678_u64;
        let mut x = Vec::with_capacity(300);
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x.push((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5);
        }
        for k in [0usize, 1, 3, 7, 20] {
            let fast = sliding_extremum(&x, k, true);
            for (i, &f) in fast.iter().enumerate() {
                let lo = i.saturating_sub(k);
                let hi = (i + k).min(x.len() - 1);
                let naive = x[lo..=hi].iter().cloned().fold(f64::INFINITY, f64::min);
                assert_eq!(f, naive, "k={k} i={i}");
            }
        }
    }
}
