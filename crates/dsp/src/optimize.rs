//! Derivative-free minimisation (Nelder–Mead simplex).
//!
//! Used by the bioimpedance-spectroscopy fitter in `cardiotouch` to
//! recover Cole–Cole tissue parameters from multi-frequency impedance
//! readings — a nonlinear least-squares problem with only four unknowns,
//! which is exactly the regime where a simplex search is simple, robust
//! and fast enough.

use crate::DspError;

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Initial simplex size relative to each coordinate (absolute step
    /// for zero coordinates).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_evals: 4000,
            f_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a simplex run.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// Whether the f-tolerance was met (otherwise the eval budget ran
    /// out).
    pub converged: bool,
}

/// Minimises `f` starting from `x0` with the standard Nelder–Mead moves
/// (reflection 1, expansion 2, contraction ½, shrink ½).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for an empty start point or a
/// non-finite objective at the start.
pub fn nelder_mead<F>(f: F, x0: &[f64], options: &NelderMeadOptions) -> Result<Minimum, DspError>
where
    F: Fn(&[f64]) -> f64,
{
    let n = x0.len();
    if n == 0 {
        return Err(DspError::InvalidParameter {
            name: "x0",
            value: 0.0,
            constraint: "must have at least one dimension",
        });
    }
    let f0 = f(x0);
    if !f0.is_finite() {
        return Err(DspError::InvalidParameter {
            name: "f(x0)",
            value: f0,
            constraint: "must be finite at the start point",
        });
    }

    // initial simplex: x0 plus one perturbed vertex per dimension
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), f0));
    let mut evals = 1usize;
    for i in 0..n {
        let mut v = x0.to_vec();
        let step = if v[i] != 0.0 {
            options.initial_step * v[i].abs()
        } else {
            options.initial_step
        };
        v[i] += step;
        let fv = f(&v);
        evals += 1;
        simplex.push((v, fv));
    }

    let centroid = |s: &[(Vec<f64>, f64)]| -> Vec<f64> {
        // centroid of all but the worst (last) vertex
        let mut c = vec![0.0; n];
        for (v, _) in &s[..s.len() - 1] {
            for (ci, vi) in c.iter_mut().zip(v) {
                *ci += vi;
            }
        }
        for ci in c.iter_mut() {
            *ci /= (s.len() - 1) as f64;
        }
        c
    };
    let along = |c: &[f64], w: &[f64], t: f64| -> Vec<f64> {
        c.iter().zip(w).map(|(ci, wi)| ci + t * (ci - wi)).collect()
    };

    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() <= options.f_tol * (1.0 + simplex[0].1.abs()) {
            // An f-spread of ~0 can also mean the simplex straddles the
            // minimum symmetrically (the classic 1-D stall); only stop
            // when the simplex is geometrically tiny too, otherwise
            // shrink and keep going.
            let x_spread = simplex[1..]
                .iter()
                .flat_map(|(v, _)| {
                    v.iter()
                        .zip(&simplex[0].0)
                        .map(|(a, b)| (a - b).abs() / (1.0 + b.abs()))
                })
                .fold(0.0f64, f64::max);
            if x_spread <= 1e-9 {
                let best = simplex.remove(0);
                return Ok(Minimum {
                    x: best.0,
                    value: best.1,
                    evals,
                    converged: true,
                });
            }
            let best = simplex[0].0.clone();
            for (v, fv) in simplex.iter_mut().skip(1) {
                for (vi, bi) in v.iter_mut().zip(&best) {
                    *vi = bi + 0.5 * (*vi - bi);
                }
                *fv = f(v);
                evals += 1;
            }
            continue;
        }
        let c = centroid(&simplex);
        let worst = simplex[n].clone();

        // reflection
        let xr = along(&c, &worst.0, 1.0);
        let fr = f(&xr);
        evals += 1;
        if fr < simplex[0].1 {
            // expansion
            let xe = along(&c, &worst.0, 2.0);
            let fe = f(&xe);
            evals += 1;
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
        } else {
            // contraction (outside if reflection improved on worst)
            let t = if fr < worst.1 { 0.5 } else { -0.5 };
            let xc = along(&c, &worst.0, t);
            let fc = f(&xc);
            evals += 1;
            if fc < worst.1.min(fr) {
                simplex[n] = (xc, fc);
            } else {
                // shrink toward the best vertex
                let best = simplex[0].0.clone();
                for (v, fv) in simplex.iter_mut().skip(1) {
                    for (vi, bi) in v.iter_mut().zip(&best) {
                        *vi = bi + 0.5 * (*vi - bi);
                    }
                    *fv = f(v);
                    evals += 1;
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let best = simplex.remove(0);
    Ok(Minimum {
        x: best.0,
        value: best.1,
        evals,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let m = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default()).unwrap();
        assert!(m.converged);
        assert!((m.x[0] - 3.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] + 1.0).abs() < 1e-4, "{:?}", m.x);
    }

    #[test]
    fn minimises_rosenbrock() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = NelderMeadOptions {
            max_evals: 20_000,
            ..NelderMeadOptions::default()
        };
        let m = nelder_mead(f, &[-1.2, 1.0], &opts).unwrap();
        assert!(m.value < 1e-6, "value {}", m.value);
        assert!((m.x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn one_dimensional_works() {
        let f = |x: &[f64]| (x[0] - 42.0).powi(2);
        let m = nelder_mead(f, &[1.0], &NelderMeadOptions::default()).unwrap();
        assert!((m.x[0] - 42.0).abs() < 1e-3);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let opts = NelderMeadOptions {
            max_evals: 10,
            ..NelderMeadOptions::default()
        };
        let m = nelder_mead(f, &[5.0, -3.0, 2.0, 1.0, 9.0], &opts).unwrap();
        assert!(!m.converged);
        assert!(m.evals <= 16); // budget plus one in-flight shrink sweep
    }

    #[test]
    fn invalid_starts_rejected() {
        let f = |_: &[f64]| f64::NAN;
        assert!(nelder_mead(f, &[1.0], &NelderMeadOptions::default()).is_err());
        let g = |x: &[f64]| x[0];
        assert!(nelder_mead(g, &[], &NelderMeadOptions::default()).is_err());
    }

    #[test]
    fn penalty_constraints_are_respected() {
        // minimise (x-2)² subject to x ≤ 1 via infinity penalty
        let f = |x: &[f64]| {
            if x[0] > 1.0 {
                1e12 + x[0] // finite, steep penalty
            } else {
                (x[0] - 2.0).powi(2)
            }
        };
        let m = nelder_mead(f, &[0.0], &NelderMeadOptions::default()).unwrap();
        assert!(m.x[0] <= 1.0 + 1e-6);
        assert!((m.x[0] - 1.0).abs() < 1e-3, "{:?}", m.x);
    }
}
