//! Peak, zero-crossing and sign-pattern utilities.
//!
//! These are the scan primitives behind the ICG characteristic-point rules:
//! the C point is a global beat maximum, B needs "first minimum of the 3rd
//! derivative to the left of B0" and "(+,−,+,−) sign pattern of the 2nd
//! derivative left of C", X needs "lowest negative minimum right of C".

use crate::DspError;

/// Direction of a zero crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Crossing {
    /// Signal goes from negative (or zero) to positive.
    Rising,
    /// Signal goes from positive (or zero) to negative.
    Falling,
}

/// Index of the maximum value in `x[range]`, ties resolved to the lowest
/// index. Returns `None` for an empty slice/range.
#[must_use]
pub fn argmax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Index of the minimum value in `x`, ties resolved to the lowest index.
/// Returns `None` for an empty slice.
#[must_use]
pub fn argmin(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
            Some((_, bv)) if bv <= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Indices of strict local maxima (`x[i-1] < x[i] >= x[i+1]`, with the
/// plateau convention of taking the first sample) at least `min_distance`
/// samples apart and at least `min_height` high. When two candidates are
/// closer than `min_distance`, the higher one wins.
#[must_use]
pub fn local_maxima(x: &[f64], min_height: f64, min_distance: usize) -> Vec<usize> {
    let mut cands: Vec<usize> = Vec::new();
    for i in 1..x.len().saturating_sub(1) {
        if x[i] >= min_height && x[i] > x[i - 1] && x[i] >= x[i + 1] {
            cands.push(i);
        }
    }
    if min_distance <= 1 {
        return cands;
    }
    // Greedy selection by height.
    let mut by_height = cands.clone();
    by_height.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut taken: Vec<usize> = Vec::new();
    for i in by_height {
        if taken.iter().all(|&j| i.abs_diff(j) >= min_distance) {
            taken.push(i);
        }
    }
    taken.sort_unstable();
    taken
}

/// Indices of strict local minima, mirrored from [`local_maxima`]:
/// candidates must be at most `max_height` and at least `min_distance`
/// apart (deeper minima win conflicts).
#[must_use]
pub fn local_minima(x: &[f64], max_height: f64, min_distance: usize) -> Vec<usize> {
    let neg: Vec<f64> = x.iter().map(|v| -v).collect();
    local_maxima(&neg, -max_height, min_distance)
}

/// All zero crossings of `x` with their directions. A crossing is reported
/// at the index of the *second* sample of the sign-changing pair. Exact
/// zeros take the sign of the next non-zero sample.
#[must_use]
pub fn zero_crossings(x: &[f64]) -> Vec<(usize, Crossing)> {
    let mut out = Vec::new();
    let mut prev_sign: Option<bool> = None; // true = positive
    for (i, &v) in x.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let sign = v > 0.0;
        if let Some(p) = prev_sign {
            if p != sign {
                out.push((
                    i,
                    if sign {
                        Crossing::Rising
                    } else {
                        Crossing::Falling
                    },
                ));
            }
        }
        prev_sign = Some(sign);
    }
    out
}

/// Scans **leftward** from `start` (exclusive) and returns the index of the
/// first zero crossing of `x` encountered, i.e. the largest `i < start`
/// such that `x[i]` and `x[i+1]` have opposite signs. This is the fallback
/// B-point rule of the paper ("first zero-crossing of the first derivative
/// of the ICG to the left of B0").
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `start` is out of bounds.
pub fn first_zero_crossing_left(x: &[f64], start: usize) -> Result<Option<usize>, DspError> {
    if start >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "start",
            value: start as f64,
            constraint: "must be a valid index into the signal",
        });
    }
    let mut i = start;
    while i > 0 {
        let a = x[i - 1];
        let b = x[i];
        if a != 0.0 && b != 0.0 && (a > 0.0) != (b > 0.0) {
            return Ok(Some(i - 1));
        }
        i -= 1;
    }
    Ok(None)
}

/// Scans **leftward** from `start` (exclusive) and returns the index of the
/// first strict local minimum of `x` encountered. This is the primary
/// B-point rule ("first minimum of the 3rd derivative to the left of B0")
/// and also the X refinement.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `start` is out of bounds.
pub fn first_local_minimum_left(x: &[f64], start: usize) -> Result<Option<usize>, DspError> {
    if start >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "start",
            value: start as f64,
            constraint: "must be a valid index into the signal",
        });
    }
    let mut i = start;
    while i >= 2 {
        let c = i - 1;
        if x[c] < x[c - 1] && x[c] <= x[c + 1] {
            return Ok(Some(c));
        }
        i -= 1;
    }
    Ok(None)
}

/// Checks whether the run-length-encoded sign sequence of `x[lo..hi]`,
/// read **left to right**, contains `pattern` as a contiguous subsequence.
/// Zeros are skipped (they extend the current run). This implements the
/// paper's "(+,−,+,−) sign pattern of the second-order derivative of ICG to
/// the left of the C point" test: call it with the second derivative and
/// `pattern = [true, false, true, false]`.
#[must_use]
pub fn has_sign_pattern(x: &[f64], pattern: &[bool]) -> bool {
    if pattern.is_empty() {
        return true;
    }
    let mut runs: Vec<bool> = Vec::new();
    for &v in x {
        if v == 0.0 {
            continue;
        }
        let s = v > 0.0;
        if runs.last() != Some(&s) {
            runs.push(s);
        }
    }
    runs.windows(pattern.len()).any(|w| w == pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_argmin_basic() {
        let x = [1.0, 5.0, 3.0, 5.0, -2.0];
        assert_eq!(argmax(&x), Some(1)); // first of the ties
        assert_eq!(argmin(&x), Some(4));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn local_maxima_finds_peaks() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        assert_eq!(local_maxima(&x, 0.5, 1), vec![1, 3, 5]);
    }

    #[test]
    fn local_maxima_height_filter() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        assert_eq!(local_maxima(&x, 1.5, 1), vec![3, 5]);
    }

    #[test]
    fn local_maxima_distance_keeps_higher() {
        let x = [0.0, 2.0, 1.0, 3.0, 0.0];
        // peaks at 1 (h=2) and 3 (h=3), distance 2 < 3 → keep index 3
        assert_eq!(local_maxima(&x, 0.0, 3), vec![3]);
    }

    #[test]
    fn local_maxima_plateau_takes_first_sample() {
        let x = [0.0, 1.0, 1.0, 0.0];
        assert_eq!(local_maxima(&x, 0.0, 1), vec![1]);
    }

    #[test]
    fn local_minima_mirror() {
        let x = [0.0, -1.0, 0.0, -3.0, 0.0];
        assert_eq!(local_minima(&x, -0.5, 1), vec![1, 3]);
        assert_eq!(local_minima(&x, -2.0, 1), vec![3]);
    }

    #[test]
    fn zero_crossings_directions() {
        let x = [-1.0, -0.5, 0.5, 1.0, -1.0];
        let zc = zero_crossings(&x);
        assert_eq!(zc, vec![(2, Crossing::Rising), (4, Crossing::Falling)]);
    }

    #[test]
    fn zero_crossings_skip_exact_zero() {
        let x = [-1.0, 0.0, 1.0];
        let zc = zero_crossings(&x);
        assert_eq!(zc, vec![(2, Crossing::Rising)]);
    }

    #[test]
    fn first_zero_crossing_left_finds_nearest() {
        //        0     1    2     3    4     5
        let x = [1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        // from index 5 leftward: pair (3,4) crosses → index 3
        assert_eq!(first_zero_crossing_left(&x, 5).unwrap(), Some(3));
        // from index 2: pair (1,2) crosses → 1
        assert_eq!(first_zero_crossing_left(&x, 2).unwrap(), Some(1));
        // from index 1: pair (0,1) crosses → 0
        assert_eq!(first_zero_crossing_left(&x, 1).unwrap(), Some(0));
        assert_eq!(first_zero_crossing_left(&x, 0).unwrap(), None);
    }

    #[test]
    fn first_zero_crossing_left_out_of_bounds() {
        assert!(first_zero_crossing_left(&[1.0], 1).is_err());
    }

    #[test]
    fn first_local_minimum_left_finds_nearest() {
        //        0    1    2    3    4    5
        let x = [5.0, 1.0, 4.0, 0.0, 3.0, 2.0];
        // from 5 leftward: minimum at 3
        assert_eq!(first_local_minimum_left(&x, 5).unwrap(), Some(3));
        // from 3: minimum at 1
        assert_eq!(first_local_minimum_left(&x, 3).unwrap(), Some(1));
        // from 1: none (index 0 can't be a strict interior minimum)
        assert_eq!(first_local_minimum_left(&x, 1).unwrap(), None);
    }

    #[test]
    fn sign_pattern_detection() {
        // signs: + − + −
        let x = [1.0, 2.0, -1.0, -2.0, 3.0, -4.0];
        assert!(has_sign_pattern(&x, &[true, false, true, false]));
        assert!(!has_sign_pattern(&x, &[false, false]));
        // zeros are transparent
        let y = [1.0, 0.0, -1.0, 0.0, 1.0, 0.0, -1.0];
        assert!(has_sign_pattern(&y, &[true, false, true, false]));
    }

    #[test]
    fn sign_pattern_empty_is_trivially_true() {
        assert!(has_sign_pattern(&[1.0], &[]));
        assert!(has_sign_pattern(&[], &[]));
        assert!(!has_sign_pattern(&[], &[true]));
    }

    #[test]
    fn sign_pattern_needs_contiguous_runs() {
        // signs: + − −  + (runs: +,−,+) — pattern +−+− absent
        let x = [1.0, -1.0, -2.0, 3.0];
        assert!(!has_sign_pattern(&x, &[true, false, true, false]));
        assert!(has_sign_pattern(&x, &[true, false, true]));
    }
}
