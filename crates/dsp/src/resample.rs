//! Linear interpolation and resampling.
//!
//! The device samples at rates between 125 Hz and 16 kHz while the paper's
//! experiments run at 250 Hz; these helpers convert between rates and
//! evaluate signals at fractional sample positions (the B0 x-axis intercept
//! lands between samples).

use crate::DspError;

/// Evaluates `x` at fractional index `pos` by linear interpolation,
/// clamping to the signal ends.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for an empty signal or
/// [`DspError::InvalidParameter`] for a non-finite `pos`.
pub fn sample_at(x: &[f64], pos: f64) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::InputTooShort { len: 0, min_len: 1 });
    }
    if !pos.is_finite() {
        return Err(DspError::InvalidParameter {
            name: "pos",
            value: pos,
            constraint: "must be finite",
        });
    }
    if pos <= 0.0 {
        return Ok(x[0]);
    }
    let max = (x.len() - 1) as f64;
    if pos >= max {
        return Ok(x[x.len() - 1]);
    }
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    Ok(x[lo] * (1.0 - frac) + x[lo + 1] * frac)
}

/// Resamples `x` from `fs_in` to `fs_out` hertz by linear interpolation.
/// The output covers the same time span `[0, (n−1)/fs_in]`.
///
/// Linear interpolation is adequate here because every consumer first
/// low-passes well below the Nyquist rate of either grid; a polyphase
/// kernel would be overkill for this workload.
///
/// # Errors
///
/// * [`DspError::InputTooShort`] when `x` has fewer than 2 samples;
/// * [`DspError::InvalidParameter`] when either rate is non-positive.
pub fn resample(x: &[f64], fs_in: f64, fs_out: f64) -> Result<Vec<f64>, DspError> {
    if x.len() < 2 {
        return Err(DspError::InputTooShort {
            len: x.len(),
            min_len: 2,
        });
    }
    for (name, v) in [("fs_in", fs_in), ("fs_out", fs_out)] {
        if !v.is_finite() || v <= 0.0 {
            return Err(DspError::InvalidParameter {
                name,
                value: v,
                constraint: "must be positive and finite",
            });
        }
    }
    let duration = (x.len() - 1) as f64 / fs_in;
    let n_out = (duration * fs_out).floor() as usize + 1;
    let mut out = Vec::with_capacity(n_out);
    for i in 0..n_out {
        let t = i as f64 / fs_out;
        out.push(sample_at(x, t * fs_in)?);
    }
    Ok(out)
}

/// Decimates `x` by the integer factor `m`, keeping every `m`-th sample.
/// The caller is responsible for anti-alias filtering first.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `m == 0`.
pub fn decimate(x: &[f64], m: usize) -> Result<Vec<f64>, DspError> {
    if m == 0 {
        return Err(DspError::InvalidParameter {
            name: "m",
            value: 0.0,
            constraint: "decimation factor must be positive",
        });
    }
    Ok(x.iter().step_by(m).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_at_exact_indices() {
        let x = [10.0, 20.0, 30.0];
        assert_eq!(sample_at(&x, 0.0).unwrap(), 10.0);
        assert_eq!(sample_at(&x, 1.0).unwrap(), 20.0);
        assert_eq!(sample_at(&x, 2.0).unwrap(), 30.0);
    }

    #[test]
    fn sample_at_interpolates() {
        let x = [10.0, 20.0];
        assert_eq!(sample_at(&x, 0.5).unwrap(), 15.0);
        assert_eq!(sample_at(&x, 0.25).unwrap(), 12.5);
    }

    #[test]
    fn sample_at_clamps() {
        let x = [10.0, 20.0];
        assert_eq!(sample_at(&x, -3.0).unwrap(), 10.0);
        assert_eq!(sample_at(&x, 9.0).unwrap(), 20.0);
    }

    #[test]
    fn sample_at_errors() {
        assert!(sample_at(&[], 0.0).is_err());
        assert!(sample_at(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn resample_identity_rate() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = resample(&x, 100.0, 100.0).unwrap();
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn resample_doubles_sample_count() {
        let x = [0.0, 1.0, 2.0];
        let y = resample(&x, 100.0, 200.0).unwrap();
        // span 0.02 s at 200 Hz → 5 samples: 0, .5, 1, 1.5, 2
        assert_eq!(y, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn resample_preserves_sine_shape() {
        let fs_in = 1000.0;
        let fs_out = 250.0;
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 / fs_in).sin())
            .collect();
        let y = resample(&x, fs_in, fs_out).unwrap();
        for (i, v) in y.iter().enumerate() {
            let expect = (2.0 * std::f64::consts::PI * 5.0 * i as f64 / fs_out).sin();
            assert!((v - expect).abs() < 1e-3, "sample {i}");
        }
    }

    #[test]
    fn resample_errors() {
        assert!(resample(&[1.0], 100.0, 50.0).is_err());
        assert!(resample(&[1.0, 2.0], 0.0, 50.0).is_err());
        assert!(resample(&[1.0, 2.0], 100.0, -1.0).is_err());
    }

    #[test]
    fn decimate_keeps_every_mth() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(decimate(&x, 2).unwrap(), vec![0.0, 2.0, 4.0]);
        assert_eq!(decimate(&x, 3).unwrap(), vec![0.0, 3.0]);
        assert_eq!(decimate(&x, 1).unwrap(), x.to_vec());
        assert!(decimate(&x, 0).is_err());
    }
}
