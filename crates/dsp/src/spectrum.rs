//! Small spectral toolbox: DFT, Goertzel single-bin evaluation and power
//! spectra.
//!
//! The paper motivates its ICG low-pass by inspecting the signal spectrum
//! ("amplitudes of the components at frequencies f > 20 Hz were not
//! significant"); the tests and examples in this workspace reproduce that
//! inspection with these routines. They are also used to verify that
//! designed filters meet their cut-off specifications.

use crate::DspError;

/// One complex DFT coefficient, stored as `(re, im)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bin {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Bin {
    /// Magnitude `sqrt(re² + im²)`.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Phase in radians.
    #[must_use]
    pub fn phase(&self) -> f64 {
        self.im.atan2(self.re)
    }
}

/// Direct DFT of `x` (O(n²); intended for test-sized inputs and filter
/// verification, not streaming use). Returns `x.len()` bins.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for an empty input.
pub fn dft(x: &[f64]) -> Result<Vec<Bin>, DspError> {
    if x.is_empty() {
        return Err(DspError::InputTooShort { len: 0, min_len: 1 });
    }
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (mut re, mut im) = (0.0, 0.0);
        let w = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        for (i, &v) in x.iter().enumerate() {
            let a = w * i as f64;
            re += v * a.cos();
            im += v * a.sin();
        }
        out.push(Bin { re, im });
    }
    Ok(out)
}

/// Goertzel algorithm: the DFT evaluated at a single frequency `f` hertz
/// for sampling rate `fs` — O(n) per frequency, which is what an embedded
/// target would actually run.
///
/// # Errors
///
/// * [`DspError::InputTooShort`] for an empty input;
/// * [`DspError::InvalidFrequency`] when `f` is not in `[0, fs/2]`.
pub fn goertzel(x: &[f64], f: f64, fs: f64) -> Result<Bin, DspError> {
    if x.is_empty() {
        return Err(DspError::InputTooShort { len: 0, min_len: 1 });
    }
    if !f.is_finite() || f < 0.0 || f > fs / 2.0 {
        return Err(DspError::InvalidFrequency {
            frequency_hz: f,
            sample_rate_hz: fs,
        });
    }
    let omega = 2.0 * std::f64::consts::PI * f / fs;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0, 0.0);
    for &v in x {
        let s0 = v + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // X = (s1 − e^{−jω} s2) · e^{−jω(N−1)} matches the DFT phase convention
    // X(k) = Σ x(n) e^{−jωn}.
    let re_t = s1 - s2 * omega.cos();
    let im_t = s2 * omega.sin();
    let ang = -omega * (x.len() as f64 - 1.0);
    Ok(Bin {
        re: re_t * ang.cos() - im_t * ang.sin(),
        im: re_t * ang.sin() + im_t * ang.cos(),
    })
}

/// Single-sided amplitude spectrum of `x`: `(frequency_hz, amplitude)`
/// pairs for bins `0..=n/2`, amplitude normalised so a unit-amplitude sine
/// at a bin centre reads ≈ 1.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for inputs shorter than 2 samples,
/// or [`DspError::InvalidParameter`] for a non-positive `fs`.
pub fn amplitude_spectrum(x: &[f64], fs: f64) -> Result<Vec<(f64, f64)>, DspError> {
    if x.len() < 2 {
        return Err(DspError::InputTooShort {
            len: x.len(),
            min_len: 2,
        });
    }
    if !fs.is_finite() || fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            value: fs,
            constraint: "must be positive and finite",
        });
    }
    let n = x.len();
    let bins = dft(x)?;
    Ok(bins
        .iter()
        .take(n / 2 + 1)
        .enumerate()
        .map(|(k, b)| {
            let scale = if k == 0 || (n % 2 == 0 && k == n / 2) {
                1.0 / n as f64
            } else {
                2.0 / n as f64
            };
            (k as f64 * fs / n as f64, b.magnitude() * scale)
        })
        .collect())
}

/// Fraction of total signal power located above `f_split` hertz, computed
/// from the amplitude spectrum. Used to reproduce the paper's observation
/// that ICG power above 20 Hz is insignificant.
///
/// # Errors
///
/// Propagates the conditions of [`amplitude_spectrum`].
pub fn power_fraction_above(x: &[f64], f_split: f64, fs: f64) -> Result<f64, DspError> {
    let spec = amplitude_spectrum(x, fs)?;
    let total: f64 = spec.iter().skip(1).map(|(_, a)| a * a).sum();
    if total == 0.0 {
        return Ok(0.0);
    }
    let above: f64 = spec
        .iter()
        .skip(1)
        .filter(|(f, _)| *f > f_split)
        .map(|(_, a)| a * a)
        .sum();
    Ok(above / total)
}

/// Welch's averaged-periodogram PSD estimate: the signal is split into
/// windowed, half-overlapping segments whose periodograms are averaged,
/// trading frequency resolution for variance reduction. Returns
/// `(frequency_hz, power_density)` pairs for bins `0..=segment_len/2`,
/// normalized so that integrating the density over frequency recovers
/// the signal power (one-sided convention).
///
/// # Errors
///
/// * [`DspError::InvalidOrder`] when `segment_len < 8` or exceeds the
///   signal;
/// * [`DspError::InvalidParameter`] for a non-positive `fs`.
pub fn welch_psd(
    x: &[f64],
    fs: f64,
    segment_len: usize,
    window: crate::window::Window,
) -> Result<Vec<(f64, f64)>, DspError> {
    if segment_len < 8 || segment_len > x.len() {
        return Err(DspError::InvalidOrder {
            order: segment_len,
            constraint: "segment length must be within 8..=signal length",
        });
    }
    if !(fs > 0.0 && fs.is_finite()) {
        return Err(DspError::InvalidParameter {
            name: "fs",
            value: fs,
            constraint: "must be positive and finite",
        });
    }
    let w = window.coefficients(segment_len);
    let win_power: f64 = w.iter().map(|v| v * v).sum::<f64>() / segment_len as f64;
    let hop = segment_len / 2;
    let n_bins = segment_len / 2 + 1;
    let mut acc = vec![0.0f64; n_bins];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let seg: Vec<f64> = x[start..start + segment_len]
            .iter()
            .zip(&w)
            .map(|(v, wv)| v * wv)
            .collect();
        let bins = dft(&seg)?;
        for (k, b) in bins.iter().take(n_bins).enumerate() {
            let one_sided = if k == 0 || (segment_len % 2 == 0 && k == n_bins - 1) {
                1.0
            } else {
                2.0
            };
            acc[k] += one_sided * b.magnitude().powi(2) / (fs * segment_len as f64 * win_power);
        }
        segments += 1;
        start += hop;
    }
    let df = fs / segment_len as f64;
    Ok(acc
        .into_iter()
        .enumerate()
        .map(|(k, p)| (k as f64 * df, p / segments as f64))
        .collect())
}

/// Lomb–Scargle normalized periodogram of unevenly sampled data —
/// the natural spectral estimator for beat-to-beat (RR) series, which are
/// sampled at the heartbeats themselves rather than on a uniform grid.
///
/// `t` are sample times (seconds, ascending), `y` the values, `freqs` the
/// analysis frequencies in hertz. Returns one power value per frequency,
/// normalized by the data variance (a pure tone of amplitude A sampled N
/// times yields a peak of ≈ N·A²/(4σ²)).
///
/// # Errors
///
/// * [`DspError::LengthMismatch`] when `t` and `y` differ;
/// * [`DspError::InputTooShort`] with fewer than 3 samples;
/// * [`DspError::InvalidParameter`] for zero variance or a non-positive
///   analysis frequency.
pub fn lomb_scargle(t: &[f64], y: &[f64], freqs: &[f64]) -> Result<Vec<f64>, DspError> {
    if t.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: t.len(),
            right: y.len(),
        });
    }
    if t.len() < 3 {
        return Err(DspError::InputTooShort {
            len: t.len(),
            min_len: 3,
        });
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (y.len() - 1) as f64;
    if var <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "y",
            value: var,
            constraint: "must have non-zero variance",
        });
    }
    let yc: Vec<f64> = y.iter().map(|v| v - mean).collect();
    let mut out = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if !(f > 0.0 && f.is_finite()) {
            return Err(DspError::InvalidFrequency {
                frequency_hz: f,
                sample_rate_hz: f64::NAN,
            });
        }
        let w = 2.0 * std::f64::consts::PI * f;
        // phase offset tau for the classic invariant form
        let (mut s2, mut c2) = (0.0, 0.0);
        for &ti in t {
            s2 += (2.0 * w * ti).sin();
            c2 += (2.0 * w * ti).cos();
        }
        let tau = s2.atan2(c2) / (2.0 * w);
        let (mut cy, mut sy, mut cc, mut ss) = (0.0, 0.0, 0.0, 0.0);
        for (&ti, &yi) in t.iter().zip(&yc) {
            let arg = w * (ti - tau);
            let (s, c) = arg.sin_cos();
            cy += yi * c;
            sy += yi * s;
            cc += c * c;
            ss += s * s;
        }
        let p = if cc > 0.0 && ss > 0.0 {
            0.5 * (cy * cy / cc + sy * sy / ss) / var
        } else if cc > 0.0 {
            0.5 * (cy * cy / cc) / var
        } else {
            0.5 * (sy * sy / ss) / var
        };
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    fn sine(f: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 / FS).sin())
            .collect()
    }

    #[test]
    fn dft_of_dc_concentrates_in_bin0() {
        let bins = dft(&[1.0; 16]).unwrap();
        assert!((bins[0].magnitude() - 16.0).abs() < 1e-9);
        for b in &bins[1..] {
            assert!(b.magnitude() < 1e-9);
        }
    }

    #[test]
    fn dft_of_bin_centred_sine() {
        // 10 Hz sine, 250 Hz, 250 samples → bin 10
        let x = sine(10.0, 250, 1.0);
        let bins = dft(&x).unwrap();
        assert!((bins[10].magnitude() - 125.0).abs() < 1e-6);
        assert!(bins[11].magnitude() < 1e-6);
    }

    #[test]
    fn goertzel_matches_dft_bin() {
        let x = sine(10.0, 250, 1.0);
        let g = goertzel(&x, 10.0, FS).unwrap();
        let d = dft(&x).unwrap()[10];
        assert!((g.magnitude() - d.magnitude()).abs() < 1e-6);
        assert!((g.phase() - d.phase()).abs() < 1e-6);
    }

    #[test]
    fn goertzel_rejects_bad_frequency() {
        assert!(goertzel(&[1.0; 8], 200.0, FS).is_err());
        assert!(goertzel(&[1.0; 8], -1.0, FS).is_err());
        assert!(goertzel(&[], 10.0, FS).is_err());
    }

    #[test]
    fn amplitude_spectrum_reads_unit_for_unit_sine() {
        let x = sine(25.0, 500, 1.0);
        let spec = amplitude_spectrum(&x, FS).unwrap();
        // bin spacing 0.5 Hz → 25 Hz is bin 50
        let (f, a) = spec[50];
        assert!((f - 25.0).abs() < 1e-9);
        assert!((a - 1.0).abs() < 1e-6);
    }

    #[test]
    fn amplitude_spectrum_dc_term() {
        let x = vec![2.0; 100];
        let spec = amplitude_spectrum(&x, FS).unwrap();
        assert!((spec[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_fraction_above_split() {
        // equal-amplitude 5 Hz and 50 Hz → 50 % of power above 20 Hz
        let n = 500;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                    + (2.0 * std::f64::consts::PI * 50.0 * t).sin()
            })
            .collect();
        let frac = power_fraction_above(&x, 20.0, FS).unwrap();
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
        // everything below 60 Hz
        assert!(power_fraction_above(&x, 60.0, FS).unwrap() < 1e-9);
    }

    #[test]
    fn power_fraction_zero_signal() {
        assert_eq!(power_fraction_above(&[0.0; 64], 20.0, FS).unwrap(), 0.0);
    }

    #[test]
    fn welch_psd_integrates_to_signal_power() {
        use crate::window::Window;
        // unit-amplitude sine: power 0.5; ∑ psd·df ≈ 0.5
        let x = sine(25.0, 4096, 1.0);
        let psd = welch_psd(&x, FS, 256, Window::Hann).unwrap();
        let df = FS / 256.0;
        let total: f64 = psd.iter().map(|(_, p)| p * df).sum();
        assert!((total - 0.5).abs() < 0.02, "total power {total}");
    }

    #[test]
    fn welch_psd_peaks_at_tone_frequency() {
        use crate::window::Window;
        let x = sine(25.0, 4096, 1.0);
        let psd = welch_psd(&x, FS, 256, Window::Hann).unwrap();
        let (f_pk, _) = psd
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((f_pk - 25.0).abs() <= FS / 256.0, "peak at {f_pk}");
    }

    #[test]
    fn welch_psd_is_flat_for_white_noise() {
        use crate::window::Window;
        // deterministic pseudo-noise
        let mut state = 777u64;
        let x: Vec<f64> = (0..16384)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
            })
            .collect();
        let psd = welch_psd(&x, FS, 128, Window::Hann).unwrap();
        // exclude DC; remaining bins within ×3 of the median
        let mut vals: Vec<f64> = psd[1..].iter().map(|(_, p)| *p).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = vals[vals.len() / 2];
        for (f, p) in &psd[1..] {
            assert!(
                *p < 3.0 * med && *p > med / 3.0,
                "bin {f}: {p} vs median {med}"
            );
        }
    }

    #[test]
    fn welch_psd_validation() {
        use crate::window::Window;
        let x = vec![0.0; 64];
        assert!(welch_psd(&x, FS, 4, Window::Hann).is_err());
        assert!(welch_psd(&x, FS, 128, Window::Hann).is_err());
        assert!(welch_psd(&x, 0.0, 32, Window::Hann).is_err());
    }

    #[test]
    fn lomb_scargle_finds_tone_in_uneven_samples() {
        // sample a 0.25 Hz tone at jittered ~1 Hz instants
        let mut t = Vec::new();
        let mut y = Vec::new();
        let mut ti = 0.0;
        let mut state = 12345u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let jitter = ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.4;
            ti += 1.0 + jitter;
            t.push(ti);
            y.push((2.0 * std::f64::consts::PI * 0.25 * ti).sin());
        }
        let freqs: Vec<f64> = (1..50).map(|k| k as f64 * 0.01).collect();
        let p = lomb_scargle(&t, &y, &freqs).unwrap();
        let peak_idx = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (freqs[peak_idx] - 0.25).abs() < 0.015,
            "peak at {} Hz",
            freqs[peak_idx]
        );
        // peak dominates the background
        let bg = p
            .iter()
            .enumerate()
            .filter(|(i, _)| i.abs_diff(peak_idx) > 4)
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max);
        assert!(p[peak_idx] > 5.0 * bg);
    }

    #[test]
    fn lomb_scargle_validation() {
        let t = [0.0, 1.0, 2.0];
        assert!(lomb_scargle(&t, &[1.0, 2.0], &[0.1]).is_err());
        assert!(lomb_scargle(&t[..2], &[1.0, 2.0], &[0.1]).is_err());
        assert!(lomb_scargle(&t, &[1.0, 1.0, 1.0], &[0.1]).is_err());
        assert!(lomb_scargle(&t, &[1.0, 2.0, 3.0], &[-0.1]).is_err());
    }
}
