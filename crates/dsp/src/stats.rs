//! Descriptive statistics and least-squares helpers.
//!
//! Two of these carry the paper's evaluation directly: [`pearson`] computes
//! the correlation coefficients of Tables II–IV, and [`LineFit`] implements
//! the least-squares line whose x-axis intercept defines the initial B0
//! estimate ("line fit of the ICG points between 40 % and 80 % of the
//! amplitude of point C").

use crate::DspError;

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        None
    } else {
        Some(x.iter().sum::<f64>() / x.len() as f64)
    }
}

/// Population variance (divides by `n`). Returns `None` for an empty slice.
#[must_use]
pub fn variance(x: &[f64]) -> Option<f64> {
    let m = mean(x)?;
    Some(x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
#[must_use]
pub fn std_dev(x: &[f64]) -> Option<f64> {
    variance(x).map(f64::sqrt)
}

/// Root-mean-square value. Returns `None` for an empty slice.
#[must_use]
pub fn rms(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        None
    } else {
        Some((x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt())
    }
}

/// Median (by sorting a copy). Returns `None` for an empty slice; NaNs are
/// sorted last.
#[must_use]
pub fn median(x: &[f64]) -> Option<f64> {
    percentile(x, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`. Returns `None` for an
/// empty slice or out-of-range `p`.
#[must_use]
pub fn percentile(x: &[f64], p: f64) -> Option<f64> {
    if x.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Greater));
    let pos = p / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Pearson product-moment correlation coefficient between two equal-length
/// series — the statistic behind the paper's Tables II–IV.
///
/// # Errors
///
/// * [`DspError::LengthMismatch`] when lengths differ;
/// * [`DspError::InputTooShort`] when fewer than 2 samples;
/// * [`DspError::InvalidParameter`] when either series has zero variance
///   (the coefficient is undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, DspError> {
    if x.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(DspError::InputTooShort {
            len: x.len(),
            min_len: 2,
        });
    }
    let mx = mean(x).expect("non-empty");
    let my = mean(y).expect("non-empty");
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "variance",
            value: 0.0,
            constraint: "both series must have non-zero variance",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Result of an ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
}

impl LineFit {
    /// Fits a line to `(x[i], y[i])` pairs by ordinary least squares.
    ///
    /// # Errors
    ///
    /// * [`DspError::LengthMismatch`] when lengths differ;
    /// * [`DspError::InputTooShort`] when fewer than 2 points;
    /// * [`DspError::InvalidParameter`] when all `x` are identical (the
    ///   slope is undefined).
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self, DspError> {
        if x.len() != y.len() {
            return Err(DspError::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.len() < 2 {
            return Err(DspError::InputTooShort {
                len: x.len(),
                min_len: 2,
            });
        }
        let mx = mean(x).expect("non-empty");
        let my = mean(y).expect("non-empty");
        let (mut sxy, mut sxx) = (0.0, 0.0);
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
        }
        if sxx == 0.0 {
            return Err(DspError::InvalidParameter {
                name: "x",
                value: mx,
                constraint: "abscissae must not all be identical",
            });
        }
        let slope = sxy / sxx;
        Ok(Self {
            slope,
            intercept: my - slope * mx,
        })
    }

    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn value_at(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The x-axis intercept `−intercept / slope` (where the fitted line
    /// crosses y = 0), or `None` when the line is horizontal. This is the
    /// quantity the paper uses as the initial B-point estimate B0.
    #[must_use]
    pub fn x_intercept(&self) -> Option<f64> {
        if self.slope == 0.0 {
            None
        } else {
            Some(-self.intercept / self.slope)
        }
    }
}

/// Relative error `(a − b) / a`, the paper's displacement-error criterion
/// (equations (1)–(3)): e.g. `e21 = (Z_pos2 − Z_pos1) / Z_pos2`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `a` is zero (undefined).
pub fn relative_error(a: f64, b: f64) -> Result<f64, DspError> {
    if a == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "reference",
            value: a,
            constraint: "must be non-zero",
        });
    }
    Ok((a - b) / a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), Some(5.0));
        assert_eq!(variance(&x), Some(4.0));
        assert_eq!(std_dev(&x), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn rms_of_sine_is_inv_sqrt2() {
        let x: Vec<f64> = (0..10_000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        let r = rms(&x).unwrap();
        assert!((r - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn median_and_percentiles() {
        let x = [3.0, 1.0, 2.0];
        assert_eq!(median(&x), Some(2.0));
        assert_eq!(percentile(&x, 0.0), Some(1.0));
        assert_eq!(percentile(&x, 100.0), Some(3.0));
        assert_eq!(percentile(&x, 25.0), Some(1.5));
        assert_eq!(percentile(&x, 101.0), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_invariance_to_affine_maps() {
        let x = [1.0, 2.0, 5.0, 3.0, 8.0];
        let y = [0.3, -1.0, 2.0, 0.7, 4.0];
        let r0 = pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let r1 = pearson(&xs, &y).unwrap();
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pearson_bounded() {
        let x = [0.3, 1.8, -0.2, 4.4, 2.2, -1.0];
        let y = [1.1, 0.2, 3.3, -0.4, 0.0, 2.0];
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn line_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = LineFit::fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.value_at(10.0) - 21.0).abs() < 1e-12);
        assert!((f.x_intercept().unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_fit_horizontal_has_no_x_intercept() {
        let f = LineFit::fit(&[0.0, 1.0], &[2.0, 2.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.x_intercept(), None);
    }

    #[test]
    fn line_fit_errors() {
        assert!(LineFit::fit(&[1.0], &[1.0]).is_err());
        assert!(LineFit::fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(LineFit::fit(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn relative_error_matches_paper_equations() {
        // e21 = (Z2 − Z1)/Z2 with Z2 = 100, Z1 = 80 → 0.2
        assert!((relative_error(100.0, 80.0).unwrap() - 0.2).abs() < 1e-12);
        assert!(relative_error(0.0, 1.0).is_err());
        // sign flips when the comparison value is larger
        assert!(relative_error(100.0, 120.0).unwrap() < 0.0);
    }
}
