//! Stateful streaming filter kernels: O(new samples) per chunk.
//!
//! The batch kernels in [`crate::fir`], [`crate::iir`] and
//! [`crate::zero_phase`] process whole records — right for the paper's
//! retrospective evaluation, wrong for the firmware path (Fig 3), which
//! sees one ADC chunk at a time and must never re-touch old samples. This
//! module provides the incremental counterparts:
//!
//! * [`StatefulBiquad`] / [`StreamingCascade`] — causal IIR sections with
//!   persistent direct-form-II-transposed state; a chunk costs
//!   `O(len × sections)` regardless of how much signal came before;
//! * [`StreamingFir`] — causal FIR convolution against a ring-buffer
//!   delay line of the last `order` inputs;
//! * [`StreamingDerivative`] — the central-difference kernel of
//!   [`crate::diff::derivative`] with one sample of latency;
//! * [`StreamingZeroPhase`] — an incremental emulation of
//!   [`crate::zero_phase::filtfilt_iir`]: the forward pass streams with
//!   persistent state, and the anti-causal backward pass is re-run over a
//!   bounded unsettled tail, emitting samples once enough right-context
//!   has accumulated for the backward transient to die out.
//!
//! All kernels share coefficient sets behind [`std::sync::Arc`] (obtained
//! from [`crate::design_cache`]), so a thousand concurrent sessions hold
//! a thousand small state blocks but one coefficient allocation.
//!
//! Causal kernels are **bitwise-identical** to their batch counterparts
//! and chunk-size invariant (pinned by the tests below). The zero-phase
//! emulation is chunk-size invariant by construction — it advances in
//! whatever chunks the caller sends but its output for a given sample
//! index depends only on the sample count seen, never on chunk
//! boundaries — and converges to the batch `filtfilt` interior at a rate
//! set by the settle delay.
//!
//! # State snapshots
//!
//! Every kernel exposes a `snapshot()`/`restore()` pair over a plain-data
//! `*State` struct carrying exactly its mutable state — delay lines,
//! ring positions, pending buffers — and **never** its coefficients,
//! which are shared behind `Arc` and re-derived from
//! [`crate::design_cache`] on the restoring side. Restoring a snapshot
//! into a freshly designed kernel of the same shape resumes the stream
//! bitwise-identically to one that never paused; a shape mismatch
//! (different section count or tap count) is rejected with
//! [`crate::DspError::LengthMismatch`]. This is the substrate for
//! session migration and crash recovery in the serving layer.

pub mod lanes;

use std::sync::Arc;

use crate::error::DspError;
use crate::iir::{Biquad, Butterworth};

/// One causal biquad section with persistent state (direct form II
/// transposed) — the streaming twin of [`Biquad::filter_in_place`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatefulBiquad {
    coefficients: Biquad,
    s1: f64,
    s2: f64,
}

impl StatefulBiquad {
    /// Wraps a coefficient set with zeroed state.
    #[must_use]
    pub fn new(coefficients: Biquad) -> Self {
        Self {
            coefficients,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// Filters one sample, advancing the internal state.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let c = &self.coefficients;
        let y = c.b0 * x + self.s1;
        self.s1 = c.b1 * x - c.a1 * y + self.s2;
        self.s2 = c.b2 * x - c.a2 * y;
        y
    }

    /// Resets the state to zero (coefficients are kept).
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Captures the mutable filter state (coefficients excluded).
    #[must_use]
    pub fn snapshot(&self) -> BiquadState {
        BiquadState {
            s1: self.s1,
            s2: self.s2,
        }
    }

    /// Overwrites the filter state from a snapshot.
    pub fn restore(&mut self, state: &BiquadState) {
        self.s1 = state.s1;
        self.s2 = state.s2;
    }
}

/// Mutable state of a [`StatefulBiquad`]: the two direct-form-II-
/// transposed delay registers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BiquadState {
    /// First delay register.
    pub s1: f64,
    /// Second delay register.
    pub s2: f64,
}

/// A causal Butterworth cascade with persistent per-section state — the
/// streaming twin of [`Butterworth::filter_in_place`]. Coefficients stay
/// behind the shared [`Arc`]; only the `2 × sections` state floats are
/// per-instance.
#[derive(Debug, Clone)]
pub struct StreamingCascade {
    filter: Arc<Butterworth>,
    /// `(s1, s2)` per section.
    state: Vec<(f64, f64)>,
}

impl StreamingCascade {
    /// Creates a cascade with zeroed state over shared coefficients.
    #[must_use]
    pub fn new(filter: Arc<Butterworth>) -> Self {
        let state = vec![(0.0, 0.0); filter.sections().len()];
        Self { filter, state }
    }

    /// The underlying design.
    #[must_use]
    pub fn filter(&self) -> &Arc<Butterworth> {
        &self.filter
    }

    /// Filters one sample through every section.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let mut v = x;
        for (section, (s1, s2)) in self.filter.sections().iter().zip(self.state.iter_mut()) {
            let y = section.b0 * v + *s1;
            *s1 = section.b1 * v - section.a1 * y + *s2;
            *s2 = section.b2 * v - section.a2 * y;
            v = y;
        }
        v
    }

    /// Filters a chunk in place; each output sample is identical to what
    /// per-sample [`StreamingCascade::push`] calls would produce.
    pub fn process_in_place(&mut self, chunk: &mut [f64]) {
        for v in chunk.iter_mut() {
            *v = self.push(*v);
        }
    }

    /// Filters `chunk` into `out` (cleared first), reusing its capacity.
    pub fn process_chunk(&mut self, chunk: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(chunk.len());
        for &x in chunk {
            out.push(self.push(x));
        }
    }

    /// Resets every section's state to zero.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = (0.0, 0.0);
        }
    }

    /// Captures the per-section delay registers (coefficients excluded).
    #[must_use]
    pub fn snapshot(&self) -> CascadeState {
        CascadeState {
            sections: self.state.clone(),
        }
    }

    /// Overwrites the per-section state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the snapshot was taken from a
    /// cascade with a different section count.
    pub fn restore(&mut self, state: &CascadeState) -> Result<(), DspError> {
        if state.sections.len() != self.state.len() {
            return Err(DspError::LengthMismatch {
                left: state.sections.len(),
                right: self.state.len(),
            });
        }
        self.state.copy_from_slice(&state.sections);
        Ok(())
    }
}

/// Mutable state of a [`StreamingCascade`]: `(s1, s2)` per section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CascadeState {
    /// Delay registers, one pair per biquad section.
    pub sections: Vec<(f64, f64)>,
}

/// Causal streaming FIR: a ring-buffer delay line of the last `order`
/// inputs convolved against shared taps. Output sample `n` equals the
/// batch [`crate::fir::Fir::filter`] output at `n` exactly (both treat
/// the pre-stream past as zero).
#[derive(Debug, Clone)]
pub struct StreamingFir {
    filter: Arc<crate::fir::Fir>,
    /// Ring of the last `taps.len()` inputs; `pos` is the slot the *next*
    /// sample will occupy.
    ring: Vec<f64>,
    pos: usize,
}

impl StreamingFir {
    /// Creates a streaming FIR with a zeroed delay line over shared taps.
    #[must_use]
    pub fn new(filter: Arc<crate::fir::Fir>) -> Self {
        let ring = vec![0.0; filter.taps().len()];
        Self {
            filter,
            ring,
            pos: 0,
        }
    }

    /// The underlying design.
    #[must_use]
    pub fn filter(&self) -> &Arc<crate::fir::Fir> {
        &self.filter
    }

    /// Pushes one sample and returns the filter output at that sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let len = self.ring.len();
        self.ring[self.pos] = x;
        let taps = self.filter.taps();
        let mut acc = 0.0;
        // taps[k] pairs with the input k samples ago: ring[pos - k].
        let mut idx = self.pos;
        for &t in taps {
            acc += t * self.ring[idx];
            idx = if idx == 0 { len - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % len;
        acc
    }

    /// Filters `chunk` into `out` (cleared first), reusing its capacity.
    pub fn process_chunk(&mut self, chunk: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(chunk.len());
        for &x in chunk {
            out.push(self.push(x));
        }
    }

    /// Zeroes the delay line.
    pub fn reset(&mut self) {
        self.ring.fill(0.0);
        self.pos = 0;
    }

    /// Captures the delay line and ring position (taps excluded).
    #[must_use]
    pub fn snapshot(&self) -> FirState {
        FirState {
            ring: self.ring.clone(),
            pos: self.pos,
        }
    }

    /// Overwrites the delay line from a snapshot.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the snapshot was taken from a
    /// FIR of a different order (ring length differs) or the stored
    /// position exceeds the ring.
    pub fn restore(&mut self, state: &FirState) -> Result<(), DspError> {
        if state.ring.len() != self.ring.len() || state.pos >= self.ring.len() {
            return Err(DspError::LengthMismatch {
                left: state.ring.len(),
                right: self.ring.len(),
            });
        }
        self.ring.copy_from_slice(&state.ring);
        self.pos = state.pos;
        Ok(())
    }
}

/// Mutable state of a [`StreamingFir`]: the input delay line and the
/// slot the next sample will occupy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FirState {
    /// Ring of the last `taps.len()` inputs.
    pub ring: Vec<f64>,
    /// Slot the next input sample will occupy.
    pub pos: usize,
}

/// Streaming central-difference first derivative, matching
/// [`crate::diff::derivative`] sample for sample with one sample of
/// latency: pushing `x[n]` yields `y[n−1]`. The very first output uses
/// the forward difference, exactly as the batch kernel's left edge does;
/// the batch kernel's final backward-difference sample is never emitted
/// (a stream has no last sample).
#[derive(Debug, Clone, Copy)]
pub struct StreamingDerivative {
    fs: f64,
    prev: f64,
    prev2: f64,
    seen: usize,
}

impl StreamingDerivative {
    /// Creates the kernel for sampling rate `fs`.
    #[must_use]
    pub fn new(fs: f64) -> Self {
        Self {
            fs,
            prev: 0.0,
            prev2: 0.0,
            seen: 0,
        }
    }

    /// Pushes `x[n]` and returns `y[n−1]` once two samples have been seen.
    #[inline]
    pub fn push(&mut self, x: f64) -> Option<f64> {
        self.seen += 1;
        let out = match self.seen {
            1 => None,
            2 => Some((x - self.prev) * self.fs),
            _ => Some((x - self.prev2) * self.fs / 2.0),
        };
        self.prev2 = self.prev;
        self.prev = x;
        out
    }

    /// Total samples pushed since stream start (or the last reset).
    #[must_use]
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Resets to the start-of-stream state.
    pub fn reset(&mut self) {
        self.prev = 0.0;
        self.prev2 = 0.0;
        self.seen = 0;
    }

    /// Captures the two-sample history and stream position.
    #[must_use]
    pub fn snapshot(&self) -> DerivativeState {
        DerivativeState {
            prev: self.prev,
            prev2: self.prev2,
            seen: self.seen,
        }
    }

    /// Overwrites the history from a snapshot (`fs` is kept).
    pub fn restore(&mut self, state: &DerivativeState) {
        self.prev = state.prev;
        self.prev2 = state.prev2;
        self.seen = state.seen;
    }
}

/// Mutable state of a [`StreamingDerivative`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DerivativeState {
    /// The most recent input sample.
    pub prev: f64,
    /// The input sample before `prev`.
    pub prev2: f64,
    /// Total samples pushed so far.
    pub seen: usize,
}

/// Incremental zero-phase (forward–backward) IIR filtering with a bounded
/// settle delay.
///
/// The forward pass is strictly causal and streams with persistent state
/// — cost `O(chunk)`. The backward pass is anti-causal: the batch
/// [`crate::zero_phase::filtfilt_iir`] warms it with the entire future.
/// Here the backward recursion is instead re-run over the unsettled tail
/// once per internal `block`, primed with an even reflection at the
/// rolling head (the same edge-extension device the batch path uses at
/// the true record end). A sample is *settled* — emitted, never revisited
/// — once `settle` newer samples exist, by which point the backward
/// transient has decayed by `exp(−settle / τ)` for a filter time constant
/// of `τ` samples.
///
/// Input is quantized into fixed `block`-sample units internally:
/// arbitrary caller chunking is accumulated and processed in exact block
/// multiples, so the emitted stream after `n` pushed samples is a pure
/// function of the first `⌊n/block⌋·block` samples — **bitwise chunk-size
/// invariant** by construction. Per-sample amortized cost is
/// `O(1 + (settle + ext) / block)` — independent of stream length and of
/// any analysis-window notion upstream.
#[derive(Debug, Clone)]
pub struct StreamingZeroPhase {
    forward: StreamingCascade,
    backward: StreamingCascade,
    /// Raw input awaiting a complete block.
    pending: Vec<f64>,
    /// Forward-pass outputs not yet settled.
    tail: Vec<f64>,
    /// Samples of right-context required before a sample settles.
    settle: usize,
    /// Edge-extension length priming the backward pass at the rolling
    /// head (and the forward pass at stream start).
    ext: usize,
    /// Internal processing quantum in samples.
    block: usize,
    /// Scratch for the reversed, edge-extended tail.
    scratch: Vec<f64>,
    /// `true` once the stream-start forward priming has run.
    primed: bool,
}

impl StreamingZeroPhase {
    /// Creates the stage. `settle` is the right-context requirement in
    /// samples; `ext` the reflection length used to prime the forward
    /// pass at stream start and the backward pass at the rolling head
    /// (clamped to the available signal); `block` the internal processing
    /// quantum (worst-case added latency is `settle + block − 1` input
    /// samples).
    #[must_use]
    pub fn new(filter: Arc<Butterworth>, settle: usize, ext: usize, block: usize) -> Self {
        Self {
            forward: StreamingCascade::new(Arc::clone(&filter)),
            backward: StreamingCascade::new(filter),
            pending: Vec::new(),
            tail: Vec::new(),
            settle: settle.max(1),
            ext,
            block: block.max(1),
            scratch: Vec::new(),
            primed: false,
        }
    }

    /// The settle delay in samples: the right-context requirement before
    /// a sample is emitted. Worst-case end-to-end latency adds one block:
    /// `settle + block − 1`.
    #[must_use]
    pub fn settle_samples(&self) -> usize {
        self.settle
    }

    /// The internal processing quantum in samples.
    #[must_use]
    pub fn block_samples(&self) -> usize {
        self.block
    }

    /// Samples of raw input currently awaiting a complete block.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Samples of forward-pass output not yet settled.
    #[must_use]
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the stream-start forward priming has run.
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Returns the stage to its start-of-stream state: both cascades are
    /// zeroed, buffered input and unsettled tail are dropped, and the next
    /// block re-runs the stream-start forward priming. Used for
    /// warm-restarting a pipeline after signal loss — the discarded tail
    /// was conditioned from pre-loss signal and must not leak across the
    /// restart.
    pub fn reset(&mut self) {
        self.forward.reset();
        self.backward.reset();
        self.pending.clear();
        self.tail.clear();
        self.primed = false;
    }

    /// Pushes a chunk and appends every newly settled zero-phase output
    /// sample to `out`. Output order across calls is the input order; the
    /// emitted stream lags the input by at most
    /// `settle_samples() + block_samples() − 1`.
    pub fn push_chunk(&mut self, chunk: &[f64], out: &mut Vec<f64>) {
        self.pending.extend_from_slice(chunk);
        let mut consumed = 0;
        while self.pending.len() - consumed >= self.block {
            let (lo, hi) = (consumed, consumed + self.block);
            self.process_block_range(lo, hi, out);
            consumed = hi;
        }
        self.pending.drain(..consumed);
    }

    /// Forward-filters `pending[lo..hi]` into the tail, then runs the
    /// bounded backward pass and emits newly settled samples.
    fn process_block_range(&mut self, lo: usize, hi: usize, out: &mut Vec<f64>) {
        if !self.primed {
            // Mimic the batch left edge: run the forward state over an
            // even reflection of the first block so the first real sample
            // is approached from plausible history rather than silence.
            let ext = self.ext.min(hi - lo - 1);
            for i in (lo + 1..=lo + ext).rev() {
                let _ = self.forward.push(self.pending[i]);
            }
            self.primed = true;
        }
        let start = self.tail.len();
        self.tail.extend_from_slice(&self.pending[lo..hi]);
        for v in &mut self.tail[start..] {
            *v = self.forward.push(*v);
        }

        let settled = self.tail.len().saturating_sub(self.settle);
        if settled == 0 {
            return;
        }
        // Backward pass over the whole tail, newest first, primed by an
        // even reflection about the newest sample.
        let ext = self.ext.min(self.tail.len().saturating_sub(1));
        self.scratch.clear();
        self.scratch.reserve(self.tail.len() + ext);
        for i in (self.tail.len() - 1 - ext)..self.tail.len() - 1 {
            self.scratch.push(self.tail[i]);
        }
        self.scratch.extend(self.tail.iter().rev());
        self.backward.reset();
        self.backward.process_in_place(&mut self.scratch);
        // The oldest `settled` samples sit at the end of the reversed
        // scratch; emit them oldest-first and drop them from the tail.
        let n = self.scratch.len();
        for i in 0..settled {
            out.push(self.scratch[n - 1 - i]);
        }
        self.tail.drain(..settled);
    }

    /// Captures the mutable zero-phase state: forward-cascade registers,
    /// buffered input, unsettled tail and the priming flag. The backward
    /// cascade is reset before every block and the scratch buffer is
    /// pure workspace, so neither is part of the state.
    #[must_use]
    pub fn snapshot(&self) -> ZeroPhaseState {
        ZeroPhaseState {
            forward: self.forward.snapshot(),
            pending: self.pending.clone(),
            tail: self.tail.clone(),
            primed: self.primed,
        }
    }

    /// Overwrites the mutable state from a snapshot. The stage must have
    /// been constructed with the same design and `settle`/`ext`/`block`
    /// parameters for the resumed stream to be bitwise identical.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the forward-cascade section
    /// count differs.
    pub fn restore(&mut self, state: &ZeroPhaseState) -> Result<(), DspError> {
        self.forward.restore(&state.forward)?;
        self.backward.reset();
        self.pending.clear();
        self.pending.extend_from_slice(&state.pending);
        self.tail.clear();
        self.tail.extend_from_slice(&state.tail);
        self.primed = state.primed;
        Ok(())
    }
}

/// Mutable state of a [`StreamingZeroPhase`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZeroPhaseState {
    /// Forward-pass cascade registers.
    pub forward: CascadeState,
    /// Raw input awaiting a complete block.
    pub pending: Vec<f64>,
    /// Forward-pass outputs not yet settled.
    pub tail: Vec<f64>,
    /// Whether the stream-start forward priming has run.
    pub primed: bool,
}

/// A sliding window of raw samples addressed in absolute stream
/// coordinates, with amortized O(1) trimming.
///
/// `Vec::drain(..k)` on every push — the PR-1 [`std::vec::Vec`]
/// sliding-window idiom — is O(remaining) per call, O(n²) over a
/// session. `HistoryRing` instead tracks a logical start offset and
/// compacts with a single `copy_within` only once the dead prefix
/// exceeds the live region, so each sample is moved O(1) times
/// amortized.
#[derive(Debug, Clone, Default)]
pub struct HistoryRing {
    buf: Vec<f64>,
    /// Index into `buf` of the first live sample.
    head: usize,
    /// Absolute stream index of the first live sample.
    base: usize,
}

impl HistoryRing {
    /// Creates an empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absolute index of the first retained sample.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Absolute index one past the newest sample.
    #[must_use]
    pub fn end(&self) -> usize {
        self.base + self.len()
    }

    /// Number of live samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// `true` when no live samples remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends samples at the head of the stream.
    pub fn extend(&mut self, samples: &[f64]) {
        self.buf.extend_from_slice(samples);
    }

    /// Drops every sample with absolute index below `abs`. Amortized
    /// O(dropped): compaction only runs when the dead prefix outweighs
    /// the live samples.
    pub fn discard_before(&mut self, abs: usize) {
        let abs = abs.clamp(self.base, self.end());
        self.head += abs - self.base;
        self.base = abs;
        if self.head > self.buf.len() - self.head {
            self.buf.copy_within(self.head.., 0);
            self.buf.truncate(self.buf.len() - self.head);
            self.head = 0;
        }
    }

    /// Borrows the samples `[lo, hi)` in absolute coordinates.
    ///
    /// # Panics
    ///
    /// Panics when the range is not fully retained.
    #[must_use]
    pub fn slice(&self, lo: usize, hi: usize) -> &[f64] {
        assert!(lo >= self.base && hi <= self.end() && lo <= hi);
        &self.buf[self.head + (lo - self.base)..self.head + (hi - self.base)]
    }

    /// The live samples as one contiguous slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[self.head..]
    }

    /// Captures the live window and its absolute base index. Dead prefix
    /// capacity is not carried — a restored ring is freshly compacted.
    #[must_use]
    pub fn snapshot(&self) -> HistoryRingState {
        HistoryRingState {
            base: self.base,
            samples: self.as_slice().to_vec(),
        }
    }

    /// Rebuilds the ring from a snapshot, replacing any current content.
    pub fn restore(&mut self, state: &HistoryRingState) {
        self.buf.clear();
        self.buf.extend_from_slice(&state.samples);
        self.head = 0;
        self.base = state.base;
    }
}

/// Mutable state of a [`HistoryRing`]: the live window in absolute
/// stream coordinates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryRingState {
    /// Absolute stream index of the first retained sample.
    pub base: usize,
    /// The retained samples, oldest first.
    pub samples: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_cache;
    use crate::window::Window;
    use crate::zero_phase::filtfilt_iir;

    const FS: f64 = 250.0;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 17.0 * t).sin()
                    + 0.1 * (i as f64 * 0.7919).sin()
            })
            .collect()
    }

    #[test]
    fn streaming_cascade_matches_batch_bitwise() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let x = signal(1000);
        let batch = f.filter(&x);
        let mut s = StreamingCascade::new(f);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for chunk in x.chunks(37) {
            s.process_chunk(chunk, &mut buf);
            out.extend_from_slice(&buf);
        }
        assert_eq!(out, batch);
    }

    #[test]
    fn streaming_cascade_chunk_size_invariant() {
        let f = design_cache::butterworth_highpass(2, 0.4, FS).unwrap();
        let x = signal(700);
        let run = |chunk: usize| {
            let mut s = StreamingCascade::new(Arc::clone(&f));
            let mut out = Vec::new();
            let mut buf = Vec::new();
            for c in x.chunks(chunk) {
                s.process_chunk(c, &mut buf);
                out.extend_from_slice(&buf);
            }
            out
        };
        assert_eq!(run(1), run(613));
    }

    #[test]
    fn streaming_fir_matches_batch_bitwise() {
        let f = design_cache::fir_bandpass(32, 0.05, 40.0, FS, Window::Hamming).unwrap();
        let x = signal(800);
        let batch = f.filter(&x);
        let mut s = StreamingFir::new(f);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for chunk in x.chunks(41) {
            s.process_chunk(chunk, &mut buf);
            out.extend_from_slice(&buf);
        }
        assert_eq!(out.len(), batch.len());
        for (a, b) in out.iter().zip(&batch) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn streaming_derivative_matches_batch() {
        let x = signal(500);
        let batch = crate::diff::derivative(&x, FS).unwrap();
        let mut s = StreamingDerivative::new(FS);
        let out: Vec<f64> = x.iter().filter_map(|&v| s.push(v)).collect();
        // streaming emits y[0..n-1]; batch's last sample is the
        // backward-difference edge a stream never sees
        assert_eq!(out.len(), x.len() - 1);
        assert_eq!(out[..], batch[..x.len() - 1]);
    }

    #[test]
    fn stateful_biquad_matches_batch() {
        let f = design_cache::butterworth_lowpass(2, 20.0, FS).unwrap();
        let section = f.sections()[0];
        let x = signal(300);
        let batch = section.filter(&x);
        let mut s = StatefulBiquad::new(section);
        let out: Vec<f64> = x.iter().map(|&v| s.push(v)).collect();
        assert_eq!(out, batch);
    }

    #[test]
    fn zero_phase_converges_to_batch_interior() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let x = signal(3000);
        let batch = filtfilt_iir(&f, &x).unwrap();
        let mut s = StreamingZeroPhase::new(Arc::clone(&f), (0.5 * FS) as usize, 90, 250);
        let mut out = Vec::new();
        for chunk in x.chunks(250) {
            s.push_chunk(chunk, &mut out);
        }
        assert!(out.len() >= x.len() - (0.5 * FS) as usize);
        // Compare the interior (skip the priming-affected first 2 s).
        let scale = x.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        for i in 500..out.len() {
            assert!(
                (out[i] - batch[i]).abs() < 1e-6 * scale,
                "sample {i}: {} vs {}",
                out[i],
                batch[i]
            );
        }
    }

    #[test]
    fn zero_phase_is_chunk_size_invariant() {
        let f = design_cache::butterworth_highpass(2, 0.4, FS).unwrap();
        let x = signal(2000);
        let run = |chunks: &[usize]| {
            let mut s = StreamingZeroPhase::new(Arc::clone(&f), (2.0 * FS) as usize, 250, 50);
            let mut out = Vec::new();
            let mut fed = 0;
            let mut k = 0;
            while fed < x.len() {
                let c = chunks[k % chunks.len()].min(x.len() - fed);
                s.push_chunk(&x[fed..fed + c], &mut out);
                fed += c;
                k += 1;
            }
            out
        };
        let a = run(&[250]);
        let b = run(&[37, 113, 1, 499]);
        let n = a.len().min(b.len());
        assert!(n > 1000);
        assert_eq!(a[..n], b[..n]);
    }

    #[test]
    fn zero_phase_reset_matches_fresh_instance() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let x = signal(1500);
        let mut reused = StreamingZeroPhase::new(Arc::clone(&f), (0.5 * FS) as usize, 90, 50);
        let mut garbage = Vec::new();
        reused.push_chunk(&x[..700], &mut garbage);
        reused.reset();
        let mut fresh = StreamingZeroPhase::new(Arc::clone(&f), (0.5 * FS) as usize, 90, 50);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for chunk in x.chunks(125) {
            reused.push_chunk(chunk, &mut a);
            fresh.push_chunk(chunk, &mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn history_ring_tracks_absolute_coordinates() {
        let mut r = HistoryRing::new();
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        r.extend(&x[..60]);
        r.discard_before(25);
        r.extend(&x[60..]);
        assert_eq!(r.base(), 25);
        assert_eq!(r.end(), 100);
        assert_eq!(r.slice(30, 33), &[30.0, 31.0, 32.0]);
        r.discard_before(90);
        assert_eq!(r.len(), 10);
        assert_eq!(r.slice(95, 96), &[95.0]);
        assert_eq!(r.as_slice()[0], 90.0);
    }

    #[test]
    fn kernel_snapshots_resume_bitwise_mid_stream() {
        let lp = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let fir = design_cache::fir_bandpass(32, 0.05, 40.0, FS, Window::Hamming).unwrap();
        let x = signal(1200);
        let split = 457;

        // Straight-through references.
        let mut c_ref = StreamingCascade::new(Arc::clone(&lp));
        let mut f_ref = StreamingFir::new(Arc::clone(&fir));
        let mut d_ref = StreamingDerivative::new(FS);
        let mut z_ref = StreamingZeroPhase::new(Arc::clone(&lp), (0.5 * FS) as usize, 90, 50);
        let mut z_ref_out = Vec::new();
        let mut refs = Vec::new();
        for (i, &v) in x.iter().enumerate() {
            refs.push((c_ref.push(v), f_ref.push(v), d_ref.push(v)));
            z_ref.push_chunk(&x[i..=i], &mut z_ref_out);
        }

        // Run to `split`, snapshot, restore into fresh kernels, resume.
        let mut c = StreamingCascade::new(Arc::clone(&lp));
        let mut f = StreamingFir::new(Arc::clone(&fir));
        let mut d = StreamingDerivative::new(FS);
        let mut z = StreamingZeroPhase::new(Arc::clone(&lp), (0.5 * FS) as usize, 90, 50);
        let mut z_out = Vec::new();
        for (i, &v) in x[..split].iter().enumerate() {
            let got = (c.push(v), f.push(v), d.push(v));
            assert_eq!(got, refs[i]);
            z.push_chunk(&x[i..=i], &mut z_out);
        }
        let (cs, fs_state, ds, zs) = (c.snapshot(), f.snapshot(), d.snapshot(), z.snapshot());
        let mut c2 = StreamingCascade::new(Arc::clone(&lp));
        let mut f2 = StreamingFir::new(Arc::clone(&fir));
        let mut d2 = StreamingDerivative::new(FS);
        let mut z2 = StreamingZeroPhase::new(Arc::clone(&lp), (0.5 * FS) as usize, 90, 50);
        c2.restore(&cs).unwrap();
        f2.restore(&fs_state).unwrap();
        d2.restore(&ds);
        z2.restore(&zs).unwrap();
        for (i, &v) in x[split..].iter().enumerate() {
            let got = (c2.push(v), f2.push(v), d2.push(v));
            assert_eq!(got, refs[split + i], "sample {}", split + i);
            z2.push_chunk(&x[split + i..=split + i], &mut z_out);
        }
        assert_eq!(z_out, z_ref_out);
    }

    #[test]
    fn cascade_restore_rejects_shape_mismatch() {
        let lp4 = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let lp2 = design_cache::butterworth_lowpass(2, 20.0, FS).unwrap();
        let snap = StreamingCascade::new(lp4).snapshot();
        let mut wrong = StreamingCascade::new(lp2);
        assert!(wrong.restore(&snap).is_err());
    }

    #[test]
    fn history_ring_snapshot_round_trips() {
        let mut r = HistoryRing::new();
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        r.extend(&x);
        r.discard_before(37);
        let snap = r.snapshot();
        let mut r2 = HistoryRing::new();
        r2.extend(&[9.0; 5]);
        r2.restore(&snap);
        assert_eq!(r2.base(), 37);
        assert_eq!(r2.end(), 100);
        assert_eq!(r2.as_slice(), r.as_slice());
    }

    #[test]
    fn history_ring_discard_is_amortized() {
        // Push/trim many times; the buffer's capacity must stay bounded
        // by ~2× the live window rather than growing with the stream.
        let mut r = HistoryRing::new();
        let chunk = vec![1.0; 100];
        for _ in 0..1000 {
            r.extend(&chunk);
            let end = r.end();
            r.discard_before(end.saturating_sub(500));
        }
        assert_eq!(r.len(), 500);
        assert!(r.buf.capacity() < 5000, "capacity {}", r.buf.capacity());
    }
}
