//! Structure-of-arrays lane kernels: K interleaved sessions per sample
//! tick.
//!
//! Each kernel in this module is the K-wide twin of a scalar kernel in
//! [`crate::streaming`]: where [`super::StreamingFir`] advances one
//! session's delay line per `push`, [`LaneFir`] holds K delay lines
//! interleaved in flat `[f64; K]`-stride rows and advances all K
//! sessions per pushed sample tick. The lane count `K` is a const
//! generic, so the inner loops run over fixed-width arrays the
//! autovectorizer can turn into SIMD — no target-feature intrinsics,
//! no allocation per sample, portable everywhere.
//!
//! # Bitwise identity
//!
//! Lanes never mix: lane `k`'s output depends only on lane `k`'s
//! inputs, and every kernel performs **the identical sequence of f64
//! operations in the identical order** as its scalar twin — the inner
//! lane loop merely interleaves K independent copies of the scalar
//! recurrence. Per-session output is therefore bitwise identical to
//! the scalar kernel at any lane width, which is what lets the serving
//! layer hop whole groups of sessions through one kernel and still
//! honour the repo's bitwise conformance bar.
//!
//! The win is throughput, not semantics: the scalar FIR is latency
//! bound on one dependent accumulator chain, while the K-wide FIR runs
//! K independent accumulator chains per tap — exactly the shape SIMD
//! multiply-accumulate wants.
//!
//! # Lane join / leave
//!
//! Every kernel exposes `load_lane` / `store_lane` against the same
//! plain-data `*State` structs the scalar kernels snapshot to. Loading
//! muxes one scalar session into a lane column; storing demuxes it
//! back out, byte-identical to a session that was never in a lane.
//! Migration and crash recovery therefore keep flowing through the
//! existing scalar snapshot codec untouched — a lane is an execution
//! strategy, never a serialization format.

use std::sync::Arc;

use crate::error::DspError;
use crate::iir::{Biquad, Butterworth};
use crate::streaming::{BiquadState, CascadeState, DerivativeState, FirState, ZeroPhaseState};

/// K parallel copies of [`super::StatefulBiquad`]: one shared
/// coefficient set, K interleaved direct-form-II-transposed register
/// pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneBiquad<const K: usize> {
    coefficients: Biquad,
    s1: [f64; K],
    s2: [f64; K],
}

impl<const K: usize> LaneBiquad<K> {
    /// Wraps a coefficient set with all K lanes zeroed.
    #[must_use]
    pub fn new(coefficients: Biquad) -> Self {
        Self {
            coefficients,
            s1: [0.0; K],
            s2: [0.0; K],
        }
    }

    /// The lane width.
    #[must_use]
    pub const fn width(&self) -> usize {
        K
    }

    /// Filters one sample per lane in place, advancing every lane's
    /// registers. Per lane this is exactly
    /// [`super::StatefulBiquad::push`].
    #[inline]
    pub fn push(&mut self, x: &mut [f64; K]) {
        let c = &self.coefficients;
        for (k, lane) in x.iter_mut().enumerate() {
            let y = c.b0 * *lane + self.s1[k];
            self.s1[k] = c.b1 * *lane - c.a1 * y + self.s2[k];
            self.s2[k] = c.b2 * *lane - c.a2 * y;
            *lane = y;
        }
    }

    /// Zeroes every lane's registers (coefficients are kept).
    pub fn reset(&mut self) {
        self.s1 = [0.0; K];
        self.s2 = [0.0; K];
    }

    /// Zeroes one lane's registers.
    pub fn reset_lane(&mut self, lane: usize) {
        self.s1[lane] = 0.0;
        self.s2[lane] = 0.0;
    }

    /// Muxes a scalar biquad state into lane `lane`.
    pub fn load_lane(&mut self, lane: usize, state: &BiquadState) {
        self.s1[lane] = state.s1;
        self.s2[lane] = state.s2;
    }

    /// Demuxes lane `lane` back to a scalar biquad state.
    #[must_use]
    pub fn store_lane(&self, lane: usize) -> BiquadState {
        BiquadState {
            s1: self.s1[lane],
            s2: self.s2[lane],
        }
    }
}

/// K parallel copies of [`super::StreamingCascade`]: one shared
/// Butterworth design, `sections × K` interleaved register pairs.
#[derive(Debug, Clone)]
pub struct LaneCascade<const K: usize> {
    filter: Arc<Butterworth>,
    /// First delay register, `[section][lane]`.
    s1: Vec<[f64; K]>,
    /// Second delay register, `[section][lane]`.
    s2: Vec<[f64; K]>,
}

impl<const K: usize> LaneCascade<K> {
    /// Creates a cascade with all lanes zeroed over shared coefficients.
    #[must_use]
    pub fn new(filter: Arc<Butterworth>) -> Self {
        let n = filter.sections().len();
        Self {
            filter,
            s1: vec![[0.0; K]; n],
            s2: vec![[0.0; K]; n],
        }
    }

    /// The underlying design.
    #[must_use]
    pub fn filter(&self) -> &Arc<Butterworth> {
        &self.filter
    }

    /// The lane width.
    #[must_use]
    pub const fn width(&self) -> usize {
        K
    }

    /// Filters one sample per lane in place through every section. Per
    /// lane this is exactly [`super::StreamingCascade::push`]: the
    /// section loop is outer, so each lane sees the identical
    /// section-by-section operation order.
    #[inline]
    pub fn push(&mut self, x: &mut [f64; K]) {
        for (section, (s1, s2)) in self
            .filter
            .sections()
            .iter()
            .zip(self.s1.iter_mut().zip(self.s2.iter_mut()))
        {
            for k in 0..K {
                let y = section.b0 * x[k] + s1[k];
                s1[k] = section.b1 * x[k] - section.a1 * y + s2[k];
                s2[k] = section.b2 * x[k] - section.a2 * y;
                x[k] = y;
            }
        }
    }

    /// Filters a row-chunk in place; each row is one sample tick across
    /// all K lanes.
    pub fn process_in_place(&mut self, chunk: &mut [[f64; K]]) {
        for row in chunk.iter_mut() {
            self.push(row);
        }
    }

    /// Zeroes every lane's per-section registers.
    pub fn reset(&mut self) {
        for s in &mut self.s1 {
            *s = [0.0; K];
        }
        for s in &mut self.s2 {
            *s = [0.0; K];
        }
    }

    /// Zeroes one lane's per-section registers.
    pub fn reset_lane(&mut self, lane: usize) {
        for s in &mut self.s1 {
            s[lane] = 0.0;
        }
        for s in &mut self.s2 {
            s[lane] = 0.0;
        }
    }

    /// Muxes a scalar cascade state into lane `lane`.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the state carries a different
    /// section count than this design.
    pub fn load_lane(&mut self, lane: usize, state: &CascadeState) -> Result<(), DspError> {
        if state.sections.len() != self.s1.len() {
            return Err(DspError::LengthMismatch {
                left: state.sections.len(),
                right: self.s1.len(),
            });
        }
        for (i, &(s1, s2)) in state.sections.iter().enumerate() {
            self.s1[i][lane] = s1;
            self.s2[i][lane] = s2;
        }
        Ok(())
    }

    /// Demuxes lane `lane` back to a scalar cascade state.
    #[must_use]
    pub fn store_lane(&self, lane: usize) -> CascadeState {
        CascadeState {
            sections: self
                .s1
                .iter()
                .zip(&self.s2)
                .map(|(s1, s2)| (s1[lane], s2[lane]))
                .collect(),
        }
    }
}

/// K parallel copies of [`super::StreamingFir`]: one shared tap set,
/// K delay lines interleaved row-major (`ring[slot][lane]`), one
/// shared write cursor, and a per-lane rotation offset mapping lane
/// slots onto each session's scalar ring coordinates.
///
/// Sessions joining mid-stream arrive with arbitrary scalar ring
/// positions; rather than rotating their delay lines into a canonical
/// phase (which would have to move data), `offsets[k]` records where
/// each lane's scalar ring starts relative to the shared cursor. The
/// mapping `scalar_slot = (lane_slot + offset) % len` is a pure
/// permutation, so `load_lane` → `store_lane` round-trips byte
/// identically even mid-ring.
#[derive(Debug, Clone)]
pub struct LaneFir<const K: usize> {
    filter: Arc<crate::fir::Fir>,
    /// Interleaved delay lines: `ring[slot][lane]`.
    ring: Vec<[f64; K]>,
    /// Shared slot the next sample tick will occupy.
    pos: usize,
    /// Per-lane rotation: lane slot `l` holds the session's scalar
    /// slot `(l + offsets[lane]) % len`.
    offsets: [usize; K],
}

impl<const K: usize> LaneFir<K> {
    /// Creates a lane FIR with all delay lines zeroed over shared taps.
    #[must_use]
    pub fn new(filter: Arc<crate::fir::Fir>) -> Self {
        let ring = vec![[0.0; K]; filter.taps().len()];
        Self {
            filter,
            ring,
            pos: 0,
            offsets: [0; K],
        }
    }

    /// The underlying design.
    #[must_use]
    pub fn filter(&self) -> &Arc<crate::fir::Fir> {
        &self.filter
    }

    /// The lane width.
    #[must_use]
    pub const fn width(&self) -> usize {
        K
    }

    /// Pushes one sample per lane and writes each lane's filter output
    /// to `out`. Per lane the tap-by-tap accumulation order is exactly
    /// [`super::StreamingFir::push`] — but the K accumulator chains are
    /// independent, which is what breaks the scalar kernel's dependent
    /// multiply-add latency chain.
    #[inline]
    pub fn push(&mut self, x: &[f64; K], out: &mut [f64; K]) {
        let len = self.ring.len();
        self.ring[self.pos] = *x;
        let taps = self.filter.taps();
        let mut acc = [0.0; K];
        let mut idx = self.pos;
        for &t in taps {
            let row = &self.ring[idx];
            for k in 0..K {
                acc[k] += t * row[k];
            }
            idx = if idx == 0 { len - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % len;
        *out = acc;
    }

    /// Zeroes every delay line and all rotation offsets.
    pub fn reset(&mut self) {
        for row in &mut self.ring {
            *row = [0.0; K];
        }
        self.pos = 0;
        self.offsets = [0; K];
    }

    /// Zeroes one lane's delay line and rotation offset.
    pub fn reset_lane(&mut self, lane: usize) {
        for row in &mut self.ring {
            row[lane] = 0.0;
        }
        self.offsets[lane] = 0;
    }

    /// Muxes a scalar FIR state into lane `lane`, whatever its ring
    /// phase: the session's scalar `pos` becomes a rotation offset
    /// against the shared cursor.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the state's ring length
    /// differs from this design's tap count or its position exceeds
    /// the ring.
    pub fn load_lane(&mut self, lane: usize, state: &FirState) -> Result<(), DspError> {
        let len = self.ring.len();
        if state.ring.len() != len || state.pos >= len {
            return Err(DspError::LengthMismatch {
                left: state.ring.len(),
                right: len,
            });
        }
        let offset = (state.pos + len - self.pos) % len;
        for (l, row) in self.ring.iter_mut().enumerate() {
            row[lane] = state.ring[(l + offset) % len];
        }
        self.offsets[lane] = offset;
        Ok(())
    }

    /// Demuxes lane `lane` back to a scalar FIR state, undoing the
    /// rotation recorded at load time.
    #[must_use]
    pub fn store_lane(&self, lane: usize) -> FirState {
        let len = self.ring.len();
        let offset = self.offsets[lane];
        let mut ring = vec![0.0; len];
        for (l, row) in self.ring.iter().enumerate() {
            ring[(l + offset) % len] = row[lane];
        }
        FirState {
            ring,
            pos: (self.pos + offset) % len,
        }
    }
}

/// K parallel copies of [`super::StreamingDerivative`]: shared `fs`,
/// per-lane two-sample history and stream position.
#[derive(Debug, Clone, Copy)]
pub struct LaneDerivative<const K: usize> {
    fs: f64,
    prev: [f64; K],
    prev2: [f64; K],
    seen: [usize; K],
}

impl<const K: usize> LaneDerivative<K> {
    /// Creates the kernel for sampling rate `fs`, all lanes at
    /// start-of-stream.
    #[must_use]
    pub fn new(fs: f64) -> Self {
        Self {
            fs,
            prev: [0.0; K],
            prev2: [0.0; K],
            seen: [0; K],
        }
    }

    /// The lane width.
    #[must_use]
    pub const fn width(&self) -> usize {
        K
    }

    /// Samples lane `lane` has consumed so far.
    #[must_use]
    pub fn seen_lane(&self, lane: usize) -> usize {
        self.seen[lane]
    }

    /// Pushes `x[n]` per lane and returns each lane's `y[n−1]` once
    /// that lane has seen two samples. Per lane this is exactly
    /// [`super::StreamingDerivative::push`].
    #[inline]
    pub fn push(&mut self, x: &[f64; K]) -> [Option<f64>; K] {
        let mut out = [None; K];
        for k in 0..K {
            self.seen[k] += 1;
            out[k] = match self.seen[k] {
                1 => None,
                2 => Some((x[k] - self.prev[k]) * self.fs),
                _ => Some((x[k] - self.prev2[k]) * self.fs / 2.0),
            };
            self.prev2[k] = self.prev[k];
            self.prev[k] = x[k];
        }
        out
    }

    /// Resets every lane to the start-of-stream state.
    pub fn reset(&mut self) {
        self.prev = [0.0; K];
        self.prev2 = [0.0; K];
        self.seen = [0; K];
    }

    /// Resets one lane to the start-of-stream state.
    pub fn reset_lane(&mut self, lane: usize) {
        self.prev[lane] = 0.0;
        self.prev2[lane] = 0.0;
        self.seen[lane] = 0;
    }

    /// Muxes a scalar derivative state into lane `lane`.
    pub fn load_lane(&mut self, lane: usize, state: &DerivativeState) {
        self.prev[lane] = state.prev;
        self.prev2[lane] = state.prev2;
        self.seen[lane] = state.seen;
    }

    /// Demuxes lane `lane` back to a scalar derivative state.
    #[must_use]
    pub fn store_lane(&self, lane: usize) -> DerivativeState {
        DerivativeState {
            prev: self.prev[lane],
            prev2: self.prev2[lane],
            seen: self.seen[lane],
        }
    }
}

/// K parallel copies of [`super::StreamingZeroPhase`]: shared design
/// and `settle`/`ext`/`block` parameters, SoA pending/tail buffers of
/// `[f64; K]` rows, and one shared priming flag.
///
/// Because `pending`, `tail` and `primed` advance in lockstep for all
/// lanes, a scalar session may only join a lane group when its
/// zero-phase geometry — pending length, tail length, priming flag —
/// matches the group's. All of those are pure functions of samples
/// seen since stream start (or the last warm restart), so same-config
/// sessions of the same age always qualify; `load_lane` rejects
/// anything else.
#[derive(Debug, Clone)]
pub struct LaneZeroPhase<const K: usize> {
    forward: LaneCascade<K>,
    backward: LaneCascade<K>,
    /// Raw input rows awaiting a complete block.
    pending: Vec<[f64; K]>,
    /// Forward-pass output rows not yet settled.
    tail: Vec<[f64; K]>,
    /// Samples of right-context required before a row settles.
    settle: usize,
    /// Edge-extension length, as in the scalar stage.
    ext: usize,
    /// Internal processing quantum in sample ticks.
    block: usize,
    /// Scratch for the reversed, edge-extended tail.
    scratch: Vec<[f64; K]>,
    /// `true` once the stream-start forward priming has run.
    primed: bool,
}

impl<const K: usize> LaneZeroPhase<K> {
    /// Creates the stage with the same parameter semantics as
    /// [`super::StreamingZeroPhase::new`].
    #[must_use]
    pub fn new(filter: Arc<Butterworth>, settle: usize, ext: usize, block: usize) -> Self {
        Self {
            forward: LaneCascade::new(Arc::clone(&filter)),
            backward: LaneCascade::new(filter),
            pending: Vec::new(),
            tail: Vec::new(),
            settle: settle.max(1),
            ext,
            block: block.max(1),
            scratch: Vec::new(),
            primed: false,
        }
    }

    /// The lane width.
    #[must_use]
    pub const fn width(&self) -> usize {
        K
    }

    /// Rows of raw input currently awaiting a complete block.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Rows of forward-pass output not yet settled.
    #[must_use]
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the stream-start forward priming has run.
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Returns every lane to the start-of-stream state.
    pub fn reset(&mut self) {
        self.forward.reset();
        self.backward.reset();
        self.pending.clear();
        self.tail.clear();
        self.primed = false;
    }

    /// Pushes a row-chunk (one `[f64; K]` row per sample tick) and
    /// appends every newly settled output row to `out`. Per lane this
    /// emits exactly what [`super::StreamingZeroPhase::push_chunk`]
    /// would.
    pub fn push_chunk(&mut self, chunk: &[[f64; K]], out: &mut Vec<[f64; K]>) {
        self.pending.extend_from_slice(chunk);
        let mut consumed = 0;
        while self.pending.len() - consumed >= self.block {
            let (lo, hi) = (consumed, consumed + self.block);
            self.process_block_range(lo, hi, out);
            consumed = hi;
        }
        self.pending.drain(..consumed);
    }

    /// Row-for-row twin of the scalar stage's `process_block_range`.
    fn process_block_range(&mut self, lo: usize, hi: usize, out: &mut Vec<[f64; K]>) {
        if !self.primed {
            let ext = self.ext.min(hi - lo - 1);
            for i in (lo + 1..=lo + ext).rev() {
                let mut row = self.pending[i];
                self.forward.push(&mut row);
            }
            self.primed = true;
        }
        let start = self.tail.len();
        self.tail.extend_from_slice(&self.pending[lo..hi]);
        for row in &mut self.tail[start..] {
            self.forward.push(row);
        }

        let settled = self.tail.len().saturating_sub(self.settle);
        if settled == 0 {
            return;
        }
        let ext = self.ext.min(self.tail.len().saturating_sub(1));
        self.scratch.clear();
        self.scratch.reserve(self.tail.len() + ext);
        for i in (self.tail.len() - 1 - ext)..self.tail.len() - 1 {
            self.scratch.push(self.tail[i]);
        }
        self.scratch.extend(self.tail.iter().rev());
        self.backward.reset();
        self.backward.process_in_place(&mut self.scratch);
        let n = self.scratch.len();
        for i in 0..settled {
            out.push(self.scratch[n - 1 - i]);
        }
        self.tail.drain(..settled);
    }

    /// Re-seeds the shared geometry — pending length, tail length,
    /// priming flag — zeroing every lane. Used when the first session
    /// joins an empty group: the group takes on that session's
    /// geometry, then `load_lane` fills the session's column.
    pub fn seed_geometry(&mut self, pending_len: usize, tail_len: usize, primed: bool) {
        self.forward.reset();
        self.backward.reset();
        self.pending.clear();
        self.pending.resize(pending_len, [0.0; K]);
        self.tail.clear();
        self.tail.resize(tail_len, [0.0; K]);
        self.primed = primed;
    }

    /// Muxes a scalar zero-phase state into lane `lane`. The state's
    /// geometry — pending length, tail length, priming flag — must
    /// match the group's current geometry exactly.
    ///
    /// # Errors
    ///
    /// [`DspError::LengthMismatch`] when the pending or tail length
    /// differs, [`DspError::InvalidParameter`] when the priming flag
    /// differs, and the forward cascade's own shape error when the
    /// section count differs.
    pub fn load_lane(&mut self, lane: usize, state: &ZeroPhaseState) -> Result<(), DspError> {
        if state.pending.len() != self.pending.len() {
            return Err(DspError::LengthMismatch {
                left: state.pending.len(),
                right: self.pending.len(),
            });
        }
        if state.tail.len() != self.tail.len() {
            return Err(DspError::LengthMismatch {
                left: state.tail.len(),
                right: self.tail.len(),
            });
        }
        if state.primed != self.primed {
            return Err(DspError::InvalidParameter {
                name: "primed",
                value: f64::from(u8::from(state.primed)),
                constraint: "must match the lane group's priming flag",
            });
        }
        self.forward.load_lane(lane, &state.forward)?;
        for (row, &v) in self.pending.iter_mut().zip(&state.pending) {
            row[lane] = v;
        }
        for (row, &v) in self.tail.iter_mut().zip(&state.tail) {
            row[lane] = v;
        }
        Ok(())
    }

    /// Demuxes lane `lane` back to a scalar zero-phase state,
    /// byte-identical to the snapshot of a scalar stage that processed
    /// the same samples.
    #[must_use]
    pub fn store_lane(&self, lane: usize) -> ZeroPhaseState {
        ZeroPhaseState {
            forward: self.forward.store_lane(lane),
            pending: self.pending.iter().map(|row| row[lane]).collect(),
            tail: self.tail.iter().map(|row| row[lane]).collect(),
            primed: self.primed,
        }
    }
}

#[cfg(test)]
// The bitwise-equivalence checks index sample `i` of lane `k` on both
// the lane and scalar sides symmetrically; iterator rewrites would
// obscure that symmetry.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::design_cache;
    use crate::streaming::{
        StatefulBiquad, StreamingCascade, StreamingDerivative, StreamingFir, StreamingZeroPhase,
    };
    use crate::window::Window;

    const FS: f64 = 250.0;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 3.0 * t + phase).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 17.0 * t + phase).sin()
                    + 0.1 * (i as f64 * 0.7919 + phase).sin()
            })
            .collect()
    }

    fn lanes_of<const K: usize>(n: usize) -> Vec<Vec<f64>> {
        (0..K).map(|k| signal(n, k as f64 * 0.37)).collect()
    }

    fn check_cascade<const K: usize>() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let xs = lanes_of::<K>(600);
        let mut scalars: Vec<_> = (0..K)
            .map(|_| StreamingCascade::new(Arc::clone(&f)))
            .collect();
        let mut lane = LaneCascade::<K>::new(f);
        for i in 0..600 {
            let mut row = [0.0; K];
            for k in 0..K {
                row[k] = xs[k][i];
            }
            lane.push(&mut row);
            for k in 0..K {
                assert_eq!(row[k].to_bits(), scalars[k].push(xs[k][i]).to_bits());
            }
        }
        for (k, scalar) in scalars.iter().enumerate() {
            assert_eq!(lane.store_lane(k), scalar.snapshot());
        }
    }

    #[test]
    fn lane_cascade_bitwise_at_k_1_4_8() {
        check_cascade::<1>();
        check_cascade::<4>();
        check_cascade::<8>();
    }

    fn check_fir<const K: usize>() {
        let f = design_cache::fir_bandpass(32, 0.05, 40.0, FS, Window::Hamming).unwrap();
        let xs = lanes_of::<K>(500);
        let mut scalars: Vec<_> = (0..K).map(|_| StreamingFir::new(Arc::clone(&f))).collect();
        let mut lane = LaneFir::<K>::new(f);
        let mut out = [0.0; K];
        for i in 0..500 {
            let mut row = [0.0; K];
            for k in 0..K {
                row[k] = xs[k][i];
            }
            lane.push(&row, &mut out);
            for k in 0..K {
                assert_eq!(out[k].to_bits(), scalars[k].push(xs[k][i]).to_bits());
            }
        }
        for (k, scalar) in scalars.iter().enumerate() {
            assert_eq!(lane.store_lane(k), scalar.snapshot());
        }
    }

    #[test]
    fn lane_fir_bitwise_at_k_1_4_8() {
        check_fir::<1>();
        check_fir::<4>();
        check_fir::<8>();
    }

    #[test]
    fn lane_biquad_bitwise_and_round_trip() {
        let f = design_cache::butterworth_lowpass(2, 20.0, FS).unwrap();
        let section = f.sections()[0];
        let xs = lanes_of::<4>(400);
        let mut scalars = [StatefulBiquad::new(section); 4];
        let mut lane = LaneBiquad::<4>::new(section);
        for i in 0..400 {
            let mut row = [0.0; 4];
            for k in 0..4 {
                row[k] = xs[k][i];
            }
            lane.push(&mut row);
            for k in 0..4 {
                assert_eq!(row[k].to_bits(), scalars[k].push(xs[k][i]).to_bits());
            }
        }
        for (k, scalar) in scalars.iter().enumerate() {
            assert_eq!(lane.store_lane(k), scalar.snapshot());
        }
    }

    #[test]
    fn lane_derivative_bitwise_and_round_trip() {
        let xs = lanes_of::<8>(300);
        let mut scalars = [StreamingDerivative::new(FS); 8];
        let mut lane = LaneDerivative::<8>::new(FS);
        for i in 0..300 {
            let mut row = [0.0; 8];
            for k in 0..8 {
                row[k] = xs[k][i];
            }
            let outs = lane.push(&row);
            for k in 0..8 {
                let want = scalars[k].push(xs[k][i]);
                assert_eq!(outs[k].map(f64::to_bits), want.map(f64::to_bits));
            }
        }
        for (k, scalar) in scalars.iter().enumerate() {
            assert_eq!(lane.store_lane(k), scalar.snapshot());
        }
    }

    /// Sessions mid-stream have heterogeneous ring positions; loading
    /// them into a shared-cursor lane and continuing must stay bitwise
    /// identical, and storing back must round-trip the exact scalar
    /// state bytes.
    #[test]
    fn lane_fir_adopts_heterogeneous_ring_phases() {
        let f = design_cache::fir_bandpass(32, 0.05, 40.0, FS, Window::Hamming).unwrap();
        let xs = lanes_of::<4>(700);
        // Warm each scalar session a different number of samples so
        // every ring phase differs.
        let warm = [0usize, 7, 19, 32];
        let mut scalars: Vec<_> = (0..4).map(|_| StreamingFir::new(Arc::clone(&f))).collect();
        for (k, scalar) in scalars.iter_mut().enumerate() {
            for i in 0..warm[k] {
                let _ = scalar.push(xs[k][i]);
            }
        }
        let mut lane = LaneFir::<4>::new(Arc::clone(&f));
        // Desynchronize the shared cursor too.
        let mut sink = [0.0; 4];
        for _ in 0..5 {
            lane.push(&[0.0; 4], &mut sink);
        }
        for (k, scalar) in scalars.iter().enumerate() {
            lane.load_lane(k, &scalar.snapshot()).unwrap();
            assert_eq!(lane.store_lane(k), scalar.snapshot(), "lane {k}");
        }
        for i in 0..300 {
            let mut row = [0.0; 4];
            for k in 0..4 {
                row[k] = xs[k][warm[k] + i];
            }
            lane.push(&row, &mut sink);
            for k in 0..4 {
                let want = scalars[k].push(xs[k][warm[k] + i]);
                assert_eq!(sink[k].to_bits(), want.to_bits(), "lane {k} sample {i}");
            }
        }
        for (k, scalar) in scalars.iter().enumerate() {
            assert_eq!(lane.store_lane(k), scalar.snapshot(), "lane {k} after run");
        }
    }

    fn check_zero_phase<const K: usize>() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let settle = (0.5 * FS) as usize;
        let xs = lanes_of::<K>(1100);
        let mut scalars: Vec<_> = (0..K)
            .map(|_| StreamingZeroPhase::new(Arc::clone(&f), settle, 90, 50))
            .collect();
        let mut scalar_outs: Vec<Vec<f64>> = vec![Vec::new(); K];
        let mut lane = LaneZeroPhase::<K>::new(f, settle, 90, 50);
        let mut lane_out = Vec::new();
        for lo in (0..1100).step_by(37) {
            let hi = (lo + 37).min(1100);
            let rows: Vec<[f64; K]> = (lo..hi)
                .map(|i| {
                    let mut row = [0.0; K];
                    for k in 0..K {
                        row[k] = xs[k][i];
                    }
                    row
                })
                .collect();
            lane.push_chunk(&rows, &mut lane_out);
            for k in 0..K {
                scalars[k].push_chunk(&xs[k][lo..hi], &mut scalar_outs[k]);
            }
        }
        for k in 0..K {
            assert_eq!(lane_out.len(), scalar_outs[k].len());
            for (i, row) in lane_out.iter().enumerate() {
                assert_eq!(
                    row[k].to_bits(),
                    scalar_outs[k][i].to_bits(),
                    "lane {k} sample {i}"
                );
            }
            assert_eq!(lane.store_lane(k), scalars[k].snapshot(), "lane {k} state");
        }
    }

    #[test]
    fn lane_zero_phase_bitwise_at_k_1_4_8() {
        check_zero_phase::<1>();
        check_zero_phase::<4>();
        check_zero_phase::<8>();
    }

    /// Join mid-stream: a scalar session that has seen the same number
    /// of samples as the group loads in, continues bitwise, and stores
    /// back out byte-identical to never having joined.
    #[test]
    fn lane_zero_phase_mid_stream_join_round_trips() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let settle = (0.5 * FS) as usize;
        let xs = lanes_of::<4>(900);
        let join = 333;

        // Scalar references, never laned.
        let mut refs: Vec<_> = (0..4)
            .map(|_| StreamingZeroPhase::new(Arc::clone(&f), settle, 90, 50))
            .collect();
        let mut ref_outs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for k in 0..4 {
            refs[k].push_chunk(&xs[k][..join], &mut ref_outs[k]);
        }

        // Group runs the same samples (lane k fed signal k), then each
        // scalar joins its lane — geometry matches because the ages
        // match.
        let mut lane = LaneZeroPhase::<4>::new(Arc::clone(&f), settle, 90, 50);
        let mut lane_out = Vec::new();
        let rows: Vec<[f64; 4]> = (0..join)
            .map(|i| [xs[0][i], xs[1][i], xs[2][i], xs[3][i]])
            .collect();
        lane.push_chunk(&rows, &mut lane_out);
        for (k, r) in refs.iter().enumerate() {
            lane.load_lane(k, &r.snapshot()).unwrap();
        }
        lane_out.clear();
        let rows: Vec<[f64; 4]> = (join..900)
            .map(|i| [xs[0][i], xs[1][i], xs[2][i], xs[3][i]])
            .collect();
        lane.push_chunk(&rows, &mut lane_out);
        for k in 0..4 {
            let before = ref_outs[k].len();
            refs[k].push_chunk(&xs[k][join..], &mut ref_outs[k]);
            for (i, row) in lane_out.iter().enumerate() {
                assert_eq!(row[k].to_bits(), ref_outs[k][before + i].to_bits());
            }
            assert_eq!(lane.store_lane(k), refs[k].snapshot(), "lane {k}");
        }
    }

    #[test]
    fn lane_zero_phase_rejects_geometry_mismatch() {
        let f = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let settle = (0.5 * FS) as usize;
        let mut lane = LaneZeroPhase::<2>::new(Arc::clone(&f), settle, 90, 50);
        let mut scalar = StreamingZeroPhase::new(f, settle, 90, 50);
        let x = signal(77, 0.0);
        let mut sink = Vec::new();
        scalar.push_chunk(&x, &mut sink);
        // The lane group saw nothing; the scalar's pending/primed
        // geometry differs.
        assert!(lane.load_lane(0, &scalar.snapshot()).is_err());
    }

    #[test]
    fn lane_cascade_rejects_shape_mismatch() {
        let lp4 = design_cache::butterworth_lowpass(4, 20.0, FS).unwrap();
        let lp2 = design_cache::butterworth_lowpass(2, 20.0, FS).unwrap();
        let snap = StreamingCascade::new(lp4).snapshot();
        let mut lane = LaneCascade::<4>::new(lp2);
        assert!(lane.load_lane(0, &snap).is_err());
    }
}
