//! Discrete wavelet transform and wavelet denoising.
//!
//! The paper's related-work section points at wavelet methods as the
//! established approach for suppressing respiratory and motion artifacts
//! in impedance cardiography (Pandey & Pandey 2007 \[16\]; Sebastian et al.
//! 2011 \[17\]). This module implements that **baseline**: a multi-level
//! DWT (Haar and Daubechies-4), soft/hard coefficient thresholding, and
//! the artifact-cancellation construction those papers use — zeroing the
//! deepest approximation band, which holds the sub-hertz respiratory
//! drift, while thresholding detail bands against wideband noise.
//!
//! The transform uses **periodized** boundary handling (exact perfect
//! reconstruction for orthonormal banks) and works for arbitrary signal
//! lengths — odd lengths are replicate-padded by one sample per level and
//! trimmed on reconstruction, so no power-of-two padding is needed.

use crate::DspError;

/// Wavelet family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Wavelet {
    /// Haar (db1): 2-tap, exact reconstruction, blocky.
    Haar,
    /// Daubechies-4 (db2): 4-tap, smoother — the usual choice in the ICG
    /// denoising literature.
    Db4,
}

impl Wavelet {
    /// Low-pass (scaling) analysis taps.
    #[must_use]
    pub fn lowpass(&self) -> &'static [f64] {
        const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
        const HAAR: [f64; 2] = [SQRT2_INV, SQRT2_INV];
        // db4 coefficients (h0..h3), orthonormal.
        const DB4: [f64; 4] = [
            0.482_962_913_144_690_2,
            0.836_516_303_737_469,
            0.224_143_868_041_857_35,
            -0.129_409_522_550_921_45,
        ];
        match self {
            Wavelet::Haar => &HAAR,
            Wavelet::Db4 => &DB4,
        }
    }

    /// High-pass (wavelet) analysis taps, by the quadrature-mirror
    /// relation `g[k] = (−1)^k · h[L−1−k]`.
    #[must_use]
    pub fn highpass(&self) -> Vec<f64> {
        let h = self.lowpass();
        let l = h.len();
        (0..l)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * h[l - 1 - k]
            })
            .collect()
    }
}

/// A multi-level DWT decomposition: `details[0]` is the finest band,
/// `approximation` the coarsest.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Detail bands, finest first.
    pub details: Vec<Vec<f64>>,
    /// The deepest approximation band.
    pub approximation: Vec<f64>,
    wavelet: Wavelet,
    /// Original signal length per level, needed for exact reconstruction.
    lengths: Vec<usize>,
}

/// One analysis level with **periodized** boundaries: convolve +
/// downsample by 2 over an even-length input (the caller replicates the
/// last sample of odd inputs first).
fn analyze_level(x: &[f64], w: Wavelet) -> (Vec<f64>, Vec<f64>) {
    debug_assert!(x.len() % 2 == 0);
    let h = w.lowpass();
    let g = w.highpass();
    let n = x.len();
    let half = n / 2;
    let mut a = Vec::with_capacity(half);
    let mut d = Vec::with_capacity(half);
    for k in 0..half {
        let (mut sa, mut sd) = (0.0, 0.0);
        for (t, (&hh, &gg)) in h.iter().zip(&g).enumerate() {
            let v = x[(2 * k + t) % n];
            sa += hh * v;
            sd += gg * v;
        }
        a.push(sa);
        d.push(sd);
    }
    (a, d)
}

/// One synthesis level of the periodized transform: upsample by 2 and
/// convolve with the synthesis filters; exact inverse of
/// [`analyze_level`] for an orthonormal bank.
fn synthesize_level(a: &[f64], d: &[f64], w: Wavelet) -> Vec<f64> {
    let h = w.lowpass();
    let g = w.highpass();
    let n = 2 * a.len();
    let mut out = vec![0.0; n];
    for (k, (&av, &dv)) in a.iter().zip(d).enumerate() {
        for (t, (&hh, &gg)) in h.iter().zip(&g).enumerate() {
            let idx = (2 * k + t) % n;
            out[idx] += hh * av + gg * dv;
        }
    }
    out
}

/// Decomposes `x` into `levels` detail bands plus one approximation.
///
/// # Errors
///
/// * [`DspError::InvalidParameter`] when `levels == 0`;
/// * [`DspError::InputTooShort`] when the signal cannot support the
///   requested depth (each level needs at least the filter length).
pub fn decompose(x: &[f64], wavelet: Wavelet, levels: usize) -> Result<Decomposition, DspError> {
    if levels == 0 {
        return Err(DspError::InvalidParameter {
            name: "levels",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    let min_len = wavelet.lowpass().len() << levels;
    if x.len() < min_len {
        return Err(DspError::InputTooShort {
            len: x.len(),
            min_len,
        });
    }
    let mut details = Vec::with_capacity(levels);
    let mut lengths = Vec::with_capacity(levels);
    let mut current = x.to_vec();
    for _ in 0..levels {
        lengths.push(current.len());
        if current.len() % 2 == 1 {
            // periodization needs even lengths; replicate the last sample
            let last = *current.last().expect("non-empty");
            current.push(last);
        }
        let (a, d) = analyze_level(&current, wavelet);
        details.push(d);
        current = a;
    }
    Ok(Decomposition {
        details,
        approximation: current,
        wavelet,
        lengths,
    })
}

impl Decomposition {
    /// Number of levels in the decomposition.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Reconstructs the signal from the (possibly modified) bands.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut current = self.approximation.clone();
        for (d, &len) in self.details.iter().zip(&self.lengths).rev() {
            current = synthesize_level(&current, d, self.wavelet);
            current.truncate(len); // undo the odd-length replication pad
        }
        current
    }

    /// Robust noise estimate from the finest detail band:
    /// `σ = median(|d1|) / 0.6745` (Donoho).
    #[must_use]
    pub fn noise_sigma(&self) -> f64 {
        let mut mags: Vec<f64> = self.details[0].iter().map(|v| v.abs()).collect();
        if mags.is_empty() {
            return 0.0;
        }
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = mags.len() / 2;
        let median = if mags.len() % 2 == 0 {
            (mags[mid - 1] + mags[mid]) / 2.0
        } else {
            mags[mid]
        };
        median / 0.6745
    }
}

/// Thresholding rule for [`denoise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Threshold {
    /// Soft thresholding: shrink toward zero by the threshold.
    Soft,
    /// Hard thresholding: zero below the threshold, keep above.
    Hard,
}

fn apply_threshold(band: &mut [f64], thr: f64, rule: Threshold) {
    for v in band.iter_mut() {
        match rule {
            Threshold::Soft => {
                *v = if v.abs() <= thr {
                    0.0
                } else {
                    v.signum() * (v.abs() - thr)
                };
            }
            Threshold::Hard => {
                if v.abs() <= thr {
                    *v = 0.0;
                }
            }
        }
    }
}

/// Universal-threshold wavelet denoising (VisuShrink): decompose, threshold
/// every detail band at `σ · √(2 ln n)`, reconstruct.
///
/// # Errors
///
/// Propagates the conditions of [`decompose`].
pub fn denoise(
    x: &[f64],
    wavelet: Wavelet,
    levels: usize,
    rule: Threshold,
) -> Result<Vec<f64>, DspError> {
    let mut dec = decompose(x, wavelet, levels)?;
    let sigma = dec.noise_sigma();
    let thr = sigma * (2.0 * (x.len() as f64).ln()).sqrt();
    for band in dec.details.iter_mut() {
        apply_threshold(band, thr, rule);
    }
    Ok(dec.reconstruct())
}

/// The respiratory-artifact cancellation of \[16\]/\[17\]: remove the deepest
/// approximation band **and the deepest detail band**, then reconstruct.
/// The approximation holds the sub-`fs/2^(levels+1)` hertz drift; the
/// deepest detail must go too because a 4-tap wavelet's band separation
/// is shallow enough that strong drift leaks into it.
///
/// With `fs = 250 Hz` and `levels = 8`, the discarded content is below
/// ≈ 1 Hz nominal — under the ICG band (0.8–20 Hz) — while the cardiac
/// content lives in the retained detail bands.
///
/// # Errors
///
/// Propagates the conditions of [`decompose`].
pub fn remove_baseline_wavelet(
    x: &[f64],
    wavelet: Wavelet,
    levels: usize,
) -> Result<Vec<f64>, DspError> {
    let mut dec = decompose(x, wavelet, levels)?;
    for v in dec.approximation.iter_mut() {
        *v = 0.0;
    }
    if let Some(deepest) = dec.details.last_mut() {
        for v in deepest.iter_mut() {
            *v = 0.0;
        }
    }
    Ok(dec.reconstruct())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirpy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 250.0;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 11.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn qmf_relation_holds() {
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let h = w.lowpass();
            let g = w.highpass();
            // orthogonality: Σ h[k]·g[k] = 0; unit energy each
            let dot: f64 = h.iter().zip(&g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-12);
            let eh: f64 = h.iter().map(|v| v * v).sum();
            let eg: f64 = g.iter().map(|v| v * v).sum();
            assert!((eh - 1.0).abs() < 1e-9);
            assert!((eg - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_reconstruction_power_of_two() {
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let x = chirpy(512);
            for levels in [1, 3, 5] {
                let dec = decompose(&x, w, levels).unwrap();
                let y = dec.reconstruct();
                assert_eq!(y.len(), x.len());
                // interior reconstruction must be near-exact; boundary
                // folding costs a little at the edges for db4
                let margin = 16;
                for i in margin..x.len() - margin {
                    assert!(
                        (x[i] - y[i]).abs() < 1e-8,
                        "{w:?} L{levels} sample {i}: {} vs {}",
                        x[i],
                        y[i]
                    );
                }
            }
        }
    }

    #[test]
    fn reconstruction_handles_odd_lengths() {
        let x = chirpy(501);
        let dec = decompose(&x, Wavelet::Haar, 3).unwrap();
        let y = dec.reconstruct();
        assert_eq!(y.len(), 501);
        for i in 8..493 {
            assert!((x[i] - y[i]).abs() < 1e-8, "sample {i}");
        }
    }

    #[test]
    fn band_sizes_halve() {
        let x = chirpy(400);
        let dec = decompose(&x, Wavelet::Db4, 3).unwrap();
        assert_eq!(dec.levels(), 3);
        assert_eq!(dec.details[0].len(), 200);
        assert_eq!(dec.details[1].len(), 100);
        assert_eq!(dec.details[2].len(), 50);
        assert_eq!(dec.approximation.len(), 50);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = chirpy(64);
        assert!(decompose(&x, Wavelet::Db4, 0).is_err());
        assert!(decompose(&x, Wavelet::Db4, 8).is_err());
    }

    #[test]
    fn noise_sigma_estimates_white_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        // crude normal via sum of uniforms (CLT): var = 12·(1/12) = 1
        let x: Vec<f64> = (0..8192)
            .map(|_| {
                let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                0.3 * (s - 6.0)
            })
            .collect();
        let dec = decompose(&x, Wavelet::Db4, 4).unwrap();
        let sigma = dec.noise_sigma();
        assert!((sigma - 0.3).abs() < 0.03, "sigma {sigma}");
    }

    #[test]
    fn denoise_improves_snr_on_transient_signal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Wavelet thresholding shines on sparse/transient signals (like
        // ICG beats), not stationary tones: build a beat-like train of
        // localized bumps.
        let n = 2048;
        let mut clean = vec![0.0; n];
        for centre in (100..n).step_by(200) {
            let lo = centre.saturating_sub(60);
            for (i, c) in clean[lo..(centre + 60).min(n)].iter_mut().enumerate() {
                let t = ((i + lo) as f64 - centre as f64) / 15.0;
                *c += 2.0 * (-t * t / 2.0).exp();
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let noisy: Vec<f64> = clean
            .iter()
            .map(|v| {
                let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                v + 0.25 * (s - 6.0)
            })
            .collect();
        let den = denoise(&noisy, Wavelet::Db4, 4, Threshold::Hard).unwrap();
        let err = |y: &[f64]| -> f64 {
            y[64..n - 64]
                .iter()
                .zip(&clean[64..n - 64])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        assert!(
            err(&den) < 0.4 * err(&noisy),
            "denoise gain too small: {} vs {}",
            err(&den),
            err(&noisy)
        );
    }

    #[test]
    fn hard_threshold_keeps_large_coefficients() {
        let mut band = vec![0.1, -0.5, 2.0, -3.0, 0.05];
        apply_threshold(&mut band, 1.0, Threshold::Hard);
        assert_eq!(band, vec![0.0, 0.0, 2.0, -3.0, 0.0]);
        let mut band2 = vec![0.1, -0.5, 2.0, -3.0, 0.05];
        apply_threshold(&mut band2, 1.0, Threshold::Soft);
        assert_eq!(band2, vec![0.0, 0.0, 1.0, -2.0, 0.0]);
    }

    #[test]
    fn baseline_removal_kills_drift_keeps_cardiac_band() {
        let fs = 250.0;
        let n = 4096;
        let drift: Vec<f64> = (0..n)
            .map(|i| 2.0 * (2.0 * std::f64::consts::PI * 0.2 * i as f64 / fs).sin())
            .collect();
        let cardiac: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 / fs).sin())
            .collect();
        let x: Vec<f64> = drift.iter().zip(&cardiac).map(|(a, b)| a + b).collect();
        // 8 levels at 250 Hz → approximation below ~0.5 Hz
        let y = remove_baseline_wavelet(&x, Wavelet::Db4, 8).unwrap();
        let mut worst = 0.0f64;
        for i in 400..n - 400 {
            worst = worst.max((y[i] - cardiac[i]).abs());
        }
        assert!(worst < 0.35, "residual drift {worst}");
    }
}
