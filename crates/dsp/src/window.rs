//! Tapering windows for FIR design and spectral analysis.
//!
//! The paper's 32nd-order ECG bandpass is designed with the windowed-sinc
//! method; this module supplies the window shapes. The Kaiser window uses a
//! series evaluation of the zeroth-order modified Bessel function `I0`.

use crate::DspError;

/// Window shape selector.
///
/// # Example
///
/// ```
/// use cardiotouch_dsp::window::Window;
///
/// let w = Window::Hamming.coefficients(5);
/// assert_eq!(w.len(), 5);
/// // Hamming is symmetric and peaks in the middle.
/// assert!((w[0] - w[4]).abs() < 1e-12);
/// assert!(w[2] > w[0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Raised cosine with 0.54/0.46 coefficients; −43 dB sidelobes.
    #[default]
    Hamming,
    /// Raised cosine reaching zero at the edges; −31 dB sidelobes.
    Hann,
    /// Three-term cosine window; −58 dB sidelobes.
    Blackman,
    /// Kaiser window with shape parameter β (trade-off between main-lobe
    /// width and sidelobe level).
    Kaiser {
        /// Shape parameter; β = 0 degenerates to rectangular.
        beta: f64,
    },
}

impl Window {
    /// Returns the `len` coefficients of a *symmetric* window.
    ///
    /// A symmetric window of length `L` satisfies `w[n] == w[L-1-n]`, which
    /// is required for linear-phase FIR design.
    ///
    /// # Panics
    ///
    /// Never panics; `len == 0` returns an empty vector and `len == 1`
    /// returns `[1.0]`.
    #[must_use]
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let m = (len - 1) as f64;
        (0..len)
            .map(|n| {
                let x = n as f64;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x / m).cos(),
                    Window::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x / m).cos(),
                    Window::Blackman => {
                        let t = 2.0 * std::f64::consts::PI * x / m;
                        0.42 - 0.5 * t.cos() + 0.08 * (2.0 * t).cos()
                    }
                    Window::Kaiser { beta } => {
                        let r = 2.0 * x / m - 1.0;
                        bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / bessel_i0(beta)
                    }
                }
            })
            .collect()
    }

    /// Estimates the Kaiser β needed for a given stop-band attenuation in
    /// decibels (Kaiser's empirical formula).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `atten_db` is not finite or
    /// is negative.
    pub fn kaiser_beta_for_attenuation(atten_db: f64) -> Result<f64, DspError> {
        if !atten_db.is_finite() || atten_db < 0.0 {
            return Err(DspError::InvalidParameter {
                name: "atten_db",
                value: atten_db,
                constraint: "must be finite and non-negative",
            });
        }
        Ok(if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
        } else {
            0.0
        })
    }
}

/// Zeroth-order modified Bessel function of the first kind, by power series.
///
/// Converges rapidly for the argument range used by Kaiser windows
/// (|x| ≲ 30). Truncates when a term falls below `1e-16` of the running sum.
#[must_use]
pub fn bessel_i0(x: f64) -> f64 {
    let y = x * x / 4.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..200 {
        term *= y / ((k * k) as f64);
        sum += term;
        if term < sum * 1e-16 {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric(w: &[f64]) {
        for i in 0..w.len() / 2 {
            assert!(
                (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                "asymmetry at {i}: {} vs {}",
                w[i],
                w[w.len() - 1 - i]
            );
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert_eq!(Window::Rectangular.coefficients(4), vec![1.0; 4]);
    }

    #[test]
    fn edge_lengths() {
        assert!(Window::Hamming.coefficients(0).is_empty());
        assert_eq!(Window::Hamming.coefficients(1), vec![1.0]);
    }

    #[test]
    fn hamming_endpoints_are_0_08() {
        let w = Window::Hamming.coefficients(33);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[32] - 0.08).abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = Window::Hann.coefficients(21);
        assert!(w[0].abs() < 1e-12);
        assert!((w[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_endpoints_near_zero() {
        let w = Window::Blackman.coefficients(21);
        assert!(w[0].abs() < 1e-10);
        assert!((w[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_windows_symmetric() {
        for win in [
            Window::Rectangular,
            Window::Hamming,
            Window::Hann,
            Window::Blackman,
            Window::Kaiser { beta: 6.0 },
        ] {
            for len in [2, 5, 16, 33] {
                assert_symmetric(&win.coefficients(len));
            }
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let w = Window::Kaiser { beta: 0.0 }.coefficients(9);
        for v in w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_peak_is_one() {
        let w = Window::Kaiser { beta: 8.6 }.coefficients(33);
        assert!((w[16] - 1.0).abs() < 1e-12);
        assert!(w[0] < 0.01);
    }

    #[test]
    fn bessel_i0_known_values() {
        // I0(0) = 1; I0(1) ≈ 1.2660658; I0(5) ≈ 27.239872
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.266_065_877_752_008_3).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239_871_823_604_45).abs() < 1e-9);
    }

    #[test]
    fn kaiser_beta_formula_regions() {
        // below 21 dB → 0
        assert_eq!(Window::kaiser_beta_for_attenuation(10.0).unwrap(), 0.0);
        // 60 dB → 0.1102*(60-8.7)
        let b = Window::kaiser_beta_for_attenuation(60.0).unwrap();
        assert!((b - 0.1102 * 51.3).abs() < 1e-12);
        // mid region is positive and continuous-ish
        let b30 = Window::kaiser_beta_for_attenuation(30.0).unwrap();
        assert!(b30 > 0.0 && b30 < b);
    }

    #[test]
    fn kaiser_beta_rejects_negative() {
        assert!(Window::kaiser_beta_for_attenuation(-1.0).is_err());
        assert!(Window::kaiser_beta_for_attenuation(f64::NAN).is_err());
    }
}
