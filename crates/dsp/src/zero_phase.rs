//! Zero-phase (forward–backward) filtering.
//!
//! Both of the paper's conditioning filters are *zero-phase*: the ECG
//! 0.05–40 Hz FIR bandpass and the ICG 20 Hz Butterworth low-pass. Zero
//! phase matters because the whole point of the downstream algorithm is the
//! *timing* of the R, B, C and X landmarks — a causal filter's group delay
//! (and, for IIR, its phase distortion) would bias LVET and PEP directly.
//!
//! The classic `filtfilt` construction is used: the signal is extended at
//! both ends by odd reflection (to suppress edge transients), filtered
//! forward, reversed, filtered again, reversed back, and trimmed. The
//! resulting effective magnitude response is the square of the underlying
//! filter's and the phase is identically zero.

use crate::fir::Fir;
use crate::iir::Butterworth;
use crate::DspError;

/// Reusable work buffers for the `filtfilt_*_into` zero-allocation entry
/// points.
///
/// One scratch instance amortises the padded-signal and forward-pass
/// buffers across calls: after the first call at a given session length no
/// further allocation happens. The allocating wrappers
/// ([`filtfilt_fir`], [`filtfilt_iir`], [`filtfilt_iir_ext`]) delegate to
/// the `_into` functions with a fresh scratch, so both paths run the exact
/// same arithmetic and produce bitwise-identical output.
#[derive(Debug, Clone, Default)]
pub struct ZeroPhaseScratch {
    /// Edge-extended copy of the input (and, for IIR, the in-place
    /// filtering buffer).
    padded: Vec<f64>,
    /// Secondary buffer for FIR passes, which cannot run in place.
    work: Vec<f64>,
}

impl ZeroPhaseScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Applies `filter` forward and backward over `x`, returning a zero-phase
/// result of the same length.
///
/// The edge extension length is `3 × (order + 1)` samples (clamped to
/// `x.len() − 1`), mirroring SciPy's default.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
///
/// # Example
///
/// ```
/// use cardiotouch_dsp::fir::Fir;
/// use cardiotouch_dsp::window::Window;
/// use cardiotouch_dsp::zero_phase::filtfilt_fir;
///
/// # fn main() -> Result<(), cardiotouch_dsp::DspError> {
/// let lp = Fir::lowpass(32, 20.0, 250.0, Window::Hamming)?;
/// let x: Vec<f64> = (0..300).map(|n| (n as f64 / 10.0).sin()).collect();
/// let y = filtfilt_fir(&lp, &x)?;
/// assert_eq!(y.len(), x.len());
/// # Ok(())
/// # }
/// ```
pub fn filtfilt_fir(filter: &Fir, x: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut y = Vec::new();
    filtfilt_fir_into(filter, x, &mut ZeroPhaseScratch::new(), &mut y)?;
    Ok(y)
}

/// Zero-allocation variant of [`filtfilt_fir`]: writes the zero-phase
/// result into `y` (cleared first) using the caller's scratch buffers.
///
/// Bitwise-identical to [`filtfilt_fir`] by construction — the allocating
/// wrapper delegates here.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
pub fn filtfilt_fir_into(
    filter: &Fir,
    x: &[f64],
    scratch: &mut ZeroPhaseScratch,
    y: &mut Vec<f64>,
) -> Result<(), DspError> {
    let ext = checked_ext(x, filter.order() + 1)?;
    odd_reflect_into(x, ext, &mut scratch.padded);
    // Forward pass, reverse, backward pass, reverse back: the two FIR
    // passes ping-pong between the scratch buffers since direct-form
    // convolution cannot run in place.
    filter.filter_into(&scratch.padded, &mut scratch.work);
    scratch.work.reverse();
    filter.filter_into(&scratch.work, &mut scratch.padded);
    scratch.padded.reverse();
    y.clear();
    y.extend_from_slice(&scratch.padded[ext..ext + x.len()]);
    Ok(())
}

/// Applies a Butterworth cascade forward and backward over `x`, returning a
/// zero-phase result of the same length. This is the exact operation the
/// paper describes for ICG conditioning.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
pub fn filtfilt_iir(filter: &Butterworth, x: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut y = Vec::new();
    filtfilt_iir_into(filter, x, &mut ZeroPhaseScratch::new(), &mut y)?;
    Ok(y)
}

/// Zero-allocation variant of [`filtfilt_iir`]: writes the zero-phase
/// result into `y` (cleared first) using the caller's scratch buffers.
///
/// Bitwise-identical to [`filtfilt_iir`] by construction — the allocating
/// wrapper delegates here.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
pub fn filtfilt_iir_into(
    filter: &Butterworth,
    x: &[f64],
    scratch: &mut ZeroPhaseScratch,
    y: &mut Vec<f64>,
) -> Result<(), DspError> {
    // IIR transients decay over many samples; use a generous extension.
    let ext = checked_ext(x, 6 * (filter.order() + 1))?;
    odd_reflect_into(x, ext, &mut scratch.padded);
    filtfilt_iir_core(filter, &mut scratch.padded);
    y.clear();
    y.extend_from_slice(&scratch.padded[ext..ext + x.len()]);
    Ok(())
}

/// Forward–backward IIR pass over an already edge-extended buffer, fully
/// in place (biquad cascades, unlike FIR convolution, can filter in situ).
fn filtfilt_iir_core(filter: &Butterworth, padded: &mut [f64]) {
    filter.filter_in_place(padded);
    padded.reverse();
    filter.filter_in_place(padded);
    padded.reverse();
}

/// Like [`filtfilt_iir`] but with an explicit edge-extension length in
/// samples (before the internal ×3 factor) and **even** (symmetric)
/// reflection instead of odd.
///
/// Use this variant for **high-pass** filters with very low corners: odd
/// reflection offsets the extension's local mean by `2·x(end)`, and a slow
/// high-pass turns that pedestal into a decaying error that reaches
/// hundreds of samples into the interior. Even reflection preserves the
/// local mean (at the cost of a slope kink, which a high-pass passes as a
/// brief, local wiggle), so the interior stays clean.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
pub fn filtfilt_iir_ext(
    filter: &Butterworth,
    x: &[f64],
    ext_samples: usize,
) -> Result<Vec<f64>, DspError> {
    let mut y = Vec::new();
    filtfilt_iir_ext_into(filter, x, ext_samples, &mut ZeroPhaseScratch::new(), &mut y)?;
    Ok(y)
}

/// Zero-allocation variant of [`filtfilt_iir_ext`]: writes the zero-phase
/// result into `y` (cleared first) using the caller's scratch buffers.
///
/// Bitwise-identical to [`filtfilt_iir_ext`] by construction — the
/// allocating wrapper delegates here.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when `x` has fewer than 2 samples.
pub fn filtfilt_iir_ext_into(
    filter: &Butterworth,
    x: &[f64],
    ext_samples: usize,
    scratch: &mut ZeroPhaseScratch,
    y: &mut Vec<f64>,
) -> Result<(), DspError> {
    let ext = checked_ext(x, ext_samples.max(1))?;
    even_reflect_into(x, ext, &mut scratch.padded);
    filtfilt_iir_core(filter, &mut scratch.padded);
    y.clear();
    y.extend_from_slice(&scratch.padded[ext..ext + x.len()]);
    Ok(())
}

/// Validates the minimum input length and returns the clamped edge
/// extension `(3 × base).min(x.len() − 1)` shared by every filtfilt
/// entry point.
fn checked_ext(x: &[f64], base: usize) -> Result<usize, DspError> {
    if x.len() < 2 {
        return Err(DspError::InputTooShort {
            len: x.len(),
            min_len: 2,
        });
    }
    Ok((3 * base).min(x.len() - 1))
}

/// Extends `x` by `ext` samples on each side using odd (anti-symmetric)
/// reflection about the end points: the extension at the start is
/// `2·x[0] − x[ext..0]` and analogously at the end. Odd reflection keeps
/// the signal continuous in value *and* first difference, which minimises
/// the start-up transient of the filter.
#[must_use]
pub fn odd_reflect(x: &[f64], ext: usize) -> Vec<f64> {
    let mut out = Vec::new();
    odd_reflect_into(x, ext, &mut out);
    out
}

/// Buffer-reusing variant of [`odd_reflect`]: `out` is cleared and filled
/// with the extended signal.
pub fn odd_reflect_into(x: &[f64], ext: usize, out: &mut Vec<f64>) {
    debug_assert!(ext < x.len());
    let n = x.len();
    out.clear();
    out.reserve(n + 2 * ext);
    for i in (1..=ext).rev() {
        out.push(2.0 * x[0] - x[i]);
    }
    out.extend_from_slice(x);
    for i in 1..=ext {
        out.push(2.0 * x[n - 1] - x[n - 1 - i]);
    }
}

/// Extends `x` by `ext` samples on each side using even (symmetric)
/// reflection about the end points: value-continuous and mean-preserving,
/// but with a slope kink at the junction.
#[must_use]
pub fn even_reflect(x: &[f64], ext: usize) -> Vec<f64> {
    let mut out = Vec::new();
    even_reflect_into(x, ext, &mut out);
    out
}

/// Buffer-reusing variant of [`even_reflect`]: `out` is cleared and filled
/// with the extended signal.
pub fn even_reflect_into(x: &[f64], ext: usize, out: &mut Vec<f64>) {
    debug_assert!(ext < x.len());
    let n = x.len();
    out.clear();
    out.reserve(n + 2 * ext);
    for i in (1..=ext).rev() {
        out.push(x[i]);
    }
    out.extend_from_slice(x);
    for i in 1..=ext {
        out.push(x[n - 1 - i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    const FS: f64 = 250.0;

    fn sine(f: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / FS).sin())
            .collect()
    }

    #[test]
    fn odd_reflect_shape() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let p = odd_reflect(&x, 2);
        // start: 2*1-3=-1, 2*1-2=0 ; end: 2*4-3=5, 2*4-2=6
        assert_eq!(p, vec![-1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn odd_reflect_zero_ext_is_identity() {
        let x = [1.0, 2.0];
        assert_eq!(odd_reflect(&x, 0), x.to_vec());
    }

    #[test]
    fn filtfilt_fir_preserves_length() {
        let f = Fir::lowpass(32, 20.0, FS, Window::Hamming).unwrap();
        for n in [2, 10, 50, 300] {
            let x = sine(5.0, n);
            assert_eq!(filtfilt_fir(&f, &x).unwrap().len(), n);
        }
    }

    #[test]
    fn filtfilt_rejects_tiny_input() {
        let f = Fir::lowpass(32, 20.0, FS, Window::Hamming).unwrap();
        assert!(filtfilt_fir(&f, &[1.0]).is_err());
        assert!(filtfilt_fir(&f, &[]).is_err());
    }

    #[test]
    fn filtfilt_fir_zero_phase_on_passband_sine() {
        // A 5 Hz sine through a 20 Hz low-pass must come out time-aligned:
        // cross-correlation at zero lag should dominate.
        let f = Fir::lowpass(32, 20.0, FS, Window::Hamming).unwrap();
        let x = sine(5.0, 1000);
        let y = filtfilt_fir(&f, &x).unwrap();
        // compare interior samples directly (transients are at the edges)
        for i in 100..900 {
            assert!(
                (x[i] - y[i]).abs() < 0.01,
                "sample {i}: {} vs {}",
                x[i],
                y[i]
            );
        }
    }

    #[test]
    fn filtfilt_iir_zero_phase_on_passband_sine() {
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        let x = sine(3.0, 1500);
        let y = filtfilt_iir(&f, &x).unwrap();
        for i in 200..1300 {
            assert!((x[i] - y[i]).abs() < 0.01, "sample {i}");
        }
    }

    #[test]
    fn filtfilt_iir_squares_the_magnitude() {
        // A 30 Hz sine through a 20 Hz 4th-order LP: single pass gain g,
        // filtfilt gain must be ~g².
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        let g = f.magnitude_at(30.0, FS);
        let x = sine(30.0, 4000);
        let y = filtfilt_iir(&f, &x).unwrap();
        let peak = y[1000..3000].iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!((peak - g * g).abs() < 0.01, "peak {peak} vs g² {}", g * g);
    }

    #[test]
    fn filtfilt_preserves_dc() {
        let f = Butterworth::lowpass(2, 20.0, FS).unwrap();
        let x = vec![3.7; 400];
        let y = filtfilt_iir(&f, &x).unwrap();
        for v in &y[50..350] {
            assert!((v - 3.7).abs() < 1e-9);
        }
    }

    #[test]
    fn filtfilt_linear_ramp_passes_lowpass_cleanly() {
        // Odd reflection keeps first differences continuous, so a ramp
        // through a low-pass should be nearly untouched even at edges.
        let f = Butterworth::lowpass(2, 20.0, FS).unwrap();
        let x: Vec<f64> = (0..500).map(|i| 0.01 * i as f64).collect();
        let y = filtfilt_iir(&f, &x).unwrap();
        for i in 0..500 {
            assert!(
                (x[i] - y[i]).abs() < 0.02,
                "sample {i}: {} vs {}",
                x[i],
                y[i]
            );
        }
    }

    #[test]
    fn paper_icg_chain_attenuates_above_20hz() {
        // 35 Hz must be strongly suppressed, 5 Hz preserved — exactly what
        // the ICG conditioning in the paper needs (ICG band 0.8–20 Hz).
        let f = Butterworth::lowpass(4, 20.0, FS).unwrap();
        let x: Vec<f64> = (0..2000)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 35.0 * t).sin()
            })
            .collect();
        let y = filtfilt_iir(&f, &x).unwrap();
        let clean = sine(5.0, 2000);
        let mut err = 0.0f64;
        for i in 300..1700 {
            err = err.max((y[i] - clean[i]).abs());
        }
        assert!(err < 0.06, "residual interference {err}");
    }
}
