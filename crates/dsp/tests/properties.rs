//! Property-based tests over the DSP kernels.

use cardiotouch_dsp::fir::Fir;
use cardiotouch_dsp::iir::Butterworth;
use cardiotouch_dsp::morph::{self, FlatElement};
use cardiotouch_dsp::peaks;
use cardiotouch_dsp::stats;
use cardiotouch_dsp::window::Window;
use cardiotouch_dsp::zero_phase::{
    filtfilt_fir, filtfilt_fir_into, filtfilt_iir, filtfilt_iir_ext, filtfilt_iir_ext_into,
    filtfilt_iir_into, odd_reflect, ZeroPhaseScratch,
};
use proptest::prelude::*;

fn signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, min_len..=max_len)
}

proptest! {
    #[test]
    fn filtfilt_fir_preserves_length(x in signal(2, 400)) {
        let f = Fir::lowpass(16, 20.0, 250.0, Window::Hamming).unwrap();
        let y = filtfilt_fir(&f, &x).unwrap();
        prop_assert_eq!(y.len(), x.len());
    }

    #[test]
    fn filtfilt_iir_preserves_length(x in signal(2, 400)) {
        let f = Butterworth::lowpass(4, 20.0, 250.0).unwrap();
        let y = filtfilt_iir(&f, &x).unwrap();
        prop_assert_eq!(y.len(), x.len());
    }

    #[test]
    fn filtfilt_is_linear(x in signal(16, 128), a in -5.0f64..5.0) {
        let f = Butterworth::lowpass(2, 20.0, 250.0).unwrap();
        let y1 = filtfilt_iir(&f, &x).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y2 = filtfilt_iir(&f, &xs).unwrap();
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((a * u - v).abs() < 1e-6 * (1.0 + u.abs() * a.abs()));
        }
    }

    #[test]
    fn filtfilt_time_reversal_symmetry(x in signal(64, 256)) {
        // Zero phase means filtering a reversed signal equals reversing the
        // filtered signal. Exact only on infinite signals — edge transients
        // differ — so compare interior samples with a tolerance scaled to
        // the signal magnitude.
        let f = Butterworth::lowpass(2, 20.0, 250.0).unwrap();
        let y = filtfilt_iir(&f, &x).unwrap();
        let xr: Vec<f64> = x.iter().rev().copied().collect();
        let yr = filtfilt_iir(&f, &xr).unwrap();
        let scale = x.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        let rev: Vec<f64> = yr.iter().rev().copied().collect();
        let margin = 24; // a few filter time-constants
        for i in margin..x.len() - margin {
            prop_assert!((y[i] - rev[i]).abs() < 0.02 * scale, "i={}", i);
        }
    }

    #[test]
    fn odd_reflect_length_and_interior(x in signal(3, 64), ext in 0usize..3) {
        let ext = ext.min(x.len() - 1);
        let p = odd_reflect(&x, ext);
        prop_assert_eq!(p.len(), x.len() + 2 * ext);
        prop_assert_eq!(&p[ext..ext + x.len()], &x[..]);
    }

    #[test]
    fn erosion_le_signal_le_dilation(x in signal(9, 200), hw in 0usize..4) {
        let el = FlatElement::new(hw);
        let e = morph::erode(&x, el).unwrap();
        let d = morph::dilate(&x, el).unwrap();
        for i in 0..x.len() {
            prop_assert!(e[i] <= x[i] && x[i] <= d[i]);
        }
    }

    #[test]
    fn opening_anti_extensive_closing_extensive(x in signal(9, 200), hw in 0usize..4) {
        let el = FlatElement::new(hw);
        let o = morph::open(&x, el).unwrap();
        let c = morph::close(&x, el).unwrap();
        for i in 0..x.len() {
            prop_assert!(o[i] <= x[i] + 1e-12);
            prop_assert!(c[i] >= x[i] - 1e-12);
        }
    }

    #[test]
    fn opening_idempotent(x in signal(9, 150), hw in 1usize..4) {
        let el = FlatElement::new(hw);
        let once = morph::open(&x, el).unwrap();
        let twice = morph::open(&once, el).unwrap();
        for i in 0..x.len() {
            prop_assert!((once[i] - twice[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn morphology_translation_invariant(x in signal(9, 150), hw in 0usize..4, c in -50.0f64..50.0) {
        // eroding (x + c) equals erode(x) + c
        let el = FlatElement::new(hw);
        let e0 = morph::erode(&x, el).unwrap();
        let shifted: Vec<f64> = x.iter().map(|v| v + c).collect();
        let e1 = morph::erode(&shifted, el).unwrap();
        for i in 0..x.len() {
            prop_assert!((e0[i] + c - e1[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_in_unit_interval(
        x in prop::collection::vec(-100.0f64..100.0, 3..64),
        seed in 0u64..1000
    ) {
        // derive a second series deterministically but non-degenerately
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((seed % 7) as f64 - 3.0) + ((i as f64) * 0.37 + seed as f64).sin())
            .collect();
        if let (Ok(r),) = (stats::pearson(&x, &y),) {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        }
    }

    #[test]
    fn pearson_symmetric(x in signal(3, 64)) {
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v + (i as f64 * 0.7).cos()).collect();
        if let (Ok(a), Ok(b)) = (stats::pearson(&x, &y), stats::pearson(&y, &x)) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn local_maxima_are_maxima(x in signal(3, 200)) {
        for i in peaks::local_maxima(&x, f64::NEG_INFINITY, 1) {
            prop_assert!(x[i] > x[i - 1]);
            prop_assert!(x[i] >= x[i + 1]);
        }
    }

    #[test]
    fn local_maxima_respect_distance(x in signal(3, 200), d in 1usize..20) {
        let m = peaks::local_maxima(&x, f64::NEG_INFINITY, d);
        for w in m.windows(2) {
            prop_assert!(w[1] - w[0] >= d);
        }
    }

    #[test]
    fn argmax_is_max(x in signal(1, 100)) {
        let i = peaks::argmax(&x).unwrap();
        for &v in &x {
            prop_assert!(x[i] >= v);
        }
    }

    #[test]
    fn fir_filter_into_bitwise_equals_allocating(x in signal(1, 300), order in 1usize..8) {
        // The allocating path delegates to `filter_into`; this pins that
        // contract as observable behaviour: same bits, every sample, and
        // a dirty reused buffer must not leak through.
        let f = Fir::lowpass(2 * order, 30.0, 250.0, Window::Hamming).unwrap();
        let reference = f.filter(&x);
        let mut reused = vec![f64::NAN; 17]; // dirty, wrong-sized buffer
        f.filter_into(&x, &mut reused);
        prop_assert_eq!(reused.len(), reference.len());
        for (a, b) in reference.iter().zip(&reused) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn filtfilt_fir_scratch_bitwise_equals_allocating(x in signal(2, 300)) {
        let f = Fir::lowpass(16, 20.0, 250.0, Window::Hamming).unwrap();
        let reference = filtfilt_fir(&f, &x).unwrap();
        let mut scratch = ZeroPhaseScratch::new();
        let mut y = Vec::new();
        // run twice through the same scratch: the second pass sees dirty
        // buffers from the first and must still match exactly
        for _ in 0..2 {
            filtfilt_fir_into(&f, &x, &mut scratch, &mut y).unwrap();
            prop_assert_eq!(y.len(), reference.len());
            for (a, b) in reference.iter().zip(&y) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn filtfilt_iir_scratch_bitwise_equals_allocating(x in signal(2, 300), n in 1usize..6) {
        let f = Butterworth::lowpass(n, 20.0, 250.0).unwrap();
        let reference = filtfilt_iir(&f, &x).unwrap();
        let mut scratch = ZeroPhaseScratch::new();
        let mut y = Vec::new();
        for _ in 0..2 {
            filtfilt_iir_into(&f, &x, &mut scratch, &mut y).unwrap();
            prop_assert_eq!(y.len(), reference.len());
            for (a, b) in reference.iter().zip(&y) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn filtfilt_iir_ext_scratch_bitwise_equals_allocating(
        x in signal(2, 300),
        ext in 0usize..200,
    ) {
        let f = Butterworth::highpass(2, 0.4, 250.0).unwrap();
        let reference = filtfilt_iir_ext(&f, &x, ext).unwrap();
        let mut scratch = ZeroPhaseScratch::new();
        let mut y = Vec::new();
        filtfilt_iir_ext_into(&f, &x, ext, &mut scratch, &mut y).unwrap();
        prop_assert_eq!(y.len(), reference.len());
        for (a, b) in reference.iter().zip(&y) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn butterworth_filter_in_place_bitwise_equals_allocating(x in signal(1, 300), n in 1usize..6) {
        let f = Butterworth::lowpass(n, 20.0, 250.0).unwrap();
        let reference = f.filter(&x);
        let mut buf = x.clone();
        f.filter_in_place(&mut buf);
        for (a, b) in reference.iter().zip(&buf) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fir_filter_linearity(x in signal(8, 100), a in -3.0f64..3.0) {
        let f = Fir::lowpass(8, 30.0, 250.0, Window::Hamming).unwrap();
        let y1 = f.filter(&x);
        let xs: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y2 = f.filter(&xs);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((a * u - v).abs() < 1e-9 * (1.0 + u.abs() * a.abs()));
        }
    }

    #[test]
    fn butterworth_magnitude_monotone_decreasing_lowpass(fc in 5.0f64..60.0, n in 1usize..6) {
        let f = Butterworth::lowpass(n, fc, 250.0).unwrap();
        let mut prev = f.magnitude_at(0.0, 250.0);
        for k in 1..25 {
            let g = f.magnitude_at(k as f64 * 5.0, 250.0);
            prop_assert!(g <= prev + 1e-9);
            prev = g;
        }
    }

    #[test]
    fn percentile_monotone(x in signal(2, 64), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&x, lo).unwrap();
        let b = stats::percentile(&x, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn wavelet_perfect_reconstruction(
        x in prop::collection::vec(-10.0f64..10.0, 64..300),
        levels in 1usize..4,
    ) {
        use cardiotouch_dsp::wavelet::{decompose, Wavelet};
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let dec = decompose(&x, w, levels).unwrap();
            let y = dec.reconstruct();
            prop_assert_eq!(y.len(), x.len());
            // periodized transform: interior must reconstruct exactly
            let margin = 8 << levels;
            if x.len() > 2 * margin {
                for i in margin..x.len() - margin {
                    prop_assert!((x[i] - y[i]).abs() < 1e-8, "{:?} L{} i={}", w, levels, i);
                }
            }
        }
    }

    #[test]
    fn q15_round_trip_error_bounded(v in -0.999f64..0.999) {
        use cardiotouch_dsp::fixed::{from_q15, to_q15};
        prop_assert!((from_q15(to_q15(v)) - v).abs() <= 1.0 / 32768.0);
    }

    #[test]
    fn q15_fir_tracks_float_reference(
        seed in 0u64..50,
        freq in 2.0f64..35.0,
    ) {
        use cardiotouch_dsp::fixed::{with_q15_signal, FirQ15};
        let fir = Fir::lowpass(16, 40.0, 250.0, Window::Hamming).unwrap();
        let fq = FirQ15::from_design(&fir).unwrap();
        let x: Vec<f64> = (0..400)
            .map(|i| 0.7 * (2.0 * std::f64::consts::PI * freq * (i as f64 + seed as f64) / 250.0).sin())
            .collect();
        let y_ref = fir.filter(&x);
        let y_q = with_q15_signal(&x, 1.0, |q| fq.filter(q)).unwrap();
        for i in 0..x.len() {
            prop_assert!((y_ref[i] - y_q[i]).abs() < 0.01, "i={}", i);
        }
    }

    #[test]
    fn nelder_mead_finds_quadratic_minimum(
        cx in -5.0f64..5.0,
        cy in -5.0f64..5.0,
    ) {
        use cardiotouch_dsp::optimize::{nelder_mead, NelderMeadOptions};
        let f = move |p: &[f64]| (p[0] - cx).powi(2) + 2.0 * (p[1] - cy).powi(2);
        let m = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default()).unwrap();
        prop_assert!((m.x[0] - cx).abs() < 1e-3, "{:?}", m.x);
        prop_assert!((m.x[1] - cy).abs() < 1e-3, "{:?}", m.x);
    }
}
