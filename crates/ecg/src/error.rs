use std::fmt;

/// Error type for the ECG chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcgError {
    /// The input record is too short for the requested operation.
    RecordTooShort {
        /// Number of samples supplied.
        len: usize,
        /// Minimum required.
        min_len: usize,
    },
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Violated constraint.
        constraint: &'static str,
    },
    /// An underlying DSP operation failed.
    Dsp(cardiotouch_dsp::DspError),
}

impl fmt::Display for EcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcgError::RecordTooShort { len, min_len } => {
                write!(
                    f,
                    "record has {len} samples but at least {min_len} are required"
                )
            }
            EcgError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            EcgError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for EcgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcgError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cardiotouch_dsp::DspError> for EcgError {
    fn from(e: cardiotouch_dsp::DspError) -> Self {
        EcgError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(EcgError::RecordTooShort { len: 1, min_len: 5 }
            .to_string()
            .contains('5'));
        let e = EcgError::from(cardiotouch_dsp::DspError::InputTooShort { len: 0, min_len: 1 });
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcgError>();
    }
}
