//! ECG conditioning: the paper's two-stage noise-cancellation chain.
//!
//! Stage 1 estimates and subtracts baseline wander with the morphological
//! method of \[21\] (erosion+dilation to remove peaks, then dilation+erosion
//! to remove pits). Stage 2 removes high-frequency noise with a
//! *zero-phase* 32nd-order FIR band-pass, cut-offs 0.05 Hz and 40 Hz.
//! Both stage parameters are exposed so ablation benchmarks can vary them.

use std::sync::Arc;

use crate::EcgError;
use cardiotouch_dsp::design_cache;
use cardiotouch_dsp::fir::Fir;
use cardiotouch_dsp::morph::{self, BaselineConfig};
use cardiotouch_dsp::window::Window;
use cardiotouch_dsp::zero_phase::{filtfilt_fir_into, ZeroPhaseScratch};

/// The paper's ECG conditioning chain.
///
/// The FIR stage is held behind an [`Arc`] obtained from the process-wide
/// [`design_cache`], so every conditioner built with the same parameters
/// (e.g. one per study session) shares a single coefficient set and
/// construction skips the windowed-sinc design entirely after first use.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EcgConditioner {
    baseline: BaselineConfig,
    bandpass: Arc<Fir>,
    baseline_enabled: bool,
}

impl EcgConditioner {
    /// Builds the chain exactly as the paper specifies for sampling rate
    /// `fs`: morphological baseline removal sized for ECG, then a 32nd
    /// order FIR band-pass 0.05–40 Hz (Hamming windowed-sinc design).
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::InvalidParameter`] when `fs` cannot support the
    /// 40 Hz band edge (fs ≤ 80 Hz).
    pub fn paper_default(fs: f64) -> Result<Self, EcgError> {
        if fs <= 80.0 {
            return Err(EcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must exceed 80 Hz for the 40 Hz band edge",
            });
        }
        Ok(Self {
            baseline: BaselineConfig::for_ecg(fs),
            bandpass: design_cache::fir_bandpass(32, 0.05, 40.0, fs, Window::Hamming)?,
            baseline_enabled: true,
        })
    }

    /// Builds a custom chain from explicit parts (for ablation studies).
    #[must_use]
    pub fn with_parts(baseline: BaselineConfig, bandpass: Fir, baseline_enabled: bool) -> Self {
        Self {
            baseline,
            bandpass: Arc::new(bandpass),
            baseline_enabled,
        }
    }

    /// The FIR stage of the chain.
    #[must_use]
    pub fn bandpass(&self) -> &Fir {
        &self.bandpass
    }

    /// Runs the full chain: baseline removal (when enabled) then the
    /// zero-phase band-pass. The output has the same length as the input.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::RecordTooShort`] when the record is shorter
    /// than the morphological structuring elements or the filter can not
    /// run (fewer than 2 samples).
    pub fn condition(&self, x: &[f64]) -> Result<Vec<f64>, EcgError> {
        let mut y = Vec::new();
        self.condition_into(x, &mut ZeroPhaseScratch::new(), &mut y)?;
        Ok(y)
    }

    /// Zero-allocation variant of [`EcgConditioner::condition`] for hot
    /// loops: the band-pass stage reuses the caller's scratch buffers and
    /// writes into `y` (cleared first). The morphological baseline stage
    /// still allocates internally; it is a small fraction of the chain's
    /// cost (the order-32 zero-phase FIR dominates).
    ///
    /// Bitwise-identical to [`EcgConditioner::condition`] by construction
    /// — the allocating wrapper delegates here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EcgConditioner::condition`].
    pub fn condition_into(
        &self,
        x: &[f64],
        scratch: &mut ZeroPhaseScratch,
        y: &mut Vec<f64>,
    ) -> Result<(), EcgError> {
        let min_len = 2 * self.baseline.pit_element.len().max(2);
        if x.len() < min_len {
            return Err(EcgError::RecordTooShort {
                len: x.len(),
                min_len,
            });
        }
        if self.baseline_enabled {
            let detrended = morph::remove_baseline(x, self.baseline)?;
            filtfilt_fir_into(&self.bandpass, &detrended, scratch, y)?;
        } else {
            filtfilt_fir_into(&self.bandpass, x, scratch, y)?;
        }
        Ok(())
    }

    /// Returns only the estimated baseline (useful for inspection and for
    /// the artifact-lab example).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EcgConditioner::condition`].
    pub fn baseline_estimate(&self, x: &[f64]) -> Result<Vec<f64>, EcgError> {
        Ok(morph::estimate_baseline(x, self.baseline)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    /// A crude spike-train "ECG": 1 mV R spikes every second.
    fn spike_train(n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for k in (125..n).step_by(250) {
            if k > 0 && k + 1 < n {
                x[k - 1] = 0.3;
                x[k] = 1.0;
                x[k + 1] = 0.3;
            }
        }
        x
    }

    #[test]
    fn removes_slow_baseline_drift() {
        let n = 2500;
        let mut x = spike_train(n);
        // 0.2 Hz, 1 mV drift — bigger than the QRS
        for (i, v) in x.iter_mut().enumerate() {
            *v += (2.0 * std::f64::consts::PI * 0.2 * i as f64 / FS).sin();
        }
        let c = EcgConditioner::paper_default(FS).unwrap();
        let y = c.condition(&x).unwrap();
        // drift gone: long-window mean near zero everywhere
        for chunk in y[250..2250].chunks(250) {
            let m = chunk.iter().sum::<f64>() / chunk.len() as f64;
            assert!(m.abs() < 0.08, "residual drift {m}");
        }
        // spikes survive (a 3-sample spike is narrower than a real QRS, so
        // the 40 Hz edge takes roughly half its peak — that is expected)
        let peak = y[250..2250].iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 0.3, "QRS flattened to {peak}");
    }

    #[test]
    fn removes_powerline_noise() {
        let n = 2500;
        let mut x = spike_train(n);
        for (i, v) in x.iter_mut().enumerate() {
            *v += 0.2 * (2.0 * std::f64::consts::PI * 50.0 * i as f64 / FS).sin();
        }
        let c = EcgConditioner::paper_default(FS).unwrap();
        let y = c.condition(&x).unwrap();
        // 50 Hz is above the 40 Hz edge: strongly attenuated after
        // the double (zero-phase) pass
        let g50 = cardiotouch_dsp::spectrum::goertzel(&y[400..2448], 50.0, FS)
            .unwrap()
            .magnitude();
        let g50_in = cardiotouch_dsp::spectrum::goertzel(&x[400..2448], 50.0, FS)
            .unwrap()
            .magnitude();
        assert!(g50 < 0.35 * g50_in, "50 Hz gain {}", g50 / g50_in);
    }

    #[test]
    fn preserves_timing_zero_phase() {
        let n = 2500;
        let x = spike_train(n);
        let c = EcgConditioner::paper_default(FS).unwrap();
        let y = c.condition(&x).unwrap();
        // each spike's filtered peak stays within ±2 samples of the input
        for k in (125..n - 1).step_by(250) {
            let lo = k.saturating_sub(10);
            let hi = (k + 10).min(n);
            let local = &y[lo..hi];
            let arg = lo
                + local
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
            assert!(arg.abs_diff(k) <= 2, "peak moved from {k} to {arg}");
        }
    }

    #[test]
    fn output_length_matches_input() {
        let x = spike_train(1000);
        let c = EcgConditioner::paper_default(FS).unwrap();
        assert_eq!(c.condition(&x).unwrap().len(), 1000);
    }

    #[test]
    fn rejects_too_short_records() {
        let c = EcgConditioner::paper_default(FS).unwrap();
        assert!(matches!(
            c.condition(&[0.0; 10]),
            Err(EcgError::RecordTooShort { .. })
        ));
    }

    #[test]
    fn rejects_unsupported_fs() {
        assert!(EcgConditioner::paper_default(60.0).is_err());
    }

    #[test]
    fn baseline_estimate_tracks_drift() {
        let n = 2500;
        let mut x = spike_train(n);
        for (i, v) in x.iter_mut().enumerate() {
            *v += 0.8 * (2.0 * std::f64::consts::PI * 0.15 * i as f64 / FS).sin();
        }
        let c = EcgConditioner::paper_default(FS).unwrap();
        let b = c.baseline_estimate(&x).unwrap();
        for i in (300..2200).step_by(100) {
            let truth = 0.8 * (2.0 * std::f64::consts::PI * 0.15 * i as f64 / FS).sin();
            assert!(
                (b[i] - truth).abs() < 0.2,
                "sample {i}: {} vs {truth}",
                b[i]
            );
        }
    }

    #[test]
    fn disabling_baseline_skips_stage() {
        let n = 2500;
        let mut x = spike_train(n);
        for (i, v) in x.iter_mut().enumerate() {
            // drift *inside* the FIR pass band (0.2 Hz > 0.05 Hz) — only
            // the morphological stage can remove it
            *v += 1.0 * (2.0 * std::f64::consts::PI * 0.2 * i as f64 / FS).sin();
        }
        let on = EcgConditioner::paper_default(FS).unwrap();
        let off = EcgConditioner::with_parts(
            cardiotouch_dsp::morph::BaselineConfig::for_ecg(FS),
            on.bandpass().clone(),
            false,
        );
        let y_on = on.condition(&x).unwrap();
        let y_off = off.condition(&x).unwrap();
        let drift = |y: &[f64]| {
            y[250..2250]
                .chunks(125)
                .map(|c| (c.iter().sum::<f64>() / c.len() as f64).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(drift(&y_on) < 0.5 * drift(&y_off));
    }
}
