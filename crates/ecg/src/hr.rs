//! Heart-rate and RR-interval utilities.
//!
//! The device reports HR alongside `Z0`, `LVET` and `PEP`; all of them are
//! derived beat-to-beat. HR comes straight from the R-peak indices the
//! Pan–Tompkins detector produces.

use crate::EcgError;

/// RR-interval series derived from R-peak sample indices.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RrSeries {
    intervals_s: Vec<f64>,
    fs: f64,
}

impl RrSeries {
    /// Builds the series from ascending R-peak indices at sampling rate
    /// `fs`.
    ///
    /// # Errors
    ///
    /// * [`EcgError::RecordTooShort`] with fewer than 2 peaks;
    /// * [`EcgError::InvalidParameter`] for a non-positive `fs` or
    ///   non-ascending peaks.
    pub fn from_peaks(peaks: &[usize], fs: f64) -> Result<Self, EcgError> {
        if peaks.len() < 2 {
            return Err(EcgError::RecordTooShort {
                len: peaks.len(),
                min_len: 2,
            });
        }
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(EcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must be positive and finite",
            });
        }
        let mut intervals = Vec::with_capacity(peaks.len() - 1);
        for w in peaks.windows(2) {
            if w[1] <= w[0] {
                return Err(EcgError::InvalidParameter {
                    name: "peaks",
                    value: w[1] as f64,
                    constraint: "must be strictly ascending",
                });
            }
            intervals.push((w[1] - w[0]) as f64 / fs);
        }
        Ok(Self {
            intervals_s: intervals,
            fs,
        })
    }

    /// The RR intervals in seconds.
    #[must_use]
    pub fn intervals_s(&self) -> &[f64] {
        &self.intervals_s
    }

    /// Sampling rate the peak indices refer to.
    #[must_use]
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Mean heart rate over the record, beats per minute.
    #[must_use]
    pub fn mean_hr_bpm(&self) -> f64 {
        let mean_rr = self.intervals_s.iter().sum::<f64>() / self.intervals_s.len() as f64;
        60.0 / mean_rr
    }

    /// Instantaneous heart rate per interval, beats per minute.
    #[must_use]
    pub fn instantaneous_hr_bpm(&self) -> Vec<f64> {
        self.intervals_s.iter().map(|rr| 60.0 / rr).collect()
    }

    /// SDNN: standard deviation of the RR intervals, seconds.
    #[must_use]
    pub fn sdnn_s(&self) -> f64 {
        let m = self.intervals_s.iter().sum::<f64>() / self.intervals_s.len() as f64;
        (self
            .intervals_s
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f64>()
            / self.intervals_s.len() as f64)
            .sqrt()
    }

    /// RMSSD: root-mean-square of successive RR differences, seconds.
    /// Returns 0 for a single-interval series.
    #[must_use]
    pub fn rmssd_s(&self) -> f64 {
        if self.intervals_s.len() < 2 {
            return 0.0;
        }
        let ss: f64 = self
            .intervals_s
            .windows(2)
            .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
            .sum();
        (ss / (self.intervals_s.len() - 1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_peaks_give_exact_hr() {
        // peaks every 250 samples at 250 Hz = 1 s RR = 60 bpm
        let peaks: Vec<usize> = (0..10).map(|i| i * 250).collect();
        let rr = RrSeries::from_peaks(&peaks, 250.0).unwrap();
        assert!((rr.mean_hr_bpm() - 60.0).abs() < 1e-12);
        assert_eq!(rr.intervals_s().len(), 9);
        assert!(rr.sdnn_s() < 1e-12);
        assert!(rr.rmssd_s() < 1e-12);
    }

    #[test]
    fn instantaneous_hr_tracks_interval_changes() {
        let peaks = [0usize, 250, 450, 700];
        let rr = RrSeries::from_peaks(&peaks, 250.0).unwrap();
        let inst = rr.instantaneous_hr_bpm();
        assert!((inst[0] - 60.0).abs() < 1e-9);
        assert!((inst[1] - 75.0).abs() < 1e-9);
        assert!((inst[2] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn variability_metrics_positive_for_varying_rr() {
        let peaks = [0usize, 240, 500, 740, 1010];
        let rr = RrSeries::from_peaks(&peaks, 250.0).unwrap();
        assert!(rr.sdnn_s() > 0.0);
        assert!(rr.rmssd_s() > 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(RrSeries::from_peaks(&[5], 250.0).is_err());
        assert!(RrSeries::from_peaks(&[5, 10], 0.0).is_err());
        assert!(RrSeries::from_peaks(&[10, 5], 250.0).is_err());
        assert!(RrSeries::from_peaks(&[5, 5], 250.0).is_err());
    }
}
