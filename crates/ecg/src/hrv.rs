//! Heart-rate variability analysis.
//!
//! The paper's reference \[11\] studies hemodynamic responses to
//! psychological stress, whose canonical ECG-side readout is HRV: the
//! balance of low-frequency (sympathetic + baroreflex, 0.04–0.15 Hz) and
//! high-frequency (respiratory/vagal, 0.15–0.4 Hz) power in the RR-interval
//! series. Since the device already produces a beat-to-beat RR series,
//! these metrics come essentially for free; the spectral side uses the
//! Lomb–Scargle periodogram, which handles the RR series' inherently
//! uneven sampling without resampling artifacts.

use crate::hr::RrSeries;
use crate::EcgError;
use cardiotouch_dsp::spectrum::lomb_scargle;

/// Standard HRV frequency bands (hertz).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HrvBands {
    /// Very-low-frequency band lower edge.
    pub vlf_lo: f64,
    /// VLF/LF boundary.
    pub lf_lo: f64,
    /// LF/HF boundary.
    pub hf_lo: f64,
    /// HF upper edge.
    pub hf_hi: f64,
}

impl Default for HrvBands {
    fn default() -> Self {
        Self {
            vlf_lo: 0.003,
            lf_lo: 0.04,
            hf_lo: 0.15,
            hf_hi: 0.40,
        }
    }
}

/// Time- and frequency-domain HRV summary of one recording.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HrvReport {
    /// Mean heart rate, beats per minute.
    pub mean_hr_bpm: f64,
    /// SDNN, milliseconds.
    pub sdnn_ms: f64,
    /// RMSSD, milliseconds.
    pub rmssd_ms: f64,
    /// pNN50: fraction of successive RR differences above 50 ms.
    pub pnn50: f64,
    /// LF band power (normalized Lomb units).
    pub lf_power: f64,
    /// HF band power (normalized Lomb units).
    pub hf_power: f64,
    /// LF/HF ratio (sympathovagal balance index); infinite when HF is
    /// zero.
    pub lf_hf_ratio: f64,
}

/// Computes the HRV report from an RR series.
///
/// # Errors
///
/// * [`EcgError::RecordTooShort`] with fewer than 10 intervals (spectral
///   estimates below that are meaningless);
/// * wrapped DSP errors from the periodogram.
pub fn analyze(rr: &RrSeries, bands: &HrvBands) -> Result<HrvReport, EcgError> {
    let intervals = rr.intervals_s();
    if intervals.len() < 10 {
        return Err(EcgError::RecordTooShort {
            len: intervals.len(),
            min_len: 10,
        });
    }

    // time domain
    let mean_hr = rr.mean_hr_bpm();
    let sdnn_ms = rr.sdnn_s() * 1e3;
    let rmssd_ms = rr.rmssd_s() * 1e3;
    let nn50 = intervals
        .windows(2)
        .filter(|w| (w[1] - w[0]).abs() > 0.050)
        .count();
    let pnn50 = nn50 as f64 / (intervals.len() - 1) as f64;

    // frequency domain: tachogram samples live at the beat times
    let mut t = Vec::with_capacity(intervals.len());
    let mut acc = 0.0;
    for &rr_s in intervals {
        acc += rr_s;
        t.push(acc);
    }
    let freqs: Vec<f64> = (1..=80).map(|k| k as f64 * 0.005).collect(); // 5 mHz … 0.4 Hz
    let psd = lomb_scargle(&t, intervals, &freqs)?;
    let band_power = |lo: f64, hi: f64| -> f64 {
        freqs
            .iter()
            .zip(&psd)
            .filter(|(f, _)| **f >= lo && **f < hi)
            .map(|(_, p)| *p)
            .sum()
    };
    let lf = band_power(bands.lf_lo, bands.hf_lo);
    let hf = band_power(bands.hf_lo, bands.hf_hi);

    Ok(HrvReport {
        mean_hr_bpm: mean_hr,
        sdnn_ms,
        rmssd_ms,
        pnn50,
        lf_power: lf,
        hf_power: hf,
        lf_hf_ratio: if hf > 0.0 { lf / hf } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RR series with a pure respiratory (HF) modulation at `f_mod`.
    fn modulated_rr(f_mod: f64, depth_s: f64, n: usize) -> RrSeries {
        let mut peaks = vec![0usize];
        let mut t = 0.0;
        let fs = 250.0;
        for _ in 0..n {
            let rr = 0.85 + depth_s * (2.0 * std::f64::consts::PI * f_mod * t).sin();
            t += rr;
            peaks.push((t * fs).round() as usize);
        }
        RrSeries::from_peaks(&peaks, fs).expect("valid peaks")
    }

    #[test]
    fn respiratory_modulation_lands_in_hf() {
        let rr = modulated_rr(0.25, 0.04, 240);
        let report = analyze(&rr, &HrvBands::default()).unwrap();
        assert!(
            report.hf_power > 3.0 * report.lf_power,
            "HF {} vs LF {}",
            report.hf_power,
            report.lf_power
        );
        assert!(report.lf_hf_ratio < 0.5);
    }

    #[test]
    fn slow_modulation_lands_in_lf() {
        let rr = modulated_rr(0.09, 0.04, 240);
        let report = analyze(&rr, &HrvBands::default()).unwrap();
        assert!(
            report.lf_power > 3.0 * report.hf_power,
            "LF {} vs HF {}",
            report.lf_power,
            report.hf_power
        );
        assert!(report.lf_hf_ratio > 2.0);
    }

    #[test]
    fn time_domain_metrics_sane() {
        let rr = modulated_rr(0.25, 0.04, 120);
        let report = analyze(&rr, &HrvBands::default()).unwrap();
        // mean RR 0.85 s → ~70.6 bpm
        assert!(
            (report.mean_hr_bpm - 70.6).abs() < 1.5,
            "{}",
            report.mean_hr_bpm
        );
        // sinusoidal ±40 ms modulation → SDNN ≈ 40/√2 ≈ 28 ms
        assert!((20.0..40.0).contains(&report.sdnn_ms), "{}", report.sdnn_ms);
        assert!(report.rmssd_ms > 0.0);
        assert!((0.0..=1.0).contains(&report.pnn50));
    }

    #[test]
    fn pnn50_counts_large_changes() {
        // alternating RR 0.7/0.9 s: every successive difference is 200 ms
        let fs = 250.0;
        let mut peaks = vec![0usize];
        let mut t = 0.0f64;
        for i in 0..40 {
            t += if i % 2 == 0 { 0.7 } else { 0.9 };
            peaks.push((t * fs).round() as usize);
        }
        let rr = RrSeries::from_peaks(&peaks, fs).unwrap();
        let report = analyze(&rr, &HrvBands::default()).unwrap();
        assert!((report.pnn50 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_short_series_rejected() {
        let rr = modulated_rr(0.25, 0.04, 8);
        assert!(analyze(&rr, &HrvBands::default()).is_err());
    }
}
