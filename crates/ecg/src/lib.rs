//! ECG processing chain of the touch-based device.
//!
//! Implements the paper's Section IV-A.1 exactly:
//!
//! 1. **baseline wander removal** through morphological filtering
//!    (Sun–Chan–Krishnan), via [`filter::EcgConditioner`];
//! 2. **zero-phase 32nd-order FIR band-pass** with cut-offs 0.05 Hz and
//!    40 Hz for high-frequency noise and artifact removal;
//! 3. **Pan–Tompkins QRS detection** ([`pan_tompkins`]) to anchor the
//!    beat-to-beat ICG analysis (the ICG between two consecutive R peaks
//!    is what the B/C/X detector consumes);
//! 4. heart-rate utilities ([`hr`]) — the HR the device reports is
//!    computed from this ECG chain.
//!
//! # Example
//!
//! ```
//! use cardiotouch_ecg::filter::EcgConditioner;
//! use cardiotouch_ecg::pan_tompkins::PanTompkins;
//!
//! # fn main() -> Result<(), cardiotouch_ecg::EcgError> {
//! let fs = 250.0;
//! // a toy signal: three clean "beats" of a 1 mV spike train
//! let mut x = vec![0.0; 750];
//! for k in [100usize, 350, 600] {
//!     x[k] = 1.0;
//!     x[k - 1] = 0.4;
//!     x[k + 1] = 0.4;
//! }
//! let clean = EcgConditioner::paper_default(fs)?.condition(&x)?;
//! let peaks = PanTompkins::new(fs)?.detect(&clean)?;
//! assert_eq!(peaks.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod filter;
pub mod hr;
pub mod hrv;
pub mod online;
pub mod pan_tompkins;

mod error;

pub use error::EcgError;
