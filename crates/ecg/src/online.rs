//! Causal, sample-by-sample Pan–Tompkins QRS detection.
//!
//! [`crate::pan_tompkins`] processes whole records with zero-phase
//! filters — right for the retrospective analyses of the paper's
//! evaluation. The *firmware* (Fig 3), however, sees one ADC sample at a
//! time and must flag each R peak within a bounded latency so the ICG
//! beat processing can start. [`OnlinePanTompkins`] is that detector: a
//! per-sample state machine with causal filters, the original adaptive
//! dual thresholds, and R-apex localisation against a short raw-signal
//! ring buffer. Detections are emitted at most
//! [`OnlinePanTompkins::MAX_LATENCY_S`] after the apex.

use crate::EcgError;
use cardiotouch_dsp::design_cache;
use cardiotouch_dsp::streaming::{BiquadState, StatefulBiquad};

/// The streaming QRS detector.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePanTompkins {
    fs: f64,
    sections: Vec<StatefulBiquad>,
    /// last 5 band-passed samples for the derivative kernel
    bp_hist: [f64; 5],
    /// moving-window-integration ring buffer of squared samples
    mwi_buf: Vec<f64>,
    mwi_pos: usize,
    mwi_sum: f64,
    /// last 3 MWI values for local-max detection
    mwi_hist: [f64; 3],
    /// raw-signal ring for apex localisation
    raw_ring: Vec<f64>,
    spki: f64,
    npki: f64,
    sample_idx: usize,
    last_r: Option<usize>,
    refractory: usize,
    /// pending candidate: (mwi peak index, deadline for confirmation)
    pending: Option<usize>,
    warmup: usize,
    /// `ecg.online.beats_detected` — confirmed R emissions.
    beats_detected: cardiotouch_obs::Counter,
}

impl OnlinePanTompkins {
    /// Maximum emission latency after the R apex, seconds.
    pub const MAX_LATENCY_S: f64 = 0.30;

    /// Creates a streaming detector for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::InvalidParameter`] when `fs` cannot support
    /// the 15 Hz band edge.
    pub fn new(fs: f64) -> Result<Self, EcgError> {
        if !(fs.is_finite() && fs > 30.0) {
            return Err(EcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must exceed 30 Hz",
            });
        }
        let bp = design_cache::butterworth_bandpass(2, 5.0, 15.0, fs)?;
        let w = (0.150 * fs).round().max(1.0) as usize;
        let ring = (0.40 * fs).round() as usize;
        Ok(Self {
            fs,
            sections: bp
                .sections()
                .iter()
                .map(|&c| StatefulBiquad::new(c))
                .collect(),
            bp_hist: [0.0; 5],
            mwi_buf: vec![0.0; w],
            mwi_pos: 0,
            mwi_sum: 0.0,
            mwi_hist: [0.0; 3],
            raw_ring: vec![0.0; ring],
            spki: 0.0,
            npki: 0.0,
            sample_idx: 0,
            last_r: None,
            refractory: (0.200 * fs) as usize,
            pending: None,
            warmup: (2.0 * fs) as usize,
            beats_detected: cardiotouch_obs::counter("ecg.online.beats_detected"),
        })
    }

    /// Current adaptive detection threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.npki + 0.25 * (self.spki - self.npki)
    }

    /// Warm restart after signal loss: zeroes every filter delay line,
    /// forgets the adaptive thresholds and any pending candidate, and
    /// re-enters the threshold warm-up for the next 2 s of signal — but
    /// **preserves the absolute sample clock**, so detections emitted
    /// after the restart stay in absolute stream coordinates.
    pub fn restart(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
        self.bp_hist = [0.0; 5];
        self.mwi_buf.fill(0.0);
        self.mwi_pos = 0;
        self.mwi_sum = 0.0;
        self.mwi_hist = [0.0; 3];
        self.raw_ring.fill(0.0);
        self.spki = 0.0;
        self.npki = 0.0;
        self.last_r = None;
        self.pending = None;
        self.warmup = self.sample_idx + (2.0 * self.fs) as usize;
    }

    /// Pushes one raw ECG sample; returns the absolute sample index of a
    /// newly confirmed R peak, if one was just confirmed.
    pub fn push(&mut self, sample: f64) -> Option<usize> {
        let idx = self.sample_idx;
        self.sample_idx += 1;

        // raw ring for apex localisation
        let ring_len = self.raw_ring.len();
        self.raw_ring[idx % ring_len] = sample;

        // causal band-pass
        let mut bp = sample;
        for s in self.sections.iter_mut() {
            bp = s.push(bp);
        }
        // five-point derivative
        self.bp_hist.rotate_left(1);
        self.bp_hist[4] = bp;
        let d = (2.0 * self.bp_hist[4] + self.bp_hist[3] - self.bp_hist[1] - 2.0 * self.bp_hist[0])
            * self.fs
            / 8.0;
        // squaring + moving-window integration
        let sq = d * d;
        self.mwi_sum += sq - self.mwi_buf[self.mwi_pos];
        self.mwi_buf[self.mwi_pos] = sq;
        self.mwi_pos = (self.mwi_pos + 1) % self.mwi_buf.len();
        let mwi = self.mwi_sum / self.mwi_buf.len() as f64;
        self.mwi_hist.rotate_left(1);
        self.mwi_hist[2] = mwi;

        // threshold warm-up: track the maximum during the first seconds
        if idx < self.warmup {
            if mwi > self.spki {
                self.spki = mwi;
                self.npki = 0.1 * mwi;
            }
            return None;
        }

        // local maximum of the MWI one sample ago?
        let is_peak = self.mwi_hist[1] > self.mwi_hist[0] && self.mwi_hist[1] >= self.mwi_hist[2];
        if is_peak {
            let peak_val = self.mwi_hist[1];
            let peak_idx = idx - 1;
            let since_last = self
                .last_r
                .map_or(usize::MAX, |r| peak_idx.saturating_sub(r));
            if peak_val > self.threshold() && since_last > self.refractory {
                self.spki = 0.125 * peak_val + 0.875 * self.spki;
                self.pending = Some(peak_idx);
            } else {
                self.npki = 0.125 * peak_val + 0.875 * self.npki;
            }
        }

        // Confirm a pending candidate once enough post-peak context has
        // streamed in to localise the apex (the MWI lags the QRS by
        // roughly the integration window).
        if let Some(peak_idx) = self.pending {
            let settle = (0.05 * self.fs) as usize;
            if idx >= peak_idx + settle {
                self.pending = None;
                let r = self.localize_apex(peak_idx);
                // apex must respect the refractory after localisation too
                if self.last_r.map_or(true, |p| r > p + self.refractory) {
                    self.last_r = Some(r);
                    self.beats_detected.inc();
                    return Some(r);
                }
            }
        }
        None
    }

    /// Captures every mutable field of the detector — filter registers,
    /// MWI ring, adaptive thresholds, absolute clock, pending candidate
    /// and warm-up deadline. Derived constants (`refractory`, window
    /// sizes) and the coefficient set are re-derived from `fs` on
    /// restore.
    #[must_use]
    pub fn snapshot(&self) -> PanTompkinsState {
        PanTompkinsState {
            sections: self.sections.iter().map(StatefulBiquad::snapshot).collect(),
            bp_hist: self.bp_hist,
            mwi_buf: self.mwi_buf.clone(),
            mwi_pos: self.mwi_pos,
            mwi_sum: self.mwi_sum,
            mwi_hist: self.mwi_hist,
            raw_ring: self.raw_ring.clone(),
            spki: self.spki,
            npki: self.npki,
            sample_idx: self.sample_idx,
            last_r: self.last_r,
            pending: self.pending,
            warmup: self.warmup,
        }
    }

    /// Overwrites the detector's mutable state from a snapshot. The
    /// detector must have been constructed with the same `fs` so every
    /// derived buffer length matches; resumption is then bitwise
    /// identical to a stream that never paused.
    ///
    /// # Errors
    ///
    /// [`EcgError::InvalidParameter`] when a snapshot buffer length does
    /// not match this detector's shape (different `fs`).
    pub fn restore(&mut self, state: &PanTompkinsState) -> Result<(), EcgError> {
        if state.sections.len() != self.sections.len()
            || state.mwi_buf.len() != self.mwi_buf.len()
            || state.raw_ring.len() != self.raw_ring.len()
            || state.mwi_pos >= self.mwi_buf.len()
        {
            return Err(EcgError::InvalidParameter {
                name: "snapshot",
                value: state.mwi_buf.len() as f64,
                constraint: "shape must match the detector's sampling rate",
            });
        }
        for (s, st) in self.sections.iter_mut().zip(&state.sections) {
            s.restore(st);
        }
        self.bp_hist = state.bp_hist;
        self.mwi_buf.copy_from_slice(&state.mwi_buf);
        self.mwi_pos = state.mwi_pos;
        self.mwi_sum = state.mwi_sum;
        self.mwi_hist = state.mwi_hist;
        self.raw_ring.copy_from_slice(&state.raw_ring);
        self.spki = state.spki;
        self.npki = state.npki;
        self.sample_idx = state.sample_idx;
        self.last_r = state.last_r;
        self.pending = state.pending;
        self.warmup = state.warmup;
        Ok(())
    }

    /// Finds the raw-signal apex within the window preceding the MWI
    /// peak, compensating the causal chain delay.
    fn localize_apex(&self, mwi_peak_idx: usize) -> usize {
        let ring_len = self.raw_ring.len();
        let back = self.mwi_buf.len() + (0.10 * self.fs) as usize;
        let lo = mwi_peak_idx.saturating_sub(back);
        let hi = (mwi_peak_idx + (0.05 * self.fs) as usize).min(self.sample_idx - 1);
        let lo = lo.max(self.sample_idx.saturating_sub(ring_len));
        let mut best = (lo, f64::MIN);
        for i in lo..=hi {
            let v = self.raw_ring[i % ring_len];
            if v > best.1 {
                best = (i, v);
            }
        }
        best.0
    }
}

/// Mutable state of an [`OnlinePanTompkins`], as captured by
/// [`OnlinePanTompkins::snapshot`]. Plain data: safe to serialize and
/// move across threads or processes.
#[derive(Debug, Clone, PartialEq)]
pub struct PanTompkinsState {
    /// Band-pass section delay registers.
    pub sections: Vec<BiquadState>,
    /// Last 5 band-passed samples for the derivative kernel.
    pub bp_hist: [f64; 5],
    /// Moving-window-integration ring of squared samples.
    pub mwi_buf: Vec<f64>,
    /// Next write slot in `mwi_buf`.
    pub mwi_pos: usize,
    /// Running sum of `mwi_buf`.
    pub mwi_sum: f64,
    /// Last 3 MWI values for local-max detection.
    pub mwi_hist: [f64; 3],
    /// Raw-signal ring for apex localisation.
    pub raw_ring: Vec<f64>,
    /// Adaptive signal-peak estimate.
    pub spki: f64,
    /// Adaptive noise-peak estimate.
    pub npki: f64,
    /// Absolute sample clock.
    pub sample_idx: usize,
    /// Absolute index of the last confirmed R apex.
    pub last_r: Option<usize>,
    /// Pending MWI-peak candidate awaiting confirmation.
    pub pending: Option<usize>,
    /// Absolute sample index at which threshold warm-up ends.
    pub warmup: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pan_tompkins::PanTompkins;
    use cardiotouch_physio::ecg::EcgMorphology;
    use cardiotouch_physio::heart::HeartModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    fn synth(seed: u64, hr: f64) -> (Vec<f64>, Vec<usize>) {
        let model = HeartModel {
            hr_mean_bpm: hr,
            ..HeartModel::default()
        };
        let beats = model
            .schedule(30.0, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let n = (30.0 * FS) as usize;
        (
            EcgMorphology::default().render(&beats, n, FS),
            EcgMorphology::r_peak_indices(&beats, n, FS),
        )
    }

    fn run(x: &[f64]) -> Vec<usize> {
        let mut det = OnlinePanTompkins::new(FS).unwrap();
        let mut out = Vec::new();
        for &v in x {
            if let Some(r) = det.push(v) {
                out.push(r);
            }
        }
        out
    }

    fn score(det: &[usize], truth: &[usize], tol: usize, skip_s: f64) -> (usize, usize) {
        // ignore truth beats inside the warm-up
        let start = (skip_s * FS) as usize;
        let t: Vec<usize> = truth.iter().copied().filter(|&v| v > start).collect();
        let hits = t
            .iter()
            .filter(|&&tr| det.iter().any(|&d| d.abs_diff(tr) <= tol))
            .count();
        (hits, t.len())
    }

    #[test]
    fn detects_clean_stream() {
        let (x, truth) = synth(1, 70.0);
        let det = run(&x);
        let (hits, total) = score(&det, &truth, 5, 2.5);
        assert!(hits >= total - 1, "{hits}/{total} beats");
        // no gross over-detection
        assert!(det.len() <= total + 3, "{} detections", det.len());
    }

    #[test]
    fn works_across_heart_rates() {
        for hr in [55.0, 75.0, 100.0] {
            let (x, truth) = synth(2, hr);
            let det = run(&x);
            let (hits, total) = score(&det, &truth, 5, 2.5);
            assert!(
                hits as f64 >= 0.95 * total as f64,
                "hr {hr}: {hits}/{total}"
            );
        }
    }

    #[test]
    fn tolerates_noise() {
        let (mut x, truth) = synth(3, 70.0);
        let mut rng = StdRng::seed_from_u64(9);
        for (v, n) in x
            .iter_mut()
            .zip(cardiotouch_physio::noise::white(7500, 0.05, &mut rng))
        {
            *v += n;
        }
        let det = run(&x);
        let (hits, total) = score(&det, &truth, 5, 2.5);
        assert!(hits as f64 >= 0.9 * total as f64, "{hits}/{total}");
    }

    #[test]
    fn agrees_with_batch_detector() {
        let (x, _) = synth(4, 70.0);
        let online = run(&x);
        let batch = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
        let matched = online
            .iter()
            .filter(|&&o| batch.iter().any(|&b| b.abs_diff(o) <= 3))
            .count();
        assert!(
            matched as f64 >= 0.95 * online.len() as f64,
            "{matched}/{} online beats match batch",
            online.len()
        );
    }

    #[test]
    fn latency_is_bounded() {
        // instrument push() indices: a detection for apex r must be
        // emitted no later than r + MAX_LATENCY_S.
        let (x, _) = synth(5, 70.0);
        let mut det = OnlinePanTompkins::new(FS).unwrap();
        for (i, &v) in x.iter().enumerate() {
            if let Some(r) = det.push(v) {
                let latency = (i - r) as f64 / FS;
                assert!(
                    latency <= OnlinePanTompkins::MAX_LATENCY_S,
                    "R at {r} emitted at {i}: latency {latency} s"
                );
            }
        }
    }

    #[test]
    fn detections_monotone_and_refractory() {
        let (x, _) = synth(6, 95.0);
        let det = run(&x);
        for w in det.windows(2) {
            assert!(w[1] > w[0] + (0.2 * FS) as usize);
        }
    }

    #[test]
    fn rejects_bad_fs() {
        assert!(OnlinePanTompkins::new(20.0).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        let (x, _) = synth(8, 80.0);
        let split = x.len() / 2 + 173;
        let mut reference = OnlinePanTompkins::new(FS).unwrap();
        let ref_out: Vec<Option<usize>> = x.iter().map(|&v| reference.push(v)).collect();

        let mut first = OnlinePanTompkins::new(FS).unwrap();
        for (i, &v) in x[..split].iter().enumerate() {
            assert_eq!(first.push(v), ref_out[i]);
        }
        let snap = first.snapshot();
        let mut resumed = OnlinePanTompkins::new(FS).unwrap();
        resumed.restore(&snap).unwrap();
        for (i, &v) in x[split..].iter().enumerate() {
            assert_eq!(resumed.push(v), ref_out[split + i], "sample {}", split + i);
        }
        assert_eq!(
            resumed.threshold().to_bits(),
            reference.threshold().to_bits()
        );
    }

    #[test]
    fn restore_rejects_wrong_fs_shape() {
        let snap = OnlinePanTompkins::new(250.0).unwrap().snapshot();
        let mut wrong = OnlinePanTompkins::new(500.0).unwrap();
        assert!(wrong.restore(&snap).is_err());
    }

    #[test]
    fn restart_relocks_after_garbage() {
        let (x, truth) = synth(7, 70.0);
        let mut det = OnlinePanTompkins::new(FS).unwrap();
        // 4 s of rail garbage, then restart, then the clean record.
        for _ in 0..(4.0 * FS) as usize {
            let _ = det.push(50.0);
        }
        det.restart();
        let offset = (4.0 * FS) as usize;
        let mut out = Vec::new();
        for &v in &x {
            if let Some(r) = det.push(v) {
                out.push(r - offset);
            }
        }
        let (hits, total) = score(&out, &truth, 5, 2.5);
        assert!(hits as f64 >= 0.95 * total as f64, "{hits}/{total}");
        // absolute clock preserved: detections sit past the garbage
        let raw_first = out.first().map_or(0, |&r| r + offset);
        assert!(raw_first >= offset);
    }
}
