//! Pan–Tompkins real-time QRS detection \[29\].
//!
//! The classic five-stage structure, implemented from the 1985 paper:
//!
//! 1. band-pass 5–15 Hz (maximises QRS energy, rejects T waves and
//!    baseline);
//! 2. five-point derivative;
//! 3. point-wise squaring;
//! 4. moving-window integration (150 ms);
//! 5. dual adaptive thresholds on the integrated waveform with a 200 ms
//!    refractory period, T-wave discrimination on short RR intervals, and
//!    search-back at half threshold when a beat is overdue.
//!
//! Detected fiducials are refined to the R-wave apex by searching the
//! conditioned input signal around each integration-waveform onset, so the
//! returned indices line up with the true R peaks (which the ICG beat
//! segmentation requires).

use std::sync::Arc;

use crate::EcgError;
use cardiotouch_dsp::design_cache;
use cardiotouch_dsp::diff::five_point_derivative;
use cardiotouch_dsp::iir::Butterworth;

/// Configuration of the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PanTompkinsConfig {
    /// Lower band edge of the QRS band-pass, hertz.
    pub band_lo_hz: f64,
    /// Upper band edge of the QRS band-pass, hertz.
    pub band_hi_hz: f64,
    /// Moving-integration window, seconds (paper: 150 ms).
    pub integration_window_s: f64,
    /// Refractory period, seconds (paper: 200 ms).
    pub refractory_s: f64,
    /// Enable search-back at half threshold for overdue beats.
    pub search_back: bool,
    /// Enable T-wave discrimination by slope comparison.
    pub t_wave_discrimination: bool,
}

impl Default for PanTompkinsConfig {
    fn default() -> Self {
        Self {
            band_lo_hz: 5.0,
            band_hi_hz: 15.0,
            integration_window_s: 0.150,
            refractory_s: 0.200,
            search_back: true,
            t_wave_discrimination: true,
        }
    }
}

/// Detects QRS complexes in a conditioned ECG record.
///
/// # Example
///
/// ```
/// use cardiotouch_ecg::pan_tompkins::PanTompkins;
///
/// # fn main() -> Result<(), cardiotouch_ecg::EcgError> {
/// // a 10-second spike train standing in for R waves
/// let mut ecg = vec![0.0; 2500];
/// for r in (100..2500).step_by(250) {
///     ecg[r] = 1.0;
/// }
/// let peaks = PanTompkins::new(250.0)?.detect(&ecg)?;
/// assert_eq!(peaks.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PanTompkins {
    config: PanTompkinsConfig,
    fs: f64,
    bandpass: Arc<Butterworth>,
}

/// Intermediate waveforms of a detection run, exposed for inspection,
/// debugging and the artifact-lab example (C-INTERMEDIATE).
#[derive(Debug, Clone, PartialEq)]
pub struct Stages {
    /// Band-passed signal.
    pub bandpassed: Vec<f64>,
    /// Derivative signal.
    pub derivative: Vec<f64>,
    /// Squared signal.
    pub squared: Vec<f64>,
    /// Moving-window-integrated signal.
    pub integrated: Vec<f64>,
}

impl PanTompkins {
    /// Creates a detector with default configuration for sampling rate
    /// `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::InvalidParameter`] when `fs` cannot support the
    /// 15 Hz band edge.
    pub fn new(fs: f64) -> Result<Self, EcgError> {
        Self::with_config(fs, PanTompkinsConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::InvalidParameter`] for an unusable sampling
    /// rate or band.
    pub fn with_config(fs: f64, config: PanTompkinsConfig) -> Result<Self, EcgError> {
        if !(fs.is_finite() && fs > 2.0 * config.band_hi_hz) {
            return Err(EcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must exceed twice the upper band edge",
            });
        }
        if config.band_lo_hz <= 0.0 || config.band_lo_hz >= config.band_hi_hz {
            return Err(EcgError::InvalidParameter {
                name: "band_lo_hz",
                value: config.band_lo_hz,
                constraint: "must satisfy 0 < lo < hi",
            });
        }
        let bandpass =
            design_cache::butterworth_bandpass(2, config.band_lo_hz, config.band_hi_hz, fs)?;
        Ok(Self {
            config,
            fs,
            bandpass,
        })
    }

    /// The detector's configuration.
    #[must_use]
    pub fn config(&self) -> &PanTompkinsConfig {
        &self.config
    }

    /// Runs stages 1–4 and returns every intermediate waveform.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::RecordTooShort`] for records under one second.
    pub fn stages(&self, x: &[f64]) -> Result<Stages, EcgError> {
        let min_len = self.fs as usize;
        if x.len() < min_len {
            return Err(EcgError::RecordTooShort {
                len: x.len(),
                min_len,
            });
        }
        let bandpassed = self.bandpass.filter(x);
        let derivative = five_point_derivative(&bandpassed, self.fs)?;
        let squared: Vec<f64> = derivative.iter().map(|v| v * v).collect();
        let w = (self.config.integration_window_s * self.fs)
            .round()
            .max(1.0) as usize;
        let mut integrated = Vec::with_capacity(x.len());
        let mut acc = 0.0;
        for i in 0..squared.len() {
            acc += squared[i];
            if i >= w {
                acc -= squared[i - w];
            }
            integrated.push(acc / w as f64);
        }
        Ok(Stages {
            bandpassed,
            derivative,
            squared,
            integrated,
        })
    }

    /// Detects R peaks in the (already conditioned) ECG `x`, returning
    /// their sample indices in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::RecordTooShort`] for records under one second.
    pub fn detect(&self, x: &[f64]) -> Result<Vec<usize>, EcgError> {
        let stages = self.stages(x)?;
        let mwi = &stages.integrated;
        let refractory = (self.config.refractory_s * self.fs) as usize;
        let twave_window = (0.360 * self.fs) as usize;

        // Initialise thresholds from the first two seconds.
        let init = (2.0 * self.fs) as usize;
        let init_max = mwi[..init.min(mwi.len())]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let mut spki = 0.5 * init_max; // running signal-peak estimate
        let mut npki = 0.1 * init_max; // running noise-peak estimate
        let mut threshold1 = npki + 0.25 * (spki - npki);

        let mut fiducials: Vec<usize> = Vec::new();
        let mut rr_avg: f64 = 0.0; // running RR estimate in samples
        let mut last_slope = 0.0;

        // candidate peaks: local maxima of the MWI
        let peak_candidates: Vec<usize> = (1..mwi.len().saturating_sub(1))
            .filter(|&i| mwi[i] > mwi[i - 1] && mwi[i] >= mwi[i + 1])
            .collect();

        let slope_at = |i: usize| -> f64 {
            let lo = i.saturating_sub((0.075 * self.fs) as usize);
            stages.derivative[lo..=i]
                .iter()
                .cloned()
                .fold(0.0f64, |a, v| a.max(v.abs()))
        };

        let mut i = 0usize;
        while i < peak_candidates.len() {
            let p = peak_candidates[i];
            let v = mwi[p];
            let since_last = fiducials.last().map_or(usize::MAX, |&f| p - f.min(p));

            if v > threshold1 && since_last > refractory {
                // T-wave discrimination: a candidate close after the last
                // beat with a much smaller slope is a T wave.
                let is_twave = self.config.t_wave_discrimination && since_last < twave_window && {
                    let s = slope_at(p);
                    s < 0.5 * last_slope
                };
                if is_twave {
                    npki = 0.125 * v + 0.875 * npki;
                } else {
                    if let Some(&last) = fiducials.last() {
                        let rr = (p - last) as f64;
                        rr_avg = if rr_avg == 0.0 {
                            rr
                        } else {
                            0.875 * rr_avg + 0.125 * rr
                        };
                    }
                    last_slope = slope_at(p);
                    fiducials.push(p);
                    spki = 0.125 * v + 0.875 * spki;
                }
            } else if v > threshold1 {
                // inside refractory: treat as noise
                npki = 0.125 * v + 0.875 * npki;
            } else {
                npki = 0.125 * v + 0.875 * npki;
            }
            threshold1 = npki + 0.25 * (spki - npki);

            // Search-back: if a beat is overdue by 1.66 × RR, re-scan the
            // gap at half threshold.
            if self.config.search_back && rr_avg > 0.0 {
                if let Some(&last) = fiducials.last() {
                    if p > last && (p - last) as f64 > 1.66 * rr_avg {
                        let threshold2 = 0.5 * threshold1;
                        let lo = last + refractory;
                        let hi = p;
                        if lo < hi {
                            if let Some(best) = peak_candidates
                                .iter()
                                .filter(|&&c| c > lo && c < hi && mwi[c] > threshold2)
                                .max_by(|&&a, &&b| mwi[a].partial_cmp(&mwi[b]).unwrap())
                            {
                                let pos = fiducials.binary_search(best).unwrap_or_else(|e| e);
                                if !fiducials.contains(best) {
                                    fiducials.insert(pos, *best);
                                    spki = 0.25 * mwi[*best] + 0.75 * spki;
                                    threshold1 = npki + 0.25 * (spki - npki);
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }

        // Refine each fiducial to the R apex: the MWI peak lags the QRS by
        // roughly the integration window; search the conditioned input for
        // its maximum in the preceding window.
        let w = (self.config.integration_window_s * self.fs) as usize;
        let mut r_peaks: Vec<usize> = fiducials
            .iter()
            .map(|&f| {
                let lo = f.saturating_sub(w + (0.05 * self.fs) as usize);
                let hi = (f + 1).min(x.len());
                lo + x[lo..hi]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        r_peaks.sort_unstable();
        r_peaks.dedup();
        // Enforce refractory once more after refinement.
        let mut out: Vec<usize> = Vec::with_capacity(r_peaks.len());
        for p in r_peaks {
            if out.last().map_or(true, |&q| p - q > refractory) {
                out.push(p);
            } else if let Some(&q) = out.last() {
                // keep the taller of the colliding pair
                if x[p] > x[q] {
                    *out.last_mut().expect("non-empty") = p;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardiotouch_physio::ecg::EcgMorphology;
    use cardiotouch_physio::heart::HeartModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    fn synth(seed: u64, duration_s: f64, hr: f64) -> (Vec<f64>, Vec<usize>) {
        let model = HeartModel {
            hr_mean_bpm: hr,
            ..HeartModel::default()
        };
        let beats = model
            .schedule(duration_s, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let n = (duration_s * FS) as usize;
        let x = EcgMorphology::default().render(&beats, n, FS);
        let truth = EcgMorphology::r_peak_indices(&beats, n, FS);
        (x, truth)
    }

    /// match detections to truth within ±tol samples; returns (TP, FP, FN)
    fn score(det: &[usize], truth: &[usize], tol: usize) -> (usize, usize, usize) {
        let mut tp = 0;
        let mut used = vec![false; det.len()];
        for &t in truth {
            if let Some((i, _)) = det
                .iter()
                .enumerate()
                .filter(|(i, &d)| !used[*i] && d.abs_diff(t) <= tol)
                .min_by_key(|(_, &d)| d.abs_diff(t))
            {
                used[i] = true;
                tp += 1;
            }
        }
        (tp, det.len() - tp, truth.len() - tp)
    }

    #[test]
    fn detects_clean_synthetic_ecg_perfectly() {
        let (x, truth) = synth(1, 30.0, 70.0);
        let det = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
        let (tp, fp, fn_) = score(&det, &truth, 5);
        assert_eq!(
            fn_,
            0,
            "missed beats: truth {} det {}",
            truth.len(),
            det.len()
        );
        assert!(fp <= 1, "false positives {fp}");
        assert!(tp >= truth.len() - 1);
    }

    #[test]
    fn works_across_heart_rates() {
        for hr in [50.0, 70.0, 95.0, 120.0] {
            let (x, truth) = synth(2, 30.0, hr);
            let det = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
            let (tp, fp, fn_) = score(&det, &truth, 5);
            assert!(
                fn_ <= 1 && fp <= 1,
                "hr {hr}: tp {tp} fp {fp} fn {fn_} (truth {})",
                truth.len()
            );
        }
    }

    #[test]
    fn robust_to_noise() {
        let (mut x, truth) = synth(3, 30.0, 70.0);
        let mut rng = StdRng::seed_from_u64(4);
        let noise = cardiotouch_physio::noise::white(x.len(), 0.05, &mut rng);
        for (v, n) in x.iter_mut().zip(&noise) {
            *v += n;
        }
        let det = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
        let (_, fp, fn_) = score(&det, &truth, 5);
        assert!(fn_ <= 1, "missed {fn_} beats in noise");
        assert!(fp <= 2, "false positives {fp}");
    }

    #[test]
    fn does_not_double_count_t_waves() {
        // Large T waves are the classic failure mode; raise T amplitude.
        let model = HeartModel::default();
        let beats = model.schedule(30.0, &mut StdRng::seed_from_u64(5)).unwrap();
        let n = (30.0 * FS) as usize;
        let mut morph = EcgMorphology::default();
        morph.t.amplitude_mv = 0.5;
        let x = morph.render(&beats, n, FS);
        let truth = EcgMorphology::r_peak_indices(&beats, n, FS);
        let det = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
        let (_, fp, fn_) = score(&det, &truth, 5);
        assert!(fp <= 1, "T waves detected as beats: fp {fp}");
        assert!(fn_ <= 1);
    }

    #[test]
    fn stages_have_consistent_lengths() {
        let (x, _) = synth(6, 10.0, 70.0);
        let s = PanTompkins::new(FS).unwrap().stages(&x).unwrap();
        assert_eq!(s.bandpassed.len(), x.len());
        assert_eq!(s.derivative.len(), x.len());
        assert_eq!(s.squared.len(), x.len());
        assert_eq!(s.integrated.len(), x.len());
        assert!(s.squared.iter().all(|&v| v >= 0.0));
        assert!(s.integrated.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rejects_short_records_and_bad_config() {
        let pt = PanTompkins::new(FS).unwrap();
        assert!(pt.detect(&[0.0; 100]).is_err());
        assert!(PanTompkins::new(25.0).is_err());
        let bad = PanTompkinsConfig {
            band_lo_hz: 20.0,
            band_hi_hz: 15.0,
            ..PanTompkinsConfig::default()
        };
        assert!(PanTompkins::with_config(FS, bad).is_err());
    }

    #[test]
    fn detections_respect_refractory() {
        let (x, _) = synth(7, 30.0, 120.0);
        let pt = PanTompkins::new(FS).unwrap();
        let det = pt.detect(&x).unwrap();
        let refractory = (0.2 * FS) as usize;
        for w in det.windows(2) {
            assert!(w[1] - w[0] > refractory);
        }
    }

    #[test]
    fn detections_are_sorted_unique() {
        let (x, _) = synth(8, 20.0, 80.0);
        let det = PanTompkins::new(FS).unwrap().detect(&x).unwrap();
        for w in det.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
