//! Detector robustness on the ECGSYN dynamical model: the Pan–Tompkins
//! implementations (batch and streaming) must hold up on the richer,
//! continuously varying morphology, not just on the Gaussian-bump
//! renderer they were developed against.

use cardiotouch_ecg::online::OnlinePanTompkins;
use cardiotouch_ecg::pan_tompkins::PanTompkins;
use cardiotouch_physio::ecgsyn::EcgsynModel;
use cardiotouch_physio::heart::HeartModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 250.0;

fn synth(seed: u64, hr: f64) -> (Vec<f64>, Vec<usize>) {
    let model = HeartModel {
        hr_mean_bpm: hr,
        ..HeartModel::default()
    };
    let beats = model
        .schedule(30.0, &mut StdRng::seed_from_u64(seed))
        .expect("valid model");
    let n = (30.0 * FS) as usize;
    let out = EcgsynModel::default()
        .render(&beats, n, FS)
        .expect("valid render");
    (out.ecg_mv, out.r_peaks)
}

fn sensitivity(det: &[usize], truth: &[usize], tol: usize, skip: usize) -> f64 {
    let t: Vec<usize> = truth.iter().copied().filter(|&v| v > skip).collect();
    if t.is_empty() {
        return 0.0;
    }
    let hits = t
        .iter()
        .filter(|&&tr| det.iter().any(|&d| d.abs_diff(tr) <= tol))
        .count();
    hits as f64 / t.len() as f64
}

#[test]
fn batch_detector_handles_ecgsyn() {
    for (seed, hr) in [(1u64, 60.0), (2, 75.0), (3, 95.0)] {
        let (x, truth) = synth(seed, hr);
        let det = PanTompkins::new(FS)
            .expect("valid fs")
            .detect(&x)
            .expect("valid record");
        let s = sensitivity(&det, &truth, 8, 0);
        assert!(s >= 0.95, "hr {hr}: sensitivity {s}");
        assert!(
            det.len() <= truth.len() + 2,
            "hr {hr}: {} detections vs {} beats",
            det.len(),
            truth.len()
        );
    }
}

#[test]
fn streaming_detector_handles_ecgsyn() {
    let (x, truth) = synth(4, 72.0);
    let mut det = OnlinePanTompkins::new(FS).expect("valid fs");
    let mut found = Vec::new();
    for &v in &x {
        if let Some(r) = det.push(v) {
            found.push(r);
        }
    }
    let s = sensitivity(&found, &truth, 8, (3.0 * FS) as usize);
    assert!(s >= 0.9, "sensitivity {s}");
}

#[test]
fn ecgsyn_with_artifacts_still_detectable_after_conditioning() {
    use cardiotouch_ecg::filter::EcgConditioner;
    let (mut x, truth) = synth(5, 70.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mains = cardiotouch_physio::noise::powerline(x.len(), 50.0, 0.1, FS, &mut rng);
    let white = cardiotouch_physio::noise::white(x.len(), 0.02, &mut rng);
    for i in 0..x.len() {
        let t = i as f64 / FS;
        x[i] += mains[i] + white[i] + 0.5 * (2.0 * std::f64::consts::PI * 0.2 * t).sin();
    }
    let clean = EcgConditioner::paper_default(FS)
        .expect("valid fs")
        .condition(&x)
        .expect("valid record");
    let det = PanTompkins::new(FS)
        .expect("valid fs")
        .detect(&clean)
        .expect("valid record");
    let s = sensitivity(&det, &truth, 8, 0);
    assert!(s >= 0.9, "sensitivity {s}");
}
