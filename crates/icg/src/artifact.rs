//! Respiratory/motion artifact suppression alternatives.
//!
//! The paper's own conditioning is the filter chain in [`crate::filter`];
//! its related-work section cites wavelet approaches as the established
//! alternative for respiratory artifact cancellation (Pandey & Pandey
//! \[16\]; Sebastian et al. \[17\]). This module implements both behind one
//! interface so the ablation benchmarks can compare them on identical
//! signals.

use crate::filter::IcgConditioner;
use crate::IcgError;
use cardiotouch_dsp::wavelet::{self, Wavelet};

/// Which artifact-suppression method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SuppressionMethod {
    /// The workspace reference: zero-phase 20 Hz low-pass plus the 0.4 Hz
    /// baseline high-pass ([`IcgConditioner::paper_default`]).
    FilterChain,
    /// The literal paper text: 20 Hz low-pass only
    /// ([`IcgConditioner::lowpass_only`]).
    LowpassOnly,
    /// The wavelet baseline of \[16\]/\[17\]: multi-level db4 decomposition,
    /// discard the sub-band drift (approximation + deepest detail), then
    /// the 20 Hz low-pass for high-frequency noise.
    Wavelet {
        /// Decomposition depth; at 250 Hz, 8 levels puts the discarded
        /// content below ≈ 1 Hz.
        levels: usize,
    },
}

impl SuppressionMethod {
    /// Default wavelet configuration for a 250 Hz class sampling rate.
    #[must_use]
    pub fn wavelet_default() -> Self {
        SuppressionMethod::Wavelet { levels: 8 }
    }
}

/// Applies the selected method to a raw ICG record at sampling rate `fs`.
///
/// # Errors
///
/// Propagates filter-design and decomposition errors; the wavelet method
/// requires the record to be at least `4 · 2^levels` samples long.
pub fn suppress_artifacts(
    x: &[f64],
    fs: f64,
    method: SuppressionMethod,
) -> Result<Vec<f64>, IcgError> {
    match method {
        SuppressionMethod::FilterChain => IcgConditioner::paper_default(fs)?.condition(x),
        SuppressionMethod::LowpassOnly => IcgConditioner::lowpass_only(fs)?.condition(x),
        SuppressionMethod::Wavelet { levels } => {
            let debased = wavelet::remove_baseline_wavelet(x, Wavelet::Db4, levels)?;
            IcgConditioner::lowpass_only(fs)?.condition(&debased)
        }
    }
}

/// Residual artifact power after suppression, measured against a known
/// clean reference over an interior window — the comparison statistic the
/// ablation benches report.
///
/// # Errors
///
/// Returns [`IcgError::InvalidParameter`] when the inputs differ in
/// length or the margin leaves no interior.
pub fn residual_rms(processed: &[f64], clean: &[f64], margin: usize) -> Result<f64, IcgError> {
    if processed.len() != clean.len() {
        return Err(IcgError::InvalidParameter {
            name: "processed/clean",
            value: processed.len() as f64,
            constraint: "must have equal length",
        });
    }
    if 2 * margin >= processed.len() {
        return Err(IcgError::InvalidParameter {
            name: "margin",
            value: margin as f64,
            constraint: "must leave a non-empty interior",
        });
    }
    let interior = &processed[margin..processed.len() - margin];
    let reference = &clean[margin..clean.len() - margin];
    let ss: f64 = interior
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok((ss / interior.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    /// A beat-like ICG train plus strong respiration-derivative drift.
    fn contaminated() -> (Vec<f64>, Vec<f64>) {
        let n = 7500;
        let mut clean = vec![0.0; n];
        for centre in (120..n).step_by(210) {
            let lo = centre.saturating_sub(60);
            for (i, c) in clean[lo..(centre + 60).min(n)].iter_mut().enumerate() {
                let t = ((i + lo) as f64 - centre as f64) / 12.0;
                *c += 1.4 * (-t * t / 2.0).exp();
            }
        }
        let mut dirty = clean.clone();
        for (i, v) in dirty.iter_mut().enumerate() {
            let t = i as f64 / FS;
            *v += 0.4 * (2.0 * std::f64::consts::PI * 0.25 * t).cos();
        }
        (clean, dirty)
    }

    /// Artifact leakage of a method: how much of the added contamination
    /// survives, isolated from the method's own signal distortion by
    /// comparing method(dirty) against method(clean).
    fn leakage(method: SuppressionMethod) -> f64 {
        let (clean, dirty) = contaminated();
        let out_dirty = suppress_artifacts(&dirty, FS, method).unwrap();
        let out_clean = suppress_artifacts(&clean, FS, method).unwrap();
        residual_rms(&out_dirty, &out_clean, 400).unwrap()
    }

    #[test]
    fn suppressing_methods_remove_most_of_the_artifact() {
        // raw artifact RMS is 0.4/√2 ≈ 0.28 Ω/s
        for method in [
            SuppressionMethod::FilterChain,
            SuppressionMethod::wavelet_default(),
        ] {
            let l = leakage(method);
            assert!(l < 0.06, "{method:?}: leakage {l}");
        }
    }

    #[test]
    fn lowpass_only_leaves_respiration() {
        // The literal-text chain cannot remove sub-band drift — that is
        // exactly why the reference chain adds the high-pass.
        let l_lp = leakage(SuppressionMethod::LowpassOnly);
        let l_chain = leakage(SuppressionMethod::FilterChain);
        assert!(
            l_chain < 0.25 * l_lp,
            "chain {l_chain} vs lowpass-only {l_lp}"
        );
    }

    #[test]
    fn wavelet_and_filter_chain_are_comparable() {
        let lw = leakage(SuppressionMethod::wavelet_default());
        let lf = leakage(SuppressionMethod::FilterChain);
        // within an order of magnitude of each other — both viable
        assert!(
            lw < 10.0 * lf && lf < 10.0 * lw,
            "wavelet {lw} vs chain {lf}"
        );
    }

    #[test]
    fn methods_do_not_destroy_the_beats() {
        // Signal-distortion side: the processed clean signal must keep
        // the beat peaks (compare peak amplitude before/after).
        let (clean, _) = contaminated();
        let peak = |y: &[f64]| {
            y[400..y.len() - 400]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)
        };
        let p0 = peak(&clean);
        for method in [
            SuppressionMethod::FilterChain,
            SuppressionMethod::wavelet_default(),
        ] {
            let out = suppress_artifacts(&clean, FS, method).unwrap();
            let p = peak(&out);
            assert!(p > 0.75 * p0, "{method:?}: peak {p} vs clean {p0}");
        }
    }

    #[test]
    fn output_lengths_preserved() {
        let (_, dirty) = contaminated();
        for method in [
            SuppressionMethod::FilterChain,
            SuppressionMethod::LowpassOnly,
            SuppressionMethod::wavelet_default(),
        ] {
            assert_eq!(
                suppress_artifacts(&dirty, FS, method).unwrap().len(),
                dirty.len()
            );
        }
    }

    #[test]
    fn residual_rms_validation() {
        assert!(residual_rms(&[1.0; 10], &[1.0; 9], 1).is_err());
        assert!(residual_rms(&[1.0; 10], &[1.0; 10], 5).is_err());
        assert_eq!(residual_rms(&[1.0; 10], &[1.0; 10], 2).unwrap(), 0.0);
    }

    #[test]
    fn wavelet_needs_enough_samples() {
        let short = vec![0.0; 100];
        assert!(suppress_artifacts(&short, FS, SuppressionMethod::Wavelet { levels: 8 }).is_err());
    }
}
