//! Beat segmentation: the ICG between consecutive ECG R peaks.
//!
//! "As our device is acquiring ECG and ICG simultaneously, R peaks are
//! detected by using Pan-Tompkins algorithm. After that, ICG signal
//! included between two consecutive ECG R-peaks was fed into the
//! algorithm." (Section IV-C.) This module produces those windows.

use crate::IcgError;

/// One beat window: `[r_index, next_r_index)` in full-record coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeatWindow {
    /// Sample index of this beat's R peak.
    pub r: usize,
    /// Sample index of the next beat's R peak (exclusive end).
    pub end: usize,
}

impl BeatWindow {
    /// Window length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.r
    }

    /// `true` when the window is degenerate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.r
    }

    /// Borrows the ICG samples of this beat from the full record.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the record (cannot happen for windows
    /// produced by [`segment_beats`] on the same record).
    #[must_use]
    pub fn slice<'a>(&self, icg: &'a [f64]) -> &'a [f64] {
        &icg[self.r..self.end]
    }

    /// RR interval of this beat in seconds at sampling rate `fs`.
    #[must_use]
    pub fn rr_s(&self, fs: f64) -> f64 {
        self.len() as f64 / fs
    }
}

/// Splits a record of `record_len` samples into beat windows from the
/// ascending R-peak indices. Beats shorter than `min_rr_s` or longer than
/// `max_rr_s` are dropped (ectopic or missed detections would corrupt the
/// interval statistics).
///
/// # Errors
///
/// * [`IcgError::BeatTooShort`] when fewer than 2 peaks are supplied;
/// * [`IcgError::InvalidParameter`] for non-ascending peaks, peaks beyond
///   the record, or an invalid RR range.
pub fn segment_beats(
    r_peaks: &[usize],
    record_len: usize,
    fs: f64,
    min_rr_s: f64,
    max_rr_s: f64,
) -> Result<Vec<BeatWindow>, IcgError> {
    if r_peaks.len() < 2 {
        return Err(IcgError::BeatTooShort {
            len: r_peaks.len(),
            min_len: 2,
        });
    }
    if !(min_rr_s > 0.0 && max_rr_s > min_rr_s) {
        return Err(IcgError::InvalidParameter {
            name: "min_rr_s/max_rr_s",
            value: min_rr_s,
            constraint: "must satisfy 0 < min < max",
        });
    }
    let mut out = Vec::with_capacity(r_peaks.len() - 1);
    for w in r_peaks.windows(2) {
        if w[1] <= w[0] {
            return Err(IcgError::InvalidParameter {
                name: "r_peaks",
                value: w[1] as f64,
                constraint: "must be strictly ascending",
            });
        }
        if w[1] > record_len {
            return Err(IcgError::InvalidParameter {
                name: "r_peaks",
                value: w[1] as f64,
                constraint: "must lie within the record",
            });
        }
        let win = BeatWindow { r: w[0], end: w[1] };
        let rr = win.rr_s(fs);
        if rr >= min_rr_s && rr <= max_rr_s {
            out.push(win);
        }
    }
    Ok(out)
}

/// Conventional physiological RR bounds: 0.3 s (200 bpm) to 2.0 s
/// (30 bpm).
#[must_use]
pub fn physiological_rr_bounds() -> (f64, f64) {
    (0.3, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    #[test]
    fn segments_consecutive_pairs() {
        let peaks = [100usize, 350, 600, 850];
        let w = segment_beats(&peaks, 1000, FS, 0.3, 2.0).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], BeatWindow { r: 100, end: 350 });
        assert_eq!(w[2], BeatWindow { r: 600, end: 850 });
    }

    #[test]
    fn drops_out_of_range_rr() {
        // middle pair is only 0.2 s (50 samples) — below min_rr
        let peaks = [100usize, 350, 400, 650];
        let w = segment_beats(&peaks, 1000, FS, 0.3, 2.0).unwrap();
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|b| b.rr_s(FS) >= 0.3));
    }

    #[test]
    fn drops_too_long_rr() {
        let peaks = [0usize, 250, 900];
        let w = segment_beats(&peaks, 1000, FS, 0.3, 2.0).unwrap();
        // 0→250 ok (1 s); 250→900 is 2.6 s — dropped
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(segment_beats(&[5], 100, FS, 0.3, 2.0).is_err());
        assert!(segment_beats(&[10, 5], 100, FS, 0.3, 2.0).is_err());
        assert!(segment_beats(&[10, 500], 100, FS, 0.3, 2.0).is_err());
        assert!(segment_beats(&[10, 50], 100, FS, 2.0, 0.3).is_err());
    }

    #[test]
    fn slice_returns_window_contents() {
        let icg: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let w = BeatWindow { r: 100, end: 110 };
        let s = w.slice(&icg);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 100.0);
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
    }

    #[test]
    fn physiological_bounds_sensible() {
        let (lo, hi) = physiological_rr_bounds();
        assert!(lo < 60.0 / 70.0 && 60.0 / 70.0 < hi);
    }
}
