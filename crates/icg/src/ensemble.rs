//! R-aligned ensemble averaging of ICG beats.
//!
//! A standard robustness technique in impedance cardiography (and the
//! basis of most commercial monitors): beats are aligned at their R peaks
//! and averaged, attenuating uncorrelated artifacts by √N while the
//! repeating cardiac waveform survives. The paper's algorithm is strictly
//! beat-to-beat; this module is the natural extension used by the
//! ablation benchmarks to quantify what averaging would buy on noisy
//! touch recordings.

use crate::beat::BeatWindow;
use crate::IcgError;

/// An ensemble-averaged beat.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnsembleBeat {
    samples: Vec<f64>,
    beats_used: usize,
}

impl EnsembleBeat {
    /// Averages the given beats from `icg`, aligned at their R peaks and
    /// truncated to the shortest window (so every averaged sample has full
    /// support).
    ///
    /// # Errors
    ///
    /// * [`IcgError::BeatTooShort`] when `windows` is empty or the common
    ///   length is under 2 samples;
    /// * [`IcgError::InvalidParameter`] when a window exceeds the record.
    pub fn average(icg: &[f64], windows: &[BeatWindow]) -> Result<Self, IcgError> {
        if windows.is_empty() {
            return Err(IcgError::BeatTooShort { len: 0, min_len: 1 });
        }
        for w in windows {
            if w.end > icg.len() || w.is_empty() {
                return Err(IcgError::InvalidParameter {
                    name: "windows",
                    value: w.end as f64,
                    constraint: "must lie within the record and be non-empty",
                });
            }
        }
        let common = windows
            .iter()
            .map(BeatWindow::len)
            .min()
            .expect("non-empty");
        if common < 2 {
            return Err(IcgError::BeatTooShort {
                len: common,
                min_len: 2,
            });
        }
        let mut acc = vec![0.0; common];
        for w in windows {
            for (a, v) in acc.iter_mut().zip(&icg[w.r..w.r + common]) {
                *a += v;
            }
        }
        let n = windows.len() as f64;
        for a in acc.iter_mut() {
            *a /= n;
        }
        Ok(Self {
            samples: acc,
            beats_used: windows.len(),
        })
    }

    /// The averaged beat samples (index 0 at the R peak).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of beats in the average.
    #[must_use]
    pub fn beats_used(&self) -> usize {
        self.beats_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(r: usize, end: usize) -> BeatWindow {
        BeatWindow { r, end }
    }

    #[test]
    fn averages_identical_beats_exactly() {
        // two identical triangular beats
        let beat: Vec<f64> = (0..50)
            .map(|i| (25 - (i as i64 - 25).abs()) as f64)
            .collect();
        let mut icg = beat.clone();
        icg.extend_from_slice(&beat);
        let e = EnsembleBeat::average(&icg, &[window(0, 50), window(50, 100)]).unwrap();
        assert_eq!(e.beats_used(), 2);
        for (a, b) in e.samples().iter().zip(&beat) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn truncates_to_shortest_window() {
        let icg = vec![1.0; 200];
        let e = EnsembleBeat::average(&icg, &[window(0, 60), window(60, 130), window(130, 180)])
            .unwrap();
        assert_eq!(e.samples().len(), 50);
    }

    #[test]
    fn suppresses_uncorrelated_noise() {
        // one clean template + per-beat deterministic "noise" of
        // alternating sign — averaging 2k beats cancels it
        let template: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.1).sin()).collect();
        let beats = 20;
        let mut icg = Vec::new();
        for b in 0..beats {
            let sign = if b % 2 == 0 { 1.0 } else { -1.0 };
            for (i, t) in template.iter().enumerate() {
                icg.push(t + sign * 0.5 * ((i * 7 + 3) as f64).sin());
            }
        }
        let windows: Vec<BeatWindow> = (0..beats).map(|b| window(b * 100, (b + 1) * 100)).collect();
        let e = EnsembleBeat::average(&icg, &windows).unwrap();
        for (a, t) in e.samples().iter().zip(&template) {
            assert!((a - t).abs() < 1e-9, "{a} vs {t}");
        }
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let icg = vec![0.0; 100];
        assert!(EnsembleBeat::average(&icg, &[]).is_err());
        assert!(EnsembleBeat::average(&icg, &[window(50, 150)]).is_err());
        assert!(EnsembleBeat::average(&icg, &[window(50, 50)]).is_err());
    }
}
