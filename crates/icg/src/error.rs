use std::fmt;

/// Error type for the ICG chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IcgError {
    /// The beat segment is too short for point detection.
    BeatTooShort {
        /// Number of samples in the segment.
        len: usize,
        /// Minimum required.
        min_len: usize,
    },
    /// No usable characteristic point could be found in the segment.
    PointNotFound {
        /// Which point failed.
        point: &'static str,
        /// Why the search failed, human-readable.
        reason: &'static str,
    },
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Violated constraint.
        constraint: &'static str,
    },
    /// An underlying DSP operation failed.
    Dsp(cardiotouch_dsp::DspError),
}

impl fmt::Display for IcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcgError::BeatTooShort { len, min_len } => {
                write!(
                    f,
                    "beat segment has {len} samples but at least {min_len} are required"
                )
            }
            IcgError::PointNotFound { point, reason } => {
                write!(f, "{point} point not found: {reason}")
            }
            IcgError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            IcgError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for IcgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IcgError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cardiotouch_dsp::DspError> for IcgError {
    fn from(e: cardiotouch_dsp::DspError) -> Self {
        IcgError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IcgError::BeatTooShort {
            len: 3,
            min_len: 20
        }
        .to_string()
        .contains("20"));
        assert!(IcgError::PointNotFound {
            point: "B",
            reason: "no zero crossing left of B0",
        }
        .to_string()
        .contains("B point"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IcgError>();
    }
}
