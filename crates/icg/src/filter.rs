//! ICG conditioning: the paper's zero-phase 20 Hz Butterworth low-pass
//! plus the matching sub-band high-pass.
//!
//! Section IV-A.2: *"amplitudes of the components at frequencies f > 20 Hz
//! were not significant … we use a zero-phase low-pass Butterworth filter
//! with cut-off frequency f = 20 Hz"*. Zero phase matters because the
//! whole output of the system is landmark *timing*.
//!
//! The paper also states (Section II) that the ICG signal spans
//! 0.8–20 Hz while the respiratory artifact occupies 0.04–2 Hz. Since the
//! ICG is a *derivative*, respiration and slow grip drift survive the
//! low-pass as a wandering baseline that biases the B0 line-fit
//! intercept. The conditioner therefore also applies a gentle zero-phase
//! high-pass well below the ICG band (0.4 Hz, 2nd order — −0.1 dB at the
//! cardiac fundamental, −17 dB per pass at a 0.25 Hz respiration line).
//! [`IcgConditioner::lowpass_only`] builds the literal-paper variant for
//! the ablation benchmarks.

use std::sync::Arc;

use crate::IcgError;
use cardiotouch_dsp::design_cache;
use cardiotouch_dsp::iir::Butterworth;
use cardiotouch_dsp::zero_phase::{filtfilt_iir_ext_into, filtfilt_iir_into, ZeroPhaseScratch};

/// Reusable work buffers for [`IcgConditioner::condition_into`].
///
/// Holds the low-pass stage's intermediate output plus the shared
/// zero-phase scratch; one instance amortises all allocation across the
/// beats of a session (and across sessions of equal length).
#[derive(Debug, Clone, Default)]
pub struct IcgScratch {
    stage: Vec<f64>,
    zero_phase: ZeroPhaseScratch,
}

impl IcgScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The ICG conditioning chain.
///
/// Both Butterworth cascades are held behind [`Arc`]s obtained from the
/// process-wide [`design_cache`], so every conditioner built with the
/// same parameters shares one coefficient set and skips pole placement
/// after first use.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IcgConditioner {
    lowpass: Arc<Butterworth>,
    highpass: Option<Arc<Butterworth>>,
    fs: f64,
}

impl IcgConditioner {
    /// Default order used for the 20 Hz low-pass (the paper does not state
    /// an order; 4 gives 48 dB/octave after the forward–backward pass
    /// while keeping the MCU cost low).
    pub const DEFAULT_ORDER: usize = 4;

    /// Corner of the baseline-suppression high-pass, hertz.
    pub const HIGHPASS_HZ: f64 = 0.4;

    /// Builds the reference chain (20 Hz low-pass, order 4, plus the
    /// 0.4 Hz baseline high-pass) for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] when `fs ≤ 40 Hz`.
    pub fn paper_default(fs: f64) -> Result<Self, IcgError> {
        let mut c = Self::with_cutoff(fs, 20.0, Self::DEFAULT_ORDER)?;
        c.highpass = Some(design_cache::butterworth_highpass(
            2,
            Self::HIGHPASS_HZ,
            fs,
        )?);
        Ok(c)
    }

    /// Builds the literal low-pass-only variant the paper's text
    /// describes (used by the baseline-ablation benchmarks).
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] when `fs ≤ 40 Hz`.
    pub fn lowpass_only(fs: f64) -> Result<Self, IcgError> {
        Self::with_cutoff(fs, 20.0, Self::DEFAULT_ORDER)
    }

    /// Builds a variant with an explicit low-pass cut-off and order and no
    /// high-pass (for the ablation benchmarks).
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for an unusable cut-off or
    /// zero order.
    pub fn with_cutoff(fs: f64, cutoff_hz: f64, order: usize) -> Result<Self, IcgError> {
        if !(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0) {
            return Err(IcgError::InvalidParameter {
                name: "cutoff_hz",
                value: cutoff_hz,
                constraint: "must be in (0, fs/2)",
            });
        }
        Ok(Self {
            lowpass: design_cache::butterworth_lowpass(order, cutoff_hz, fs)?,
            highpass: None,
            fs,
        })
    }

    /// The underlying low-pass cascade.
    #[must_use]
    pub fn lowpass(&self) -> &Butterworth {
        &self.lowpass
    }

    /// The baseline high-pass, when enabled.
    #[must_use]
    pub fn highpass(&self) -> Option<&Butterworth> {
        self.highpass.as_deref()
    }

    /// Applies the chain with zero phase (forward–backward).
    ///
    /// # Errors
    ///
    /// Returns a wrapped DSP error for records under 2 samples.
    pub fn condition(&self, x: &[f64]) -> Result<Vec<f64>, IcgError> {
        let mut y = Vec::new();
        self.condition_into(x, &mut IcgScratch::new(), &mut y)?;
        Ok(y)
    }

    /// Zero-allocation variant of [`IcgConditioner::condition`] for hot
    /// loops: both filter stages reuse the caller's scratch buffers and
    /// write into `y` (cleared first).
    ///
    /// Bitwise-identical to [`IcgConditioner::condition`] by construction
    /// — the allocating wrapper delegates here.
    ///
    /// # Errors
    ///
    /// Returns a wrapped DSP error for records under 2 samples.
    pub fn condition_into(
        &self,
        x: &[f64],
        scratch: &mut IcgScratch,
        y: &mut Vec<f64>,
    ) -> Result<(), IcgError> {
        match &self.highpass {
            Some(hp) => {
                filtfilt_iir_into(
                    &self.lowpass,
                    x,
                    &mut scratch.zero_phase,
                    &mut scratch.stage,
                )?;
                // The 0.4 Hz corner rings for seconds; extend the edges by
                // a full time constant (×3 internally) so its transient
                // never reaches the analysed interior.
                let ext = (self.fs / Self::HIGHPASS_HZ) as usize;
                filtfilt_iir_ext_into(hp, &scratch.stage, ext, &mut scratch.zero_phase, y)?;
            }
            None => filtfilt_iir_into(&self.lowpass, x, &mut scratch.zero_phase, y)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 250.0;

    #[test]
    fn passes_icg_band_rejects_above_20() {
        let c = IcgConditioner::paper_default(FS).unwrap();
        let lp = c.lowpass();
        assert!(lp.magnitude_at(5.0, FS) > 0.99);
        assert!(lp.magnitude_at(20.0, FS) > 0.7 && lp.magnitude_at(20.0, FS) < 0.72);
        assert!(lp.magnitude_at(40.0, FS) < 0.1);
    }

    #[test]
    fn zero_phase_preserves_peak_position() {
        let c = IcgConditioner::paper_default(FS).unwrap();
        // a smooth pulse centred at sample 200
        let x: Vec<f64> = (0..500)
            .map(|i| {
                let t = (i as f64 - 200.0) / FS;
                (-t * t / (2.0 * 0.04 * 0.04)).exp()
            })
            .collect();
        let y = c.condition(&x).unwrap();
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 200, "zero-phase filter moved the peak to {peak}");
    }

    #[test]
    fn removes_high_frequency_noise() {
        let c = IcgConditioner::paper_default(FS).unwrap();
        let x: Vec<f64> = (0..2000)
            .map(|i| {
                let t = i as f64 / FS;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 45.0 * t).sin()
            })
            .collect();
        let y = c.condition(&x).unwrap();
        let residual: f64 = y[300..1700]
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let t = (i + 300) as f64 / FS;
                (v - (2.0 * std::f64::consts::PI * 3.0 * t).sin()).abs()
            })
            .fold(0.0, f64::max);
        assert!(residual < 0.02, "residual noise {residual}");
    }

    #[test]
    fn rejects_bad_configurations() {
        assert!(IcgConditioner::paper_default(30.0).is_err());
        assert!(IcgConditioner::with_cutoff(FS, 0.0, 4).is_err());
        assert!(IcgConditioner::with_cutoff(FS, 20.0, 0).is_err());
        assert!(IcgConditioner::with_cutoff(FS, 200.0, 4).is_err());
    }

    #[test]
    fn condition_preserves_length() {
        let c = IcgConditioner::paper_default(FS).unwrap();
        let x = vec![1.0; 123];
        assert_eq!(c.condition(&x).unwrap().len(), 123);
    }
}
