//! Hemodynamic parameter estimation: stroke volume, cardiac output and
//! thoracic fluid content.
//!
//! The systolic time intervals exist to feed these formulas ("these
//! parameters … are used to estimate cardiac output (CO) and stroke volume
//! (SV) \[25\], \[26\]"). Two classical estimators are provided:
//!
//! * **Kubicek** \[25\]: `SV = ρ · (L/Z0)² · LVET · (dZ/dt)max`, with blood
//!   resistivity ρ and inter-electrode distance L;
//! * **Sramek–Bernstein** \[26\]: `SV = ((0.17·H)³ / 4.25) · (dZ/dt)max/Z0 ·
//!   LVET`, parameterised by subject height H.
//!
//! Thoracic fluid content, the CHF trend parameter, is `TFC = 1000 / Z0`.

use crate::IcgError;

/// Subject/electrode constants for the stroke-volume formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HemoConstants {
    /// Blood resistivity ρ, ohm-centimetres (typical adult: 135 Ω·cm).
    pub blood_resistivity_ohm_cm: f64,
    /// Inter-electrode (thorax) distance L, centimetres.
    pub electrode_distance_cm: f64,
    /// Subject height H, centimetres (Sramek–Bernstein).
    pub height_cm: f64,
}

impl Default for HemoConstants {
    fn default() -> Self {
        Self {
            blood_resistivity_ohm_cm: 135.0,
            electrode_distance_cm: 30.0,
            height_cm: 178.0,
        }
    }
}

/// One beat's hemodynamic inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeatHemoInput {
    /// Base thoracic impedance Z0, ohms.
    pub z0_ohm: f64,
    /// Maximum of dZ/dt during ejection (the C-point amplitude), Ω/s.
    pub dzdt_max_ohm_per_s: f64,
    /// Left-ventricular ejection time, seconds.
    pub lvet_s: f64,
    /// Heart rate, beats per minute.
    pub hr_bpm: f64,
}

impl BeatHemoInput {
    fn validate(&self) -> Result<(), IcgError> {
        for (name, v) in [
            ("z0_ohm", self.z0_ohm),
            ("dzdt_max_ohm_per_s", self.dzdt_max_ohm_per_s),
            ("lvet_s", self.lvet_s),
            ("hr_bpm", self.hr_bpm),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(IcgError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be positive and finite",
                });
            }
        }
        Ok(())
    }
}

/// Stroke volume by the Kubicek formula, millilitres.
///
/// # Errors
///
/// Returns [`IcgError::InvalidParameter`] for non-positive inputs.
pub fn stroke_volume_kubicek(
    input: &BeatHemoInput,
    constants: &HemoConstants,
) -> Result<f64, IcgError> {
    input.validate()?;
    let l_over_z = constants.electrode_distance_cm / input.z0_ohm;
    Ok(constants.blood_resistivity_ohm_cm
        * l_over_z
        * l_over_z
        * input.lvet_s
        * input.dzdt_max_ohm_per_s)
}

/// Stroke volume by the Sramek–Bernstein formula, millilitres.
///
/// # Errors
///
/// Returns [`IcgError::InvalidParameter`] for non-positive inputs.
pub fn stroke_volume_sramek_bernstein(
    input: &BeatHemoInput,
    constants: &HemoConstants,
) -> Result<f64, IcgError> {
    input.validate()?;
    let vept = (0.17 * constants.height_cm).powi(3) / 4.25; // volume of electrically participating tissue, ml
    Ok(vept * input.dzdt_max_ohm_per_s / input.z0_ohm * input.lvet_s)
}

/// Cardiac output from stroke volume, litres per minute.
///
/// # Errors
///
/// Returns [`IcgError::InvalidParameter`] for non-positive inputs.
pub fn cardiac_output_l_per_min(sv_ml: f64, hr_bpm: f64) -> Result<f64, IcgError> {
    for (name, v) in [("sv_ml", sv_ml), ("hr_bpm", hr_bpm)] {
        if !(v > 0.0 && v.is_finite()) {
            return Err(IcgError::InvalidParameter {
                name,
                value: v,
                constraint: "must be positive and finite",
            });
        }
    }
    Ok(sv_ml * hr_bpm / 1000.0)
}

/// Thoracic fluid content, `1000 / Z0`, in kΩ⁻¹ — the fluid-status trend
/// the paper monitors for CHF decompensation.
///
/// # Errors
///
/// Returns [`IcgError::InvalidParameter`] for a non-positive `z0_ohm`.
pub fn thoracic_fluid_content(z0_ohm: f64) -> Result<f64, IcgError> {
    if !(z0_ohm > 0.0 && z0_ohm.is_finite()) {
        return Err(IcgError::InvalidParameter {
            name: "z0_ohm",
            value: z0_ohm,
            constraint: "must be positive and finite",
        });
    }
    Ok(1000.0 / z0_ohm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> BeatHemoInput {
        BeatHemoInput {
            z0_ohm: 28.0,
            dzdt_max_ohm_per_s: 1.4,
            lvet_s: 0.30,
            hr_bpm: 70.0,
        }
    }

    #[test]
    fn kubicek_in_physiological_range() {
        let sv = stroke_volume_kubicek(&typical(), &HemoConstants::default()).unwrap();
        // resting adult SV: roughly 50–120 ml
        assert!((40.0..150.0).contains(&sv), "SV {sv} ml");
    }

    #[test]
    fn sramek_in_physiological_range() {
        let sv = stroke_volume_sramek_bernstein(&typical(), &HemoConstants::default()).unwrap();
        assert!((40.0..150.0).contains(&sv), "SV {sv} ml");
    }

    #[test]
    fn formulas_agree_within_factor_two() {
        let i = typical();
        let c = HemoConstants::default();
        let k = stroke_volume_kubicek(&i, &c).unwrap();
        let s = stroke_volume_sramek_bernstein(&i, &c).unwrap();
        let ratio = k / s;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sv_increases_with_lvet_and_dzdt() {
        let base = typical();
        let c = HemoConstants::default();
        let sv0 = stroke_volume_kubicek(&base, &c).unwrap();
        let longer = BeatHemoInput {
            lvet_s: 0.35,
            ..base
        };
        let stronger = BeatHemoInput {
            dzdt_max_ohm_per_s: 1.8,
            ..base
        };
        assert!(stroke_volume_kubicek(&longer, &c).unwrap() > sv0);
        assert!(stroke_volume_kubicek(&stronger, &c).unwrap() > sv0);
    }

    #[test]
    fn sv_decreases_with_z0() {
        // higher baseline impedance (drier thorax) → smaller SV estimate
        let base = typical();
        let c = HemoConstants::default();
        let drier = BeatHemoInput {
            z0_ohm: 35.0,
            ..base
        };
        assert!(
            stroke_volume_kubicek(&drier, &c).unwrap() < stroke_volume_kubicek(&base, &c).unwrap()
        );
    }

    #[test]
    fn cardiac_output_scales() {
        let co = cardiac_output_l_per_min(80.0, 70.0).unwrap();
        assert!((co - 5.6).abs() < 1e-12);
        assert!(cardiac_output_l_per_min(0.0, 70.0).is_err());
    }

    #[test]
    fn tfc_inverse_of_z0() {
        assert!((thoracic_fluid_content(25.0).unwrap() - 40.0).abs() < 1e-12);
        // fluid accumulation (lower Z0) → higher TFC
        assert!(thoracic_fluid_content(20.0).unwrap() > thoracic_fluid_content(30.0).unwrap());
        assert!(thoracic_fluid_content(0.0).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut bad = typical();
        bad.z0_ohm = -1.0;
        assert!(stroke_volume_kubicek(&bad, &HemoConstants::default()).is_err());
        assert!(stroke_volume_sramek_bernstein(&bad, &HemoConstants::default()).is_err());
    }
}
