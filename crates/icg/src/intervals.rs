//! Systolic time intervals: LVET and PEP.
//!
//! "The time interval between point B and point X is the Left Ventricular
//! Ejection Time (LVET) while the time interval between R-wave at the ECG
//! and B point at the ICG is the Pre-Ejection Period (PEP)." These are the
//! hemodynamic parameters the device streams (together with HR and Z0).

use crate::points::CharacteristicPoints;
use crate::IcgError;

/// Per-beat systolic time intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystolicIntervals {
    /// Pre-ejection period, seconds (R → B).
    pub pep_s: f64,
    /// Left-ventricular ejection time, seconds (B → X).
    pub lvet_s: f64,
}

impl SystolicIntervals {
    /// Derives the intervals from detected points (indices relative to the
    /// R peak at segment index 0) at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for a non-positive `fs` or
    /// an inconsistent point ordering (B ≥ X).
    pub fn from_points(points: &CharacteristicPoints, fs: f64) -> Result<Self, IcgError> {
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(IcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must be positive and finite",
            });
        }
        if points.x <= points.b {
            return Err(IcgError::InvalidParameter {
                name: "points",
                value: points.x as f64,
                constraint: "X must come after B",
            });
        }
        if points.b == 0 {
            return Err(IcgError::InvalidParameter {
                name: "points",
                value: 0.0,
                constraint: "B must come after the R peak (PEP > 0)",
            });
        }
        Ok(Self {
            pep_s: points.b as f64 / fs,
            lvet_s: (points.x - points.b) as f64 / fs,
        })
    }

    /// Systolic time ratio PEP/LVET — a load-independent contractility
    /// index commonly derived from these intervals.
    #[must_use]
    pub fn str_ratio(&self) -> f64 {
        self.pep_s / self.lvet_s
    }

    /// `true` when both intervals are inside wide physiological bounds
    /// (PEP 0.05–0.25 s, LVET 0.12–0.50 s). Even maximal sympathetic
    /// drive does not shorten PEP below ~50 ms, so anything under that is
    /// a mis-detected B point.
    #[must_use]
    pub fn is_physiological(&self) -> bool {
        (0.05..=0.25).contains(&self.pep_s) && (0.12..=0.50).contains(&self.lvet_s)
    }
}

/// Aggregate statistics over a recording's beats.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalStatistics {
    /// Mean PEP, seconds.
    pub pep_mean_s: f64,
    /// Standard deviation of PEP, seconds.
    pub pep_sd_s: f64,
    /// Mean LVET, seconds.
    pub lvet_mean_s: f64,
    /// Standard deviation of LVET, seconds.
    pub lvet_sd_s: f64,
    /// Number of beats aggregated.
    pub beats: usize,
}

impl IntervalStatistics {
    /// Aggregates a beat series, skipping nothing — filter with
    /// [`SystolicIntervals::is_physiological`] first if outliers must be
    /// excluded.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::BeatTooShort`] for an empty series.
    pub fn from_series(series: &[SystolicIntervals]) -> Result<Self, IcgError> {
        if series.is_empty() {
            return Err(IcgError::BeatTooShort { len: 0, min_len: 1 });
        }
        let n = series.len() as f64;
        let pep_mean = series.iter().map(|s| s.pep_s).sum::<f64>() / n;
        let lvet_mean = series.iter().map(|s| s.lvet_s).sum::<f64>() / n;
        let pep_var = series
            .iter()
            .map(|s| (s.pep_s - pep_mean) * (s.pep_s - pep_mean))
            .sum::<f64>()
            / n;
        let lvet_var = series
            .iter()
            .map(|s| (s.lvet_s - lvet_mean) * (s.lvet_s - lvet_mean))
            .sum::<f64>()
            / n;
        Ok(Self {
            pep_mean_s: pep_mean,
            pep_sd_s: pep_var.sqrt(),
            lvet_mean_s: lvet_mean,
            lvet_sd_s: lvet_var.sqrt(),
            beats: series.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::{BRule, CharacteristicPoints};

    fn pts(b: usize, c: usize, x: usize) -> CharacteristicPoints {
        CharacteristicPoints {
            b,
            c,
            x,
            b0: b as f64,
            b_rule: BRule::LineFitIntercept,
        }
    }

    #[test]
    fn intervals_from_indices() {
        // at 250 Hz: B at 25 (100 ms), X at 100 (400 ms) → LVET 300 ms
        let s = SystolicIntervals::from_points(&pts(25, 50, 100), 250.0).unwrap();
        assert!((s.pep_s - 0.1).abs() < 1e-12);
        assert!((s.lvet_s - 0.3).abs() < 1e-12);
        assert!((s.str_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!(s.is_physiological());
    }

    #[test]
    fn rejects_inverted_points_and_bad_fs() {
        assert!(SystolicIntervals::from_points(&pts(100, 120, 50), 250.0).is_err());
        assert!(SystolicIntervals::from_points(&pts(25, 50, 100), 0.0).is_err());
    }

    #[test]
    fn physiological_bounds() {
        let ok = SystolicIntervals {
            pep_s: 0.10,
            lvet_s: 0.30,
        };
        let too_long = SystolicIntervals {
            pep_s: 0.10,
            lvet_s: 0.80,
        };
        let too_short = SystolicIntervals {
            pep_s: 0.01,
            lvet_s: 0.30,
        };
        assert!(ok.is_physiological());
        assert!(!too_long.is_physiological());
        assert!(!too_short.is_physiological());
    }

    #[test]
    fn statistics_aggregate() {
        let series = [
            SystolicIntervals {
                pep_s: 0.10,
                lvet_s: 0.30,
            },
            SystolicIntervals {
                pep_s: 0.12,
                lvet_s: 0.28,
            },
            SystolicIntervals {
                pep_s: 0.08,
                lvet_s: 0.32,
            },
        ];
        let st = IntervalStatistics::from_series(&series).unwrap();
        assert_eq!(st.beats, 3);
        assert!((st.pep_mean_s - 0.10).abs() < 1e-12);
        assert!((st.lvet_mean_s - 0.30).abs() < 1e-12);
        assert!(st.pep_sd_s > 0.0 && st.lvet_sd_s > 0.0);
    }

    #[test]
    fn empty_series_rejected() {
        assert!(IntervalStatistics::from_series(&[]).is_err());
    }
}
