//! ICG processing chain: the primary algorithmic contribution of the
//! paper.
//!
//! Implements Sections IV-B and IV-C:
//!
//! * [`filter`] — the zero-phase low-pass Butterworth at 20 Hz that
//!   conditions the raw `−dZ/dt`;
//! * [`beat`] — segmentation of the ICG between consecutive ECG R peaks
//!   (the algorithm "operates on a beat-to-beat basis");
//! * [`points`] — detection of the three characteristic points:
//!   **C** (dZ/dt maximum), **B** (aortic valve opening, via the 40–80 %
//!   line-fit initial estimate refined by derivative rules) and
//!   **X** (aortic valve closure, via the post-C minimum refined by the
//!   third derivative) — with both the paper's X-search variant and the
//!   Carvalho et al. RT-window variant \[28\];
//! * [`intervals`] — the systolic time intervals LVET = t(X) − t(B) and
//!   PEP = t(B) − t(R);
//! * [`hemo`] — stroke volume by the Kubicek \[25\] and Sramek–Bernstein
//!   \[26\] formulas, cardiac output and thoracic fluid content;
//! * [`ensemble`] — R-aligned ensemble averaging, a robustness extension
//!   used by the ablation benchmarks.
//!
//! # Example
//!
//! ```
//! use cardiotouch_icg::filter::IcgConditioner;
//! use cardiotouch_icg::points::{PointDetector, XSearch};
//!
//! # fn main() -> Result<(), cardiotouch_icg::IcgError> {
//! let fs = 250.0;
//! // one synthetic beat: C wave at 120 ms, X trough at 300 ms
//! let beat: Vec<f64> = (0..200)
//!     .map(|i| {
//!         let t = i as f64 / fs;
//!         1.4 * (-(t - 0.12) * (t - 0.12) / (2.0 * 0.04 * 0.04)).exp()
//!             - 0.5 * (-(t - 0.30) * (t - 0.30) / (2.0 * 0.015 * 0.015)).exp()
//!     })
//!     .collect();
//! let lp = IcgConditioner::paper_default(fs)?;
//! let clean = lp.condition(&beat)?;
//! let detector = PointDetector::new(fs, XSearch::GlobalMinimum)?;
//! let pts = detector.detect(&clean)?;
//! assert!(pts.b < pts.c && pts.c < pts.x);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod beat;
pub mod ensemble;
pub mod filter;
pub mod hemo;
pub mod intervals;
pub mod online;
pub mod points;
pub mod quality;
pub mod strategy;
pub mod trending;

mod error;

pub use error::IcgError;
