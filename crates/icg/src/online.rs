//! Incremental beat-to-beat B/C/X delineation.
//!
//! The batch path segments a whole conditioned record with
//! [`crate::beat::segment_beats`] and runs [`crate::points::PointDetector`]
//! on every window. The firmware path (paper Fig 3) instead sees the
//! conditioned ICG as it settles out of the streaming filters, and R-peak
//! events as the online QRS detector confirms them. [`BeatDelineator`]
//! bridges the two: it buffers settled conditioned samples in absolute
//! stream coordinates, queues confirmed R peaks, and finalizes one beat as
//! soon as the conditioned stream covers `[rᵢ, rᵢ₊₁)` — the same
//! "enough right-context has arrived" hold-back rule the windowed
//! re-analysis engine applied, but O(beat) instead of O(window) per
//! emission.
//!
//! Per-beat arithmetic is the batch detector verbatim (the same
//! [`PointDetector`] runs on the same segment slice), so streamed points
//! equal batch points wherever the conditioned samples agree.

use std::collections::VecDeque;

use cardiotouch_dsp::streaming::{HistoryRing, HistoryRingState};

use crate::beat::BeatWindow;
use crate::points::{CharacteristicPoints, PointDetector, XSearch};
use crate::strategy::{DelineationStrategy, StrategyState};
use crate::IcgError;

/// One finalized beat from the incremental delineator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineBeat {
    /// The beat window `[r, next_r)` in absolute stream coordinates.
    pub window: BeatWindow,
    /// Characteristic points relative to `window.r` (index 0 = R), as
    /// produced by [`PointDetector::detect`].
    pub points: CharacteristicPoints,
    /// Conditioned-ICG amplitude at the C point, `(dZ/dt)_max` in Ω/s.
    pub dzdt_max: f64,
    /// Morphology confidence from [`crate::quality::beat_sqi`] against the
    /// delineator's running R-aligned ensemble template, in `[-1, 1]`.
    /// `None` until the template has warmed (first
    /// [`BeatDelineator::SQI_WARMUP_BEATS`] beats).
    pub sqi: Option<f64>,
}

/// Incremental B/C/X delineator over a settled conditioned-ICG stream.
///
/// Feed conditioned samples with [`BeatDelineator::push_samples`] and
/// confirmed R peaks with [`BeatDelineator::push_r`] (in any interleaving
/// — R events may run ahead of the conditioned stream, as they do when an
/// online QRS detector with sub-second latency feeds a zero-phase stage
/// with a multi-second settle delay). Collect finalized beats with
/// [`BeatDelineator::poll_into`].
///
/// Memory is O(seconds of signal): consumed samples are discarded with
/// amortized O(1) cost, and when no beat is pending the buffer is capped
/// at twice the maximum RR interval.
#[derive(Debug, Clone)]
pub struct BeatDelineator {
    fs: f64,
    min_rr_s: f64,
    max_rr_s: f64,
    detector: PointDetector,
    /// Cross-beat state of the configured delineation strategy (the
    /// weighted-window B prior); inert for the stateless strategies.
    strategy_state: StrategyState,
    ring: HistoryRing,
    /// Confirmed R peaks not yet consumed as a beat start.
    rs: VecDeque<usize>,
    /// R-aligned ensemble template (EMA of finalized segments), capped at
    /// 0.6 s — the systolic portion [`crate::quality::beat_sqi`] scores.
    template: Vec<f64>,
    /// Beats folded into the template so far.
    template_beats: usize,
    /// Template length cap in samples.
    template_cap: usize,
    /// `icg.online.beats_delineated` — finalized beats.
    beats_delineated: cardiotouch_obs::Counter,
    /// `icg.online.delineation_failures` — segments the point detector
    /// rejected.
    delineation_failures: cardiotouch_obs::Counter,
    /// `icg.online.rr_rejected` — beats skipped for out-of-range RR.
    rr_rejected: cardiotouch_obs::Counter,
}

impl BeatDelineator {
    /// Beats folded into the ensemble template before per-beat SQI
    /// scoring starts (earlier beats report `sqi: None`).
    pub const SQI_WARMUP_BEATS: usize = 3;

    /// EMA weight of the newest beat in the ensemble template.
    const TEMPLATE_LAMBDA: f64 = 0.25;

    /// Creates a delineator. `min_rr_s`/`max_rr_s` bound accepted RR
    /// intervals exactly as [`crate::beat::segment_beats`] does.
    ///
    /// # Errors
    ///
    /// * [`IcgError::InvalidParameter`] for an invalid `fs` or RR range
    ///   (propagated from [`PointDetector::new`] or checked here).
    pub fn new(fs: f64, x_search: XSearch, min_rr_s: f64, max_rr_s: f64) -> Result<Self, IcgError> {
        Self::with_strategy(
            fs,
            x_search,
            DelineationStrategy::Classic,
            min_rr_s,
            max_rr_s,
        )
    }

    /// Creates a delineator applying `strategy`'s rule set per beat.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn with_strategy(
        fs: f64,
        x_search: XSearch,
        strategy: DelineationStrategy,
        min_rr_s: f64,
        max_rr_s: f64,
    ) -> Result<Self, IcgError> {
        if !(min_rr_s > 0.0 && max_rr_s > min_rr_s) {
            return Err(IcgError::InvalidParameter {
                name: "min_rr_s/max_rr_s",
                value: min_rr_s,
                constraint: "must satisfy 0 < min < max",
            });
        }
        Ok(Self {
            fs,
            min_rr_s,
            max_rr_s,
            detector: PointDetector::with_strategy(fs, x_search, strategy)?,
            strategy_state: StrategyState::default(),
            ring: HistoryRing::new(),
            rs: VecDeque::new(),
            template: Vec::new(),
            template_beats: 0,
            template_cap: (0.6 * fs) as usize,
            beats_delineated: cardiotouch_obs::counter("icg.online.beats_delineated"),
            delineation_failures: cardiotouch_obs::counter("icg.online.delineation_failures"),
            rr_rejected: cardiotouch_obs::counter("icg.online.rr_rejected"),
        })
    }

    /// Absolute index one past the newest buffered conditioned sample.
    #[must_use]
    pub fn samples_end(&self) -> usize {
        self.ring.end()
    }

    /// Appends settled conditioned-ICG samples (consecutive from stream
    /// start).
    pub fn push_samples(&mut self, settled: &[f64]) {
        self.ring.extend(settled);
    }

    /// Drops every R peak queued but not yet finalized. Used on a
    /// warm restart after signal loss: no beat may span the gap, because
    /// its segment would mix pre-loss and post-loss conditioned samples.
    pub fn abort_pending(&mut self) {
        self.rs.clear();
    }

    /// Pads the conditioned stream with zeros up to absolute index `abs`
    /// (no-op when already there). Used on a warm restart: the upstream
    /// conditioning chain is reset and re-primed, so the samples it would
    /// have emitted for the gap never arrive — padding keeps subsequent
    /// [`BeatDelineator::push_samples`] calls aligned with the absolute
    /// R-peak clock. Call [`BeatDelineator::abort_pending`] alongside so
    /// the padding can never enter a finalized segment.
    pub fn pad_to(&mut self, abs: usize) {
        const ZEROS: [f64; 256] = [0.0; 256];
        let mut missing = abs.saturating_sub(self.ring.end());
        while missing > 0 {
            let k = missing.min(ZEROS.len());
            self.ring.extend(&ZEROS[..k]);
            missing -= k;
        }
    }

    /// Registers a confirmed R peak at absolute sample index `r`.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] when `r` does not strictly
    /// ascend past the previously registered peak.
    pub fn push_r(&mut self, r: usize) -> Result<(), IcgError> {
        if let Some(&last) = self.rs.back() {
            if r <= last {
                return Err(IcgError::InvalidParameter {
                    name: "r",
                    value: r as f64,
                    constraint: "R peaks must be strictly ascending",
                });
            }
        }
        self.rs.push_back(r);
        Ok(())
    }

    /// Finalizes every beat whose segment the conditioned stream now
    /// covers, appending them to `out` in order. Beats with out-of-range
    /// RR, or whose segment the point detector rejects, are skipped —
    /// matching the batch pipeline's behaviour of dropping those windows.
    pub fn poll_into(&mut self, out: &mut Vec<OnlineBeat>) {
        while self.rs.len() >= 2 {
            let (r0, r1) = (self.rs[0], self.rs[1]);
            if self.ring.end() < r1 {
                break;
            }
            let window = BeatWindow { r: r0, end: r1 };
            let rr = window.rr_s(self.fs);
            if rr >= self.min_rr_s && rr <= self.max_rr_s && r0 >= self.ring.base() {
                let segment = self.ring.slice(r0, r1);
                if let Ok(points) = self.detector.detect_with(segment, &mut self.strategy_state) {
                    self.beats_delineated.inc();
                    let sqi = self.score_and_learn(r0, r1);
                    let segment = self.ring.slice(r0, r1);
                    out.push(OnlineBeat {
                        window,
                        points,
                        dzdt_max: segment[points.c],
                        sqi,
                    });
                } else {
                    self.delineation_failures.inc();
                }
            } else {
                self.rr_rejected.inc();
            }
            self.rs.pop_front();
        }
        // Everything before the next pending beat start is dead; with no
        // pending beat, cap the buffer at 2× the longest acceptable RR
        // (any beat reaching further back would be dropped as too long).
        let cap = (2.0 * self.max_rr_s * self.fs) as usize;
        let keep = self
            .rs
            .front()
            .copied()
            .unwrap_or_else(|| self.ring.end().saturating_sub(cap));
        self.ring.discard_before(keep.min(self.ring.end()));
    }

    /// Captures every mutable field — the conditioned-sample ring in
    /// absolute coordinates, queued R peaks, and the ensemble template
    /// with its warm-up count. `PointDetector` is pure configuration and
    /// is rebuilt from constructor arguments on the restoring side.
    #[must_use]
    pub fn snapshot(&self) -> DelineatorState {
        DelineatorState {
            ring: self.ring.snapshot(),
            rs: self.rs.iter().copied().collect(),
            template: self.template.clone(),
            template_beats: self.template_beats,
            strategy: self.strategy_state,
        }
    }

    /// Overwrites the delineator's mutable state from a snapshot. The
    /// delineator must have been constructed with the same `fs`,
    /// `XSearch` and RR bounds for resumption to be bitwise identical.
    ///
    /// # Errors
    ///
    /// [`IcgError::InvalidParameter`] when the snapshot's template
    /// exceeds this delineator's cap (different `fs`).
    pub fn restore(&mut self, state: &DelineatorState) -> Result<(), IcgError> {
        if state.template.len() > self.template_cap {
            return Err(IcgError::InvalidParameter {
                name: "snapshot",
                value: state.template.len() as f64,
                constraint: "template must fit the delineator's cap",
            });
        }
        self.ring.restore(&state.ring);
        self.rs.clear();
        self.rs.extend(state.rs.iter().copied());
        self.template.clear();
        self.template.extend_from_slice(&state.template);
        self.template_beats = state.template_beats;
        self.strategy_state = state.strategy;
        Ok(())
    }

    /// Scores `[r0, r1)` against the ensemble template (once warm), then
    /// folds the segment into the template with an EMA.
    fn score_and_learn(&mut self, r0: usize, r1: usize) -> Option<f64> {
        let segment = self.ring.slice(r0, r1);
        let m = segment.len().min(self.template_cap);
        let sqi = if self.template_beats >= Self::SQI_WARMUP_BEATS {
            let s = crate::quality::beat_sqi(&segment[..m], &self.template).unwrap_or(0.0);
            Some(if s.is_finite() { s } else { 0.0 })
        } else {
            None
        };
        if segment[..m].iter().all(|v| v.is_finite()) {
            if self.template.is_empty() {
                self.template.extend_from_slice(&segment[..m]);
            } else {
                let k = self.template.len().min(m);
                for (t, &x) in self.template[..k].iter_mut().zip(&segment[..k]) {
                    *t += Self::TEMPLATE_LAMBDA * (x - *t);
                }
            }
            self.template_beats += 1;
        }
        sqi
    }
}

/// Mutable state of a [`BeatDelineator`], as captured by
/// [`BeatDelineator::snapshot`]. Plain data: safe to serialize and move
/// across threads or processes.
#[derive(Debug, Clone, PartialEq)]
pub struct DelineatorState {
    /// Buffered conditioned samples in absolute stream coordinates.
    pub ring: HistoryRingState,
    /// Confirmed R peaks not yet consumed as a beat start.
    pub rs: Vec<usize>,
    /// R-aligned ensemble template.
    pub template: Vec<f64>,
    /// Beats folded into the template so far.
    pub template_beats: usize,
    /// Cross-beat state of the delineation strategy (weighted-window B
    /// prior). Default for the stateless strategies.
    pub strategy: StrategyState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::segment_beats;
    use crate::filter::IcgConditioner;

    const FS: f64 = 250.0;

    /// A few synthetic ICG-like beats with C waves and X troughs.
    fn synth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / FS;
                let phase = t % 0.8;
                1.4 * (-(phase - 0.20) * (phase - 0.20) / (2.0 * 0.04 * 0.04)).exp()
                    - 0.5 * (-(phase - 0.45) * (phase - 0.45) / (2.0 * 0.02 * 0.02)).exp()
            })
            .collect()
    }

    fn r_peaks(n: usize) -> Vec<usize> {
        // R at the start of each 0.8 s cycle
        (0..n / 200).map(|k| k * 200).collect()
    }

    #[test]
    fn matches_batch_segmentation_and_detection() {
        let raw = synth(5000);
        let icg = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&raw)
            .unwrap();
        let peaks = r_peaks(5000);

        let windows = segment_beats(&peaks, icg.len(), FS, 0.3, 2.0).unwrap();
        let batch: Vec<_> = windows
            .iter()
            .filter_map(|w| {
                PointDetector::new(FS, XSearch::GlobalMinimum)
                    .unwrap()
                    .detect(w.slice(&icg))
                    .ok()
                    .map(|p| (*w, p))
            })
            .collect();

        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        let mut streamed = Vec::new();
        let mut fed = 0;
        let mut next_peak = 0;
        for chunk in icg.chunks(173) {
            d.push_samples(chunk);
            fed += chunk.len();
            // deliver any R peak whose index is now within ~0.3 s of the head
            while next_peak < peaks.len() && peaks[next_peak] + 50 <= fed {
                d.push_r(peaks[next_peak]).unwrap();
                next_peak += 1;
            }
            d.poll_into(&mut streamed);
        }

        assert_eq!(streamed.len(), batch.len());
        for (s, (w, p)) in streamed.iter().zip(&batch) {
            assert_eq!(s.window, *w);
            assert_eq!(s.points, *p);
        }
    }

    #[test]
    fn r_ahead_of_samples_is_held_back() {
        let raw = synth(2000);
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        // R peaks announced long before any conditioned sample arrives.
        d.push_r(0).unwrap();
        d.push_r(200).unwrap();
        let mut out = Vec::new();
        d.poll_into(&mut out);
        assert!(out.is_empty(), "no samples yet — nothing may finalize");
        d.push_samples(&raw[..150]);
        d.poll_into(&mut out);
        assert!(out.is_empty(), "segment not yet covered");
        d.push_samples(&raw[150..300]);
        d.poll_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window, BeatWindow { r: 0, end: 200 });
    }

    #[test]
    fn out_of_range_rr_is_skipped() {
        let raw = synth(3000);
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        d.push_samples(&raw);
        // 40-sample RR (0.16 s) is below min_rr; the follow-up beat is fine.
        for r in [0, 40, 300] {
            d.push_r(r).unwrap();
        }
        let mut out = Vec::new();
        d.poll_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window, BeatWindow { r: 40, end: 300 });
    }

    #[test]
    fn non_ascending_r_rejected() {
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        d.push_r(100).unwrap();
        assert!(d.push_r(100).is_err());
        assert!(d.push_r(50).is_err());
    }

    #[test]
    fn memory_stays_bounded_without_beats() {
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        let chunk = vec![0.0; 250];
        let mut out = Vec::new();
        for _ in 0..600 {
            d.push_samples(&chunk);
            d.poll_into(&mut out);
        }
        assert!(out.is_empty());
        // cap = 2 × max_rr × fs = 1000 samples
        assert_eq!(d.samples_end(), 150_000);
        assert!(d.ring.len() <= 1000 + 250);
    }

    #[test]
    fn sqi_warms_then_scores_consistent_beats_high() {
        let raw = synth(8000);
        let icg = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&raw)
            .unwrap();
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        d.push_samples(&icg);
        for r in r_peaks(8000) {
            d.push_r(r).unwrap();
        }
        let mut out = Vec::new();
        d.poll_into(&mut out);
        assert!(out.len() > BeatDelineator::SQI_WARMUP_BEATS + 3);
        for (i, b) in out.iter().enumerate() {
            if i < BeatDelineator::SQI_WARMUP_BEATS {
                assert!(b.sqi.is_none(), "beat {i} should be warm-up");
            } else {
                let sqi = b.sqi.expect("warm template must score");
                assert!(
                    sqi > 0.95,
                    "identical morphology must correlate: beat {i} sqi {sqi}"
                );
            }
        }
    }

    #[test]
    fn abort_and_pad_realign_after_a_gap() {
        let raw = synth(4000);
        let icg = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&raw)
            .unwrap();
        let mut d = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        d.push_samples(&icg[..500]);
        d.push_r(0).unwrap();
        d.push_r(200).unwrap();
        d.push_r(400).unwrap();
        // Signal lost: drop pending beats, skip 1000 samples of the
        // conditioned stream, re-align, and continue with later signal.
        d.abort_pending();
        d.pad_to(1500);
        assert_eq!(d.samples_end(), 1500);
        d.push_samples(&icg[1500..]);
        d.push_r(1600).unwrap();
        d.push_r(1800).unwrap();
        let mut out = Vec::new();
        d.poll_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window, BeatWindow { r: 1600, end: 1800 });
        // pad_to at or behind the current head is a no-op
        d.pad_to(100);
        assert_eq!(d.samples_end(), icg.len());
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        let raw = synth(8000);
        let icg = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&raw)
            .unwrap();
        let peaks = r_peaks(8000);
        let run_from = |d: &mut BeatDelineator, lo: usize| {
            let mut out = Vec::new();
            let mut next = peaks
                .iter()
                .position(|&r| r + 50 > lo)
                .unwrap_or(peaks.len());
            let mut fed = lo;
            for chunk in icg[lo..].chunks(173) {
                d.push_samples(chunk);
                fed += chunk.len();
                while next < peaks.len() && peaks[next] + 50 <= fed {
                    d.push_r(peaks[next]).unwrap();
                    next += 1;
                }
                d.poll_into(&mut out);
            }
            out
        };
        let mut reference = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        let ref_out = run_from(&mut reference, 0);
        assert!(ref_out.len() > BeatDelineator::SQI_WARMUP_BEATS + 2);

        // Replay the first half, snapshot, restore elsewhere, resume.
        let split = (icg.len() / 2 / 173) * 173;
        let mut first = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        let mut head = Vec::new();
        let mut next = 0;
        let mut fed = 0;
        for chunk in icg[..split].chunks(173) {
            first.push_samples(chunk);
            fed += chunk.len();
            while next < peaks.len() && peaks[next] + 50 <= fed {
                first.push_r(peaks[next]).unwrap();
                next += 1;
            }
            first.poll_into(&mut head);
        }
        let snap = first.snapshot();
        let mut resumed = BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.3, 2.0).unwrap();
        resumed.restore(&snap).unwrap();
        let tail = run_from(&mut resumed, split);
        let all: Vec<OnlineBeat> = head.into_iter().chain(tail).collect();
        assert_eq!(all.len(), ref_out.len());
        for (a, b) in all.iter().zip(&ref_out) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.points, b.points);
            assert_eq!(a.dzdt_max.to_bits(), b.dzdt_max.to_bits());
            assert_eq!(a.sqi.map(f64::to_bits), b.sqi.map(f64::to_bits));
        }
    }

    #[test]
    fn bad_rr_range_rejected() {
        assert!(BeatDelineator::new(FS, XSearch::GlobalMinimum, 2.0, 0.3).is_err());
        assert!(BeatDelineator::new(FS, XSearch::GlobalMinimum, 0.0, 2.0).is_err());
    }
}
