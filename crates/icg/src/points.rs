//! Detection of the ICG characteristic points B, C and X (Section IV-C).
//!
//! The algorithm operates on one beat at a time — the ICG samples between
//! two consecutive ECG R peaks, with index 0 corresponding to the R peak:
//!
//! * **C point** — the maximum of the ICG within the beat;
//! * **B point** — first the initial estimate **B0** is computed as the
//!   intersection with the horizontal axis of the least-squares line
//!   through the ICG points between 40 % and 80 % of the C amplitude on
//!   the rising edge. If the (+,−,+,−) sign pattern of the second
//!   derivative is present left of C, B is the first minimum of the third
//!   derivative to the left of B0; otherwise B is the first zero crossing
//!   of the first derivative to the left of B0;
//! * **X point** — the initial estimate **X0** is the lowest negative
//!   minimum to the right of C (the paper's variant, chosen because the
//!   T-wave end is an unreliable marker), or the lowest negative minimum
//!   within `[RT, 1.75·RT]` (the Carvalho et al. variant \[28\]); X is then
//!   refined to the local minimum of the third derivative just left of X0.
//!
//! The derivative refinements search within a bounded window (60 ms for B,
//! 50 ms for X; the paper does not specify an extent) and fall back to the
//! initial estimate when the window contains no qualifying extremum —
//! without the bound, the smooth flanks of low-noise beats would let the
//! search run far from the landmark.

use crate::IcgError;
use cardiotouch_dsp::diff;
use cardiotouch_dsp::peaks;
use cardiotouch_dsp::stats::LineFit;

/// Strategy for locating the initial X estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum XSearch {
    /// The paper's choice: the lowest ICG negative minimum to the right of
    /// the C point.
    GlobalMinimum,
    /// Carvalho et al. \[28\]: the lowest ICG negative minimum in the
    /// interval `RT ≤ t ≤ 1.75·RT`, where `RT` is the R→T duration.
    RtWindow {
        /// R-to-T-wave duration for this beat, seconds.
        rt_s: f64,
    },
}

/// Which rule produced the B point (exposed for analysis, C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BRule {
    /// The (+,−,+,−) second-derivative pattern was present: B is the first
    /// third-derivative minimum left of B0.
    ThirdDerivativeMinimum,
    /// Pattern absent: B is the first first-derivative zero crossing left
    /// of B0.
    FirstDerivativeZeroCrossing,
    /// Neither refinement found a candidate in its window: B0 itself.
    LineFitIntercept,
}

/// Detected characteristic points of one beat, as sample indices relative
/// to the segment start (the R peak).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CharacteristicPoints {
    /// B point (aortic valve opening).
    pub b: usize,
    /// C point (dZ/dt maximum).
    pub c: usize,
    /// X point (aortic valve closure).
    pub x: usize,
    /// The fractional initial B estimate from the line fit.
    pub b0: f64,
    /// Which refinement rule produced B.
    pub b_rule: BRule,
}

/// The beat-level characteristic-point detector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PointDetector {
    fs: f64,
    x_search: XSearch,
    /// Extent of the leftward B refinement searches, seconds.
    b_refine_window_s: f64,
    /// Extent of the leftward X refinement search, seconds.
    x_refine_window_s: f64,
}

impl PointDetector {
    /// Creates a detector for sampling rate `fs` with the given X-search
    /// strategy.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for a non-positive `fs` or a
    /// non-positive `rt_s` in [`XSearch::RtWindow`].
    pub fn new(fs: f64, x_search: XSearch) -> Result<Self, IcgError> {
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(IcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must be positive and finite",
            });
        }
        if let XSearch::RtWindow { rt_s } = x_search {
            if !(rt_s > 0.0 && rt_s.is_finite()) {
                return Err(IcgError::InvalidParameter {
                    name: "rt_s",
                    value: rt_s,
                    constraint: "must be positive and finite",
                });
            }
        }
        Ok(Self {
            fs,
            x_search,
            b_refine_window_s: 0.060,
            x_refine_window_s: 0.080,
        })
    }

    /// The configured X-search strategy.
    #[must_use]
    pub fn x_search(&self) -> XSearch {
        self.x_search
    }

    /// Detects B, C and X in one beat segment (`icg[0]` at the R peak).
    ///
    /// # Errors
    ///
    /// * [`IcgError::BeatTooShort`] for segments under 0.3 s;
    /// * [`IcgError::PointNotFound`] when the beat has no positive C wave
    ///   or no negative minimum after it.
    pub fn detect(&self, icg: &[f64]) -> Result<CharacteristicPoints, IcgError> {
        let min_len = (0.3 * self.fs) as usize;
        if icg.len() < min_len {
            return Err(IcgError::BeatTooShort {
                len: icg.len(),
                min_len,
            });
        }

        // --- C point -----------------------------------------------------
        // Search away from the segment edges: the ejection cannot start
        // before ~40 ms after R, and C sits in the first ~3/4 of the cycle.
        let c_lo = (0.04 * self.fs) as usize;
        let c_hi = (icg.len() * 3) / 4;
        let c = c_lo
            + peaks::argmax(&icg[c_lo..c_hi]).ok_or(IcgError::PointNotFound {
                point: "C",
                reason: "empty search window",
            })?;
        let amp_c = icg[c];
        if amp_c <= 0.0 {
            return Err(IcgError::PointNotFound {
                point: "C",
                reason: "no positive deflection in the beat",
            });
        }

        // --- derivatives ---------------------------------------------------
        // Derivatives triple-amplify in-band noise, so they are computed
        // on a lightly binomial-smoothed copy (a standard precaution in
        // ICG point detectors); amplitudes and extrema searches above use
        // the signal as given.
        let smoothed = binomial_smooth(icg);
        let d1 = diff::derivative(&smoothed, self.fs)?;
        let d2 = diff::second_derivative(&smoothed, self.fs)?;
        let d3 = diff::third_derivative(&smoothed, self.fs)?;

        // --- B0: 40-80 % line fit -----------------------------------------
        // Walk the rising edge leftward from C, collecting contiguous
        // samples between the two amplitude thresholds.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut i = c;
        while i > 0 {
            let v = icg[i];
            if v < 0.4 * amp_c {
                break;
            }
            if v <= 0.8 * amp_c {
                xs.push(i as f64);
                ys.push(v);
            }
            i -= 1;
        }
        let edge_floor = i; // last index inspected (below 40 %)
        let b0 = if xs.len() >= 2 {
            LineFit::fit(&xs, &ys)
                .ok()
                .and_then(|f| f.x_intercept())
                .filter(|&v| v.is_finite() && v >= 0.0 && v < c as f64)
                .unwrap_or(edge_floor as f64)
        } else {
            edge_floor as f64
        };
        let b0_idx = (b0.round() as usize).min(c.saturating_sub(1));

        // --- B refinement ---------------------------------------------------
        // The scan starts two samples right of the rounded B0: B0 is a
        // fractional line-fit intercept, and after low-pass conditioning
        // the knee's derivative extremum can land within that rounding
        // slack on either side.
        let b_window = (self.b_refine_window_s * self.fs) as usize;
        let b_start = (b0_idx + 2).min(c.saturating_sub(1));
        let pattern_lo = b0_idx.saturating_sub(2 * b_window);
        let has_pattern = peaks::has_sign_pattern(&d2[pattern_lo..=c], &[true, false, true, false]);
        let (mut b, mut b_rule) = if has_pattern {
            match first_local_min_left_within(&d3, b_start, b_window) {
                Some(idx) => (idx, BRule::ThirdDerivativeMinimum),
                None => (b0_idx, BRule::LineFitIntercept),
            }
        } else {
            match first_zero_crossing_left_within(&d1, b_start, b_window) {
                Some(idx) => (idx, BRule::FirstDerivativeZeroCrossing),
                None => (b0_idx, BRule::LineFitIntercept),
            }
        };
        // If the pattern rule found nothing, try the zero-crossing rule
        // before settling on B0.
        if b_rule == BRule::LineFitIntercept {
            if let Some(idx) = first_zero_crossing_left_within(&d1, b_start, b_window) {
                b = idx;
                b_rule = BRule::FirstDerivativeZeroCrossing;
            }
        }
        let b = b.min(c.saturating_sub(1));

        // --- X0 ---------------------------------------------------------------
        // The "global" search is bounded at 300 ms past C: the C apex sits
        // ~40 % into ejection, so X trails it by 0.6·LVET ≤ 270 ms even at
        // the longest physiological LVET; anything deeper farther out is a
        // diastolic artifact, not the valve closure.
        let x_bound = c + 1 + (0.30 * self.fs) as usize;
        let (x_lo, x_hi) = match self.x_search {
            XSearch::GlobalMinimum => (c + 1, icg.len().min(x_bound)),
            XSearch::RtWindow { rt_s } => {
                let lo = ((rt_s * self.fs) as usize).max(c + 1);
                let hi = ((1.75 * rt_s * self.fs) as usize).min(icg.len());
                if lo >= hi {
                    (c + 1, icg.len())
                } else {
                    (lo, hi)
                }
            }
        };
        if x_lo >= x_hi {
            return Err(IcgError::PointNotFound {
                point: "X",
                reason: "no samples after the C point",
            });
        }
        let x0 = x_lo
            + peaks::argmin(&icg[x_lo..x_hi]).ok_or(IcgError::PointNotFound {
                point: "X",
                reason: "empty search window",
            })?;
        if icg[x0] >= 0.0 {
            return Err(IcgError::PointNotFound {
                point: "X",
                reason: "no negative minimum after the C point",
            });
        }

        // --- X refinement ------------------------------------------------------
        let x_window = (self.x_refine_window_s * self.fs) as usize;
        let x = first_local_min_left_within(&d3, x0, x_window)
            .filter(|&idx| idx > c)
            .unwrap_or(x0);

        Ok(CharacteristicPoints {
            b,
            c,
            x,
            b0,
            b_rule,
        })
    }
}

/// One pass of 5-point binomial smoothing `[1, 4, 6, 4, 1] / 16` with
/// replicated edges.
fn binomial_smooth(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let at = |i: isize| -> f64 { x[i.clamp(0, n as isize - 1) as usize] };
    (0..n as isize)
        .map(|i| (at(i - 2) + 4.0 * at(i - 1) + 6.0 * at(i) + 4.0 * at(i + 1) + at(i + 2)) / 16.0)
        .collect()
}

/// First strict local minimum of `x` scanning left from `start`, not
/// farther than `window` samples. `None` when nothing qualifies.
fn first_local_min_left_within(x: &[f64], start: usize, window: usize) -> Option<usize> {
    let stop = start.saturating_sub(window);
    let mut i = start.min(x.len().saturating_sub(1));
    while i >= 2 && i > stop.max(1) {
        let c = i - 1;
        if x[c] < x[c - 1] && x[c] <= x[c + 1] {
            return Some(c);
        }
        i -= 1;
    }
    None
}

/// First sign change of `x` scanning left from `start`, not farther than
/// `window` samples. Returns the left index of the crossing pair.
fn first_zero_crossing_left_within(x: &[f64], start: usize, window: usize) -> Option<usize> {
    let stop = start.saturating_sub(window);
    let mut i = start.min(x.len().saturating_sub(1));
    while i > stop && i > 0 {
        let a = x[i - 1];
        let b = x[i];
        if a != 0.0 && b != 0.0 && (a > 0.0) != (b > 0.0) {
            return Some(i - 1);
        }
        i -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardiotouch_physio::heart::HeartModel;
    use cardiotouch_physio::icg::IcgMorphology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    /// Renders beats and returns (full icg, landmarks).
    fn synth(seed: u64) -> (Vec<f64>, Vec<cardiotouch_physio::icg::BeatLandmarks>) {
        let beats = HeartModel::default()
            .schedule(20.0, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let n = (20.0 * FS) as usize;
        let m = IcgMorphology::default();
        (m.render_dzdt(&beats, n, FS), m.landmarks(&beats, n, FS))
    }

    fn detector() -> PointDetector {
        PointDetector::new(FS, XSearch::GlobalMinimum).unwrap()
    }

    #[test]
    fn detects_points_near_ground_truth() {
        let (icg, lms) = synth(1);
        let det = detector();
        let mut b_err = Vec::new();
        let mut c_err = Vec::new();
        let mut x_err = Vec::new();
        for w in lms.windows(2) {
            let (lm, next) = (&w[0], &w[1]);
            let seg = &icg[lm.r..next.r];
            let pts = det.detect(seg).unwrap();
            b_err.push((pts.b + lm.r) as f64 - lm.b as f64);
            c_err.push((pts.c + lm.r) as f64 - lm.c as f64);
            x_err.push((pts.x + lm.r) as f64 - lm.x as f64);
        }
        let mae = |v: &[f64]| v.iter().map(|e| e.abs()).sum::<f64>() / v.len() as f64;
        // tolerances in samples at 250 Hz (4 ms each)
        assert!(mae(&c_err) <= 1.5, "C MAE {} samples", mae(&c_err));
        assert!(mae(&b_err) <= 5.0, "B MAE {} samples", mae(&b_err));
        assert!(mae(&x_err) <= 4.0, "X MAE {} samples", mae(&x_err));
    }

    #[test]
    fn ordering_invariant_holds() {
        let (icg, lms) = synth(2);
        let det = detector();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let pts = det.detect(seg).unwrap();
            assert!(pts.b < pts.c && pts.c < pts.x, "{pts:?}");
        }
    }

    #[test]
    fn rt_window_variant_matches_global_minimum_on_clean_beats() {
        let (icg, lms) = synth(3);
        let global = detector();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let p1 = global.detect(seg).unwrap();
            // RT duration ≈ R→T apex ≈ 0.30 s for these beats
            let rt = PointDetector::new(FS, XSearch::RtWindow { rt_s: 0.30 }).unwrap();
            let p2 = rt.detect(seg).unwrap();
            assert!(
                p1.x.abs_diff(p2.x) <= 2,
                "variants disagree: {} vs {}",
                p1.x,
                p2.x
            );
        }
    }

    #[test]
    fn b0_line_fit_lands_on_rising_edge() {
        let (icg, lms) = synth(4);
        let det = detector();
        for w in lms.windows(2).take(5) {
            let seg = &icg[w[0].r..w[1].r];
            let pts = det.detect(seg).unwrap();
            // B0 must precede C and come after the segment start
            assert!(pts.b0 > 0.0 && pts.b0 < pts.c as f64);
            // and the signal at B0 must be well below 40 % of the C peak
            let v = seg[pts.b0.round() as usize];
            assert!(v < 0.45 * seg[pts.c], "B0 too high on the edge: {v}");
        }
    }

    #[test]
    fn survives_filtering_chain() {
        use crate::filter::IcgConditioner;
        let (mut icg, lms) = synth(5);
        // add out-of-band noise, then condition as the firmware would
        let mut rng = StdRng::seed_from_u64(99);
        let noise = cardiotouch_physio::noise::white(icg.len(), 0.05, &mut rng);
        for (v, n) in icg.iter_mut().zip(&noise) {
            *v += n;
        }
        let clean = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&icg)
            .unwrap();
        let det = detector();
        let mut ok = 0;
        let mut total = 0;
        for w in lms.windows(2) {
            let seg = &clean[w[0].r..w[1].r];
            if let Ok(pts) = det.detect(seg) {
                total += 1;
                let b_abs = pts.b + w[0].r;
                let x_abs = pts.x + w[0].r;
                // Under this much in-band noise (σ = 0.05 Ω/s is ~4 % of
                // the C peak even after 20 Hz conditioning) B-point
                // detection is known to be bimodal; ±40 ms for B and
                // ±32 ms for X on ≥ 80 % of beats is the realistic bar.
                if b_abs.abs_diff(w[0].b) <= 10 && x_abs.abs_diff(w[0].x) <= 8 {
                    ok += 1;
                }
            }
        }
        assert!(total >= lms.len() - 2);
        assert!(
            ok as f64 >= 0.80 * total as f64,
            "only {ok}/{total} beats within tolerance"
        );
    }

    #[test]
    fn too_short_beat_rejected() {
        let det = detector();
        assert!(matches!(
            det.detect(&[0.0; 20]),
            Err(IcgError::BeatTooShort { .. })
        ));
    }

    #[test]
    fn all_negative_beat_has_no_c() {
        let det = detector();
        let seg = vec![-1.0; 200];
        assert!(matches!(
            det.detect(&seg),
            Err(IcgError::PointNotFound { point: "C", .. })
        ));
    }

    #[test]
    fn no_negative_trough_has_no_x() {
        let det = detector();
        // positive bump, never goes negative
        let seg: Vec<f64> = (0..200)
            .map(|i| {
                let t = (i as f64 - 60.0) / FS;
                (-t * t / (2.0 * 0.04 * 0.04)).exp()
            })
            .collect();
        assert!(matches!(
            det.detect(&seg),
            Err(IcgError::PointNotFound { point: "X", .. })
        ));
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(PointDetector::new(0.0, XSearch::GlobalMinimum).is_err());
        assert!(PointDetector::new(FS, XSearch::RtWindow { rt_s: 0.0 }).is_err());
    }

    #[test]
    fn b_rule_is_reported() {
        let (icg, lms) = synth(6);
        let det = detector();
        let mut rules = std::collections::HashSet::new();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            rules.insert(format!("{:?}", det.detect(seg).unwrap().b_rule));
        }
        assert!(!rules.is_empty());
    }
}
