//! Detection of the ICG characteristic points B, C and X (Section IV-C).
//!
//! The algorithm operates on one beat at a time — the ICG samples between
//! two consecutive ECG R peaks, with index 0 corresponding to the R peak:
//!
//! * **C point** — the maximum of the ICG within the beat;
//! * **B point** — first the initial estimate **B0** is computed as the
//!   intersection with the horizontal axis of the least-squares line
//!   through the ICG points between 40 % and 80 % of the C amplitude on
//!   the rising edge. If the (+,−,+,−) sign pattern of the second
//!   derivative is present left of C, B is the first minimum of the third
//!   derivative to the left of B0; otherwise B is the first zero crossing
//!   of the first derivative to the left of B0;
//! * **X point** — the initial estimate **X0** is the lowest negative
//!   minimum to the right of C (the paper's variant, chosen because the
//!   T-wave end is an unreliable marker), or the lowest negative minimum
//!   within `[RT, 1.75·RT]` (the Carvalho et al. variant \[28\]); X is then
//!   refined to the local minimum of the third derivative just left of X0.
//!
//! The derivative refinements search within a bounded window (60 ms for B,
//! 50 ms for X; the paper does not specify an extent) and fall back to the
//! initial estimate when the window contains no qualifying extremum —
//! without the bound, the smooth flanks of low-noise beats would let the
//! search run far from the landmark.

use crate::strategy::{DelineationStrategy, StrategyState};
use crate::IcgError;
use cardiotouch_dsp::diff;
use cardiotouch_dsp::peaks;
use cardiotouch_dsp::stats::LineFit;

/// Strategy for locating the initial X estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum XSearch {
    /// The paper's choice: the lowest ICG negative minimum to the right of
    /// the C point.
    GlobalMinimum,
    /// Carvalho et al. \[28\]: the lowest ICG negative minimum in the
    /// interval `RT ≤ t ≤ 1.75·RT`, where `RT` is the R→T duration.
    RtWindow {
        /// R-to-T-wave duration for this beat, seconds.
        rt_s: f64,
    },
}

/// Which rule produced the B point (exposed for analysis, C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BRule {
    /// The (+,−,+,−) second-derivative pattern was present: B is the first
    /// third-derivative minimum left of B0.
    ThirdDerivativeMinimum,
    /// Pattern absent: B is the first first-derivative zero crossing left
    /// of B0.
    FirstDerivativeZeroCrossing,
    /// Neither refinement found a candidate in its window: B0 itself.
    LineFitIntercept,
    /// ReBeatICG: B is the last local minimum of the smoothed ICG (the
    /// valve-opening notch) before C.
    SignalNotchMinimum,
    /// ReBeatICG fallback: no notch survived smoothing — B is the last
    /// zero crossing of the smoothed ICG before C.
    SignalZeroCrossing,
    /// ReBeatICG final fallback: the maximum-curvature point (second
    /// derivative maximum) on the rising edge.
    CurvatureMaximum,
    /// Weighted time-window estimator: the best-scoring candidate
    /// inside the physiologically expected window (or its centre when
    /// the window holds no candidate — the implied-interval gate still
    /// vets that fallback).
    WeightedWindow,
}

/// Plausibility band (seconds) on the implied PEP under the
/// weighted-window strategies: a delineation whose R→B interval leaves
/// it is rejected outright. Deliberately tighter than the downstream
/// `is_physiological` outlier bounds (0.05–0.25 s), which flag but
/// keep the beat.
pub const WEIGHTED_PEP_BAND_S: (f64, f64) = (0.06, 0.20);

/// Plausibility band (seconds) on the implied LVET under the
/// weighted-window strategies (`is_physiological` allows 0.12–0.50 s).
pub const WEIGHTED_LVET_BAND_S: (f64, f64) = (0.15, 0.45);

/// Detected characteristic points of one beat, as sample indices relative
/// to the segment start (the R peak).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CharacteristicPoints {
    /// B point (aortic valve opening).
    pub b: usize,
    /// C point (dZ/dt maximum).
    pub c: usize,
    /// X point (aortic valve closure).
    pub x: usize,
    /// The fractional initial B estimate from the line fit.
    pub b0: f64,
    /// Which refinement rule produced B.
    pub b_rule: BRule,
}

/// The beat-level characteristic-point detector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PointDetector {
    fs: f64,
    x_search: XSearch,
    strategy: DelineationStrategy,
    /// Extent of the leftward B refinement searches, seconds.
    b_refine_window_s: f64,
    /// Extent of the leftward X refinement search, seconds.
    x_refine_window_s: f64,
    /// Extent of the ReBeatICG notch search left of C, seconds — wide
    /// enough for the longest physiological B→C run (~0.4·LVET), short
    /// enough to exclude the A wave.
    b_notch_window_s: f64,
    /// Half-width of the weighted B window, seconds.
    b_weight_halfwidth_s: f64,
}

impl PointDetector {
    /// Creates a detector for sampling rate `fs` with the given X-search
    /// strategy.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for a non-positive `fs` or a
    /// non-positive `rt_s` in [`XSearch::RtWindow`].
    pub fn new(fs: f64, x_search: XSearch) -> Result<Self, IcgError> {
        Self::with_strategy(fs, x_search, DelineationStrategy::Classic)
    }

    /// Creates a detector applying `strategy`'s rule set.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn with_strategy(
        fs: f64,
        x_search: XSearch,
        strategy: DelineationStrategy,
    ) -> Result<Self, IcgError> {
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(IcgError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must be positive and finite",
            });
        }
        if let XSearch::RtWindow { rt_s } = x_search {
            if !(rt_s > 0.0 && rt_s.is_finite()) {
                return Err(IcgError::InvalidParameter {
                    name: "rt_s",
                    value: rt_s,
                    constraint: "must be positive and finite",
                });
            }
        }
        Ok(Self {
            fs,
            x_search,
            strategy,
            b_refine_window_s: 0.060,
            x_refine_window_s: 0.080,
            b_notch_window_s: 0.180,
            b_weight_halfwidth_s: 0.050,
        })
    }

    /// The configured X-search strategy.
    #[must_use]
    pub fn x_search(&self) -> XSearch {
        self.x_search
    }

    /// The configured delineation strategy.
    #[must_use]
    pub fn strategy(&self) -> DelineationStrategy {
        self.strategy
    }

    /// Detects B, C and X in one beat segment (`icg[0]` at the R peak),
    /// using a throwaway [`StrategyState`] — the stateless entry point.
    /// For the weighted-window strategies, prefer [`Self::detect_with`]
    /// so the expected-B prior adapts beat over beat.
    ///
    /// # Errors
    ///
    /// * [`IcgError::BeatTooShort`] for segments under 0.3 s;
    /// * [`IcgError::PointNotFound`] when the beat has no positive C wave
    ///   or (Classic rules) no negative minimum after it.
    pub fn detect(&self, icg: &[f64]) -> Result<CharacteristicPoints, IcgError> {
        self.detect_with(icg, &mut StrategyState::default())
    }

    /// Detects B, C and X in one beat segment, advancing `state` on
    /// success. Both engines — batch ([`detect`](Self::detect) loops in
    /// the core pipeline) and the O(hop) streaming delineator — call
    /// this on the identical settled segment with the identical state
    /// trajectory, which is what keeps batch==stream bitwise identical
    /// per strategy.
    ///
    /// # Errors
    ///
    /// See [`Self::detect`]. `state` is untouched when an error is
    /// returned.
    pub fn detect_with(
        &self,
        icg: &[f64],
        state: &mut StrategyState,
    ) -> Result<CharacteristicPoints, IcgError> {
        match self.strategy {
            DelineationStrategy::Classic => self.detect_classic(icg),
            DelineationStrategy::ReBeatIcg => self.detect_rebeat(icg),
            DelineationStrategy::WeightedWindowB => self.detect_weighted(icg, state, false),
            DelineationStrategy::Hybrid => self.detect_weighted(icg, state, true),
        }
    }

    /// The source paper's rule set (strategy [`DelineationStrategy::Classic`]).
    fn detect_classic(&self, icg: &[f64]) -> Result<CharacteristicPoints, IcgError> {
        let min_len = (0.3 * self.fs) as usize;
        if icg.len() < min_len {
            return Err(IcgError::BeatTooShort {
                len: icg.len(),
                min_len,
            });
        }

        // --- C point -----------------------------------------------------
        // Search away from the segment edges: the ejection cannot start
        // before ~40 ms after R, and C sits in the first ~3/4 of the cycle.
        let c_lo = (0.04 * self.fs) as usize;
        let c_hi = (icg.len() * 3) / 4;
        let c = c_lo
            + peaks::argmax(&icg[c_lo..c_hi]).ok_or(IcgError::PointNotFound {
                point: "C",
                reason: "empty search window",
            })?;
        let amp_c = icg[c];
        if amp_c <= 0.0 {
            return Err(IcgError::PointNotFound {
                point: "C",
                reason: "no positive deflection in the beat",
            });
        }

        // --- derivatives ---------------------------------------------------
        // Derivatives triple-amplify in-band noise, so they are computed
        // on a lightly binomial-smoothed copy (a standard precaution in
        // ICG point detectors); amplitudes and extrema searches above use
        // the signal as given.
        let smoothed = binomial_smooth(icg);
        let d1 = diff::derivative(&smoothed, self.fs)?;
        let d2 = diff::second_derivative(&smoothed, self.fs)?;
        let d3 = diff::third_derivative(&smoothed, self.fs)?;

        // --- B0: 40-80 % line fit -----------------------------------------
        // Walk the rising edge leftward from C, collecting contiguous
        // samples between the two amplitude thresholds.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut i = c;
        while i > 0 {
            let v = icg[i];
            if v < 0.4 * amp_c {
                break;
            }
            if v <= 0.8 * amp_c {
                xs.push(i as f64);
                ys.push(v);
            }
            i -= 1;
        }
        let edge_floor = i; // last index inspected (below 40 %)
        let b0 = if xs.len() >= 2 {
            LineFit::fit(&xs, &ys)
                .ok()
                .and_then(|f| f.x_intercept())
                .filter(|&v| v.is_finite() && v >= 0.0 && v < c as f64)
                .unwrap_or(edge_floor as f64)
        } else {
            edge_floor as f64
        };
        let b0_idx = (b0.round() as usize).min(c.saturating_sub(1));

        // --- B refinement ---------------------------------------------------
        // The scan starts two samples right of the rounded B0: B0 is a
        // fractional line-fit intercept, and after low-pass conditioning
        // the knee's derivative extremum can land within that rounding
        // slack on either side.
        let b_window = (self.b_refine_window_s * self.fs) as usize;
        let b_start = (b0_idx + 2).min(c.saturating_sub(1));
        let pattern_lo = b0_idx.saturating_sub(2 * b_window);
        let has_pattern = peaks::has_sign_pattern(&d2[pattern_lo..=c], &[true, false, true, false]);
        let (mut b, mut b_rule) = if has_pattern {
            match first_local_min_left_within(&d3, b_start, b_window) {
                Some(idx) => (idx, BRule::ThirdDerivativeMinimum),
                None => (b0_idx, BRule::LineFitIntercept),
            }
        } else {
            match first_zero_crossing_left_within(&d1, b_start, b_window) {
                Some(idx) => (idx, BRule::FirstDerivativeZeroCrossing),
                None => (b0_idx, BRule::LineFitIntercept),
            }
        };
        // If the pattern rule found nothing, try the zero-crossing rule
        // before settling on B0.
        if b_rule == BRule::LineFitIntercept {
            if let Some(idx) = first_zero_crossing_left_within(&d1, b_start, b_window) {
                b = idx;
                b_rule = BRule::FirstDerivativeZeroCrossing;
            }
        }
        let b = b.min(c.saturating_sub(1));

        // --- X0 ---------------------------------------------------------------
        // The "global" search is bounded at 300 ms past C: the C apex sits
        // ~40 % into ejection, so X trails it by 0.6·LVET ≤ 270 ms even at
        // the longest physiological LVET; anything deeper farther out is a
        // diastolic artifact, not the valve closure.
        let x_bound = c + 1 + (0.30 * self.fs) as usize;
        let (x_lo, x_hi) = match self.x_search {
            XSearch::GlobalMinimum => (c + 1, icg.len().min(x_bound)),
            XSearch::RtWindow { rt_s } => {
                let lo = ((rt_s * self.fs) as usize).max(c + 1);
                let hi = ((1.75 * rt_s * self.fs) as usize).min(icg.len());
                if lo >= hi {
                    (c + 1, icg.len())
                } else {
                    (lo, hi)
                }
            }
        };
        if x_lo >= x_hi {
            return Err(IcgError::PointNotFound {
                point: "X",
                reason: "no samples after the C point",
            });
        }
        let x0 = x_lo
            + peaks::argmin(&icg[x_lo..x_hi]).ok_or(IcgError::PointNotFound {
                point: "X",
                reason: "empty search window",
            })?;
        if icg[x0] >= 0.0 {
            return Err(IcgError::PointNotFound {
                point: "X",
                reason: "no negative minimum after the C point",
            });
        }

        // --- X refinement ------------------------------------------------------
        let x_window = (self.x_refine_window_s * self.fs) as usize;
        let x = first_local_min_left_within(&d3, x0, x_window)
            .filter(|&idx| idx > c)
            .unwrap_or(x0);

        Ok(CharacteristicPoints {
            b,
            c,
            x,
            b0,
            b_rule,
        })
    }

    /// Shared beat-length gate.
    fn check_len(&self, icg: &[f64]) -> Result<(), IcgError> {
        let min_len = (0.3 * self.fs) as usize;
        if icg.len() < min_len {
            return Err(IcgError::BeatTooShort {
                len: icg.len(),
                min_len,
            });
        }
        Ok(())
    }

    /// Shared C-apex search (identical window to the Classic rules so
    /// every strategy names the same apex).
    fn find_c(&self, icg: &[f64]) -> Result<usize, IcgError> {
        let c_lo = (0.04 * self.fs) as usize;
        let c_hi = (icg.len() * 3) / 4;
        let c = c_lo
            + peaks::argmax(&icg[c_lo..c_hi]).ok_or(IcgError::PointNotFound {
                point: "C",
                reason: "empty search window",
            })?;
        if icg[c] <= 0.0 {
            return Err(IcgError::PointNotFound {
                point: "C",
                reason: "no positive deflection in the beat",
            });
        }
        Ok(c)
    }

    /// ReBeatICG X rule: the bounded post-C trough (sign-free, so a
    /// degraded beat still yields a point) refined to the notch onset
    /// via the third derivative.
    fn x_rebeat(&self, icg: &[f64], c: usize, d3: &[f64]) -> Result<usize, IcgError> {
        let x_bound = c + 1 + (0.30 * self.fs) as usize;
        let (x_lo, x_hi) = match self.x_search {
            XSearch::GlobalMinimum => (c + 1, icg.len().min(x_bound)),
            XSearch::RtWindow { rt_s } => {
                let lo = ((rt_s * self.fs) as usize).max(c + 1);
                let hi = ((1.75 * rt_s * self.fs) as usize).min(icg.len());
                if lo >= hi {
                    (c + 1, icg.len())
                } else {
                    (lo, hi)
                }
            }
        };
        if x_lo >= x_hi {
            return Err(IcgError::PointNotFound {
                point: "X",
                reason: "no samples after the C point",
            });
        }
        let x0 = x_lo
            + peaks::argmin(&icg[x_lo..x_hi]).ok_or(IcgError::PointNotFound {
                point: "X",
                reason: "empty search window",
            })?;
        let x_window = (self.x_refine_window_s * self.fs) as usize;
        Ok(first_local_min_left_within(d3, x0, x_window)
            .filter(|&idx| idx > c)
            .unwrap_or(x0))
    }

    /// ReBeatICG (arXiv:2105.01525): C apex → notch-minimum B (with
    /// zero-crossing and max-curvature fallbacks) → bounded-trough X.
    /// Once a positive C wave exists, B and X always resolve — the
    /// layered fallbacks are the point of the algorithm.
    fn detect_rebeat(&self, icg: &[f64]) -> Result<CharacteristicPoints, IcgError> {
        self.check_len(icg)?;
        let c = self.find_c(icg)?;
        let smoothed = binomial_smooth(icg);
        let notch_window = (self.b_notch_window_s * self.fs) as usize;
        let (b, b_rule) = if let Some(idx) = first_local_min_left_within(&smoothed, c, notch_window)
        {
            (idx, BRule::SignalNotchMinimum)
        } else if let Some(idx) = first_zero_crossing_left_within(&smoothed, c, notch_window) {
            (idx, BRule::SignalZeroCrossing)
        } else {
            // Maximum curvature on the rising edge: always defined.
            let d2 = diff::second_derivative(&smoothed, self.fs)?;
            let lo = c.saturating_sub(notch_window).max(1);
            let idx = lo + peaks::argmax(&d2[lo..c.max(lo + 1)]).unwrap_or(0);
            (idx, BRule::CurvatureMaximum)
        };
        let b = b.min(c.saturating_sub(1));
        let d3 = diff::third_derivative(&smoothed, self.fs)?;
        let x = self.x_rebeat(icg, c, &d3)?;
        Ok(CharacteristicPoints {
            b,
            c,
            x,
            b0: b as f64,
            b_rule,
        })
    }

    /// Weighted time-window B (arXiv:2207.04490): candidates inside the
    /// expected-B window, scored by a triangular weight centred on the
    /// prior — an EMA of the per-beat *anchor* (the Classic-style
    /// leftward refinement of the line-fit foot), blended 3:1 with the
    /// current beat's anchor; the first beat uses its anchor directly.
    /// The implied PEP/LVET must land inside the expected bands
    /// ([`WEIGHTED_PEP_BAND_S`], [`WEIGHTED_LVET_BAND_S`]) or the beat
    /// is rejected. `rebeat_cx` pairs the estimator with the ReBeatICG
    /// C/X rules ([`DelineationStrategy::Hybrid`]) instead of the
    /// Classic ones.
    fn detect_weighted(
        &self,
        icg: &[f64],
        state: &mut StrategyState,
        rebeat_cx: bool,
    ) -> Result<CharacteristicPoints, IcgError> {
        self.check_len(icg)?;
        let c = self.find_c(icg)?;
        let amp_c = icg[c];
        let smoothed = binomial_smooth(icg);
        let d1 = diff::derivative(&smoothed, self.fs)?;
        let d3 = diff::third_derivative(&smoothed, self.fs)?;

        // Line-fit B0 (same construction as Classic): the first-beat
        // seed of the weighted window.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut i = c;
        while i > 0 {
            let v = icg[i];
            if v < 0.4 * amp_c {
                break;
            }
            if v <= 0.8 * amp_c {
                xs.push(i as f64);
                ys.push(v);
            }
            i -= 1;
        }
        let edge_floor = i;
        let b0 = if xs.len() >= 2 {
            LineFit::fit(&xs, &ys)
                .ok()
                .and_then(|f| f.x_intercept())
                .filter(|&v| v.is_finite() && v >= 0.0 && v < c as f64)
                .unwrap_or(edge_floor as f64)
        } else {
            edge_floor as f64
        };

        // Per-beat anchor for the expected-B prior: the Classic-style
        // leftward refinement from the line-fit foot. The raw intercept
        // lies on the rising edge — up to the full refinement window
        // *right* of the true knee — so it cannot centre the window
        // itself; the refined knee can. The anchor enters every beat
        // (averaged with the EMA below), not just the first: a prior
        // poisoned by a few bad early beats would otherwise
        // self-confirm forever, because the window only ever offers
        // candidates near wherever the prior already is.
        let seed = {
            let b_window = (self.b_refine_window_s * self.fs) as usize;
            let b0_idx = (b0.round() as usize).min(c.saturating_sub(1));
            let b_start = (b0_idx + 2).min(c.saturating_sub(1));
            first_local_min_left_within(&d3, b_start, b_window)
                .or_else(|| first_zero_crossing_left_within(&d1, b_start, b_window))
                .map_or(b0, |idx| idx as f64)
        };
        // 3:1 EMA:anchor — enough anchor that a biased prior mean-
        // reverts within a few beats, little enough that one outlier
        // anchor cannot drag B off the knee.
        let pred = if state.rb_beats > 0 {
            0.75 * (state.rb_ema_s * self.fs) + 0.25 * seed
        } else {
            seed
        };
        let (b, b_rule) = self.weighted_b(c, &d1, &d3, b0, pred);

        let x = if rebeat_cx {
            self.x_rebeat(icg, c, &d3)?
        } else {
            // Classic X: global negative trough + third-derivative onset.
            let x_bound = c + 1 + (0.30 * self.fs) as usize;
            let (x_lo, x_hi) = match self.x_search {
                XSearch::GlobalMinimum => (c + 1, icg.len().min(x_bound)),
                XSearch::RtWindow { rt_s } => {
                    let lo = ((rt_s * self.fs) as usize).max(c + 1);
                    let hi = ((1.75 * rt_s * self.fs) as usize).min(icg.len());
                    if lo >= hi {
                        (c + 1, icg.len())
                    } else {
                        (lo, hi)
                    }
                }
            };
            if x_lo >= x_hi {
                return Err(IcgError::PointNotFound {
                    point: "X",
                    reason: "no samples after the C point",
                });
            }
            let x0 = x_lo
                + peaks::argmin(&icg[x_lo..x_hi]).ok_or(IcgError::PointNotFound {
                    point: "X",
                    reason: "empty search window",
                })?;
            if icg[x0] >= 0.0 {
                return Err(IcgError::PointNotFound {
                    point: "X",
                    reason: "no negative minimum after the C point",
                });
            }
            let x_window = (self.x_refine_window_s * self.fs) as usize;
            first_local_min_left_within(&d3, x0, x_window)
                .filter(|&idx| idx > c)
                .unwrap_or(x0)
        };

        // The same physiologically-expected-window principle the B
        // search runs on, applied to the implied intervals: a beat
        // whose PEP or LVET leaves the expected band is a delineation
        // failure (motion artifacts on degraded touch signals produce
        // deep spurious dZ/dt troughs that a plausible B would
        // otherwise legitimise), so the beat is rejected rather than
        // reported. The bands are deliberately tighter than the
        // downstream `is_physiological` outlier gate — that gate keeps
        // the beat but flags it; this one refuses to emit coordinates
        // at all, which is what keeps junk X points out of the
        // detection set. Classic deliberately has no such gate: its
        // output is pinned bitwise to the source paper's rules.
        let pep_s = b as f64 / self.fs;
        let lvet_s = (x as f64 - b as f64) / self.fs;
        if !(WEIGHTED_PEP_BAND_S.0..=WEIGHTED_PEP_BAND_S.1).contains(&pep_s)
            || !(WEIGHTED_LVET_BAND_S.0..=WEIGHTED_LVET_BAND_S.1).contains(&lvet_s)
        {
            return Err(IcgError::PointNotFound {
                point: "B",
                reason: "implied systolic intervals outside the expected band",
            });
        }

        // The prior tracks the EMA of the per-beat *anchor* — never of
        // the chosen B. Feeding the choice back would self-confirm: a
        // window centred on a wrong track only offers candidates from
        // that track, so the prior could never see contrary evidence.
        // The anchor is unbiased (it ignores the prior entirely), so
        // the EMA mean-reverts within a few beats of any cold-start or
        // warm-up discrepancy — which is also what re-synchronises a
        // freshly started stream with a long-running batch. Advancing
        // only on full success keeps both engines on one trajectory.
        state.accept_rb(seed / self.fs);
        Ok(CharacteristicPoints {
            b,
            c,
            x,
            b0,
            b_rule,
        })
    }

    /// Scores weighted-window B candidates; returns the winner, or the
    /// window centre (the prior itself) when no candidate survives.
    /// The fallback is safe because the caller's interval-plausibility
    /// gate still vets the implied PEP/LVET — a prior-fabricated B
    /// paired with a junk X is rejected there, not reported.
    fn weighted_b(&self, c: usize, d1: &[f64], d3: &[f64], b0: f64, pred: f64) -> (usize, BRule) {
        let half = (self.b_weight_halfwidth_s * self.fs).max(1.0);
        let c_cap = c.saturating_sub(1).max(1);
        // The knee never sits on the C rising flank, whose own
        // third-derivative troughs dwarf the notch and would drag the
        // prior late beat over beat: the window's right edge stops at
        // the line-fit foot (B0 + rounding slack) — the same exclusion
        // the Classic leftward scan gets for free. Only the edge is
        // capped: when a degenerate line fit puts B0 left of the whole
        // window, the beat falls back to the prior rather than letting
        // the bad fit drag the search into the A wave.
        let flank_cap = c_cap.min((b0.round() as usize).saturating_add(2)).max(1);
        let pred = pred.clamp(1.0, c_cap as f64);
        let fallback = ((pred.round() as usize).max(1)).min(c_cap);
        let lo = ((pred - half).floor().max(1.0)) as usize;
        let hi = ((pred + half).ceil() as usize).min(flank_cap);
        if lo > hi {
            return (fallback, BRule::WeightedWindow);
        }
        // The triangle decays to only ½ at the window edge: distance
        // breaks ties between comparable candidates, but a deep knee
        // trough still beats a shallow noise feature sitting right on
        // the prior — a full-decay triangle makes whichever track the
        // prior starts on self-sustaining (two engines with different
        // warm-up histories would lock onto different tracks and never
        // reconverge).
        let weight =
            |i: usize, bonus: f64| bonus * (1.0 - (i as f64 - pred).abs() / (2.0 * (half + 1.0)));
        // Deepest third-derivative trough in the window: candidate
        // prominence is measured against it, so shallow noise minima
        // right at the prior cannot out-score the genuine (deep) knee
        // a few samples away — without this the EMA self-confirms
        // whatever offset it starts with.
        let mut d3_floor = 0.0_f64;
        for &v in d3.iter().take(hi + 1).skip(lo) {
            if v < d3_floor {
                d3_floor = v;
            }
        }
        let mut best: Option<(f64, usize)> = None;
        let consider = |w: f64, i: usize, best: &mut Option<(f64, usize)>| {
            if best.map_or(true, |(bw, _)| w > bw) {
                *best = Some((w, i));
            }
        };
        for i in lo..=hi {
            // Third-derivative local minima — the Classic primary
            // rule's candidate family, weighted by trough depth. The
            // knee sits where the upstroke begins, so the slope one
            // sample on must be non-descending: the A wave's right
            // flank produces equally deep troughs mid-descent, and
            // without the gate a cold-started prior locks onto them.
            if i >= 1
                && i + 1 < d3.len()
                && d3[i] < d3[i - 1]
                && d3[i] <= d3[i + 1]
                && (d1[i] > 0.0 || d1.get(i + 1).is_some_and(|&v| v >= 0.0))
            {
                let depth = if d3_floor < 0.0 {
                    (d3[i] / d3_floor).clamp(0.0, 1.0)
                } else {
                    0.5
                };
                consider(weight(i, depth), i, &mut best);
            }
            // Falling-to-rising first-derivative crossings (valley
            // onsets) — the secondary family, at fixed middling
            // quality: real on a clean notch, but indistinguishable
            // from noise wiggles. Rising-to-falling crossings are
            // local peaks and never B.
            if i + 1 < d1.len() && d1[i] < 0.0 && d1[i + 1] > 0.0 {
                consider(weight(i, 0.5), i, &mut best);
            }
        }
        match best {
            Some((_, i)) => (i, BRule::WeightedWindow),
            None => (fallback, BRule::WeightedWindow),
        }
    }
}

/// One pass of 5-point binomial smoothing `[1, 4, 6, 4, 1] / 16` with
/// replicated edges.
fn binomial_smooth(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let at = |i: isize| -> f64 { x[i.clamp(0, n as isize - 1) as usize] };
    (0..n as isize)
        .map(|i| (at(i - 2) + 4.0 * at(i - 1) + 6.0 * at(i) + 4.0 * at(i + 1) + at(i + 2)) / 16.0)
        .collect()
}

/// First strict local minimum of `x` scanning left from `start`, not
/// farther than `window` samples. `None` when nothing qualifies.
fn first_local_min_left_within(x: &[f64], start: usize, window: usize) -> Option<usize> {
    let stop = start.saturating_sub(window);
    let mut i = start.min(x.len().saturating_sub(1));
    while i >= 2 && i > stop.max(1) {
        let c = i - 1;
        if x[c] < x[c - 1] && x[c] <= x[c + 1] {
            return Some(c);
        }
        i -= 1;
    }
    None
}

/// First sign change of `x` scanning left from `start`, not farther than
/// `window` samples. Returns the left index of the crossing pair.
fn first_zero_crossing_left_within(x: &[f64], start: usize, window: usize) -> Option<usize> {
    let stop = start.saturating_sub(window);
    let mut i = start.min(x.len().saturating_sub(1));
    while i > stop && i > 0 {
        let a = x[i - 1];
        let b = x[i];
        if a != 0.0 && b != 0.0 && (a > 0.0) != (b > 0.0) {
            return Some(i - 1);
        }
        i -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{DelineationStrategy, StrategyState};
    use cardiotouch_physio::heart::HeartModel;
    use cardiotouch_physio::icg::IcgMorphology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    /// Renders beats and returns (full icg, landmarks).
    fn synth(seed: u64) -> (Vec<f64>, Vec<cardiotouch_physio::icg::BeatLandmarks>) {
        let beats = HeartModel::default()
            .schedule(20.0, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let n = (20.0 * FS) as usize;
        let m = IcgMorphology::default();
        (m.render_dzdt(&beats, n, FS), m.landmarks(&beats, n, FS))
    }

    fn detector() -> PointDetector {
        PointDetector::new(FS, XSearch::GlobalMinimum).unwrap()
    }

    #[test]
    fn detects_points_near_ground_truth() {
        let (icg, lms) = synth(1);
        let det = detector();
        let mut b_err = Vec::new();
        let mut c_err = Vec::new();
        let mut x_err = Vec::new();
        for w in lms.windows(2) {
            let (lm, next) = (&w[0], &w[1]);
            let seg = &icg[lm.r..next.r];
            let pts = det.detect(seg).unwrap();
            b_err.push((pts.b + lm.r) as f64 - lm.b as f64);
            c_err.push((pts.c + lm.r) as f64 - lm.c as f64);
            x_err.push((pts.x + lm.r) as f64 - lm.x as f64);
        }
        let mae = |v: &[f64]| v.iter().map(|e| e.abs()).sum::<f64>() / v.len() as f64;
        // tolerances in samples at 250 Hz (4 ms each)
        assert!(mae(&c_err) <= 1.5, "C MAE {} samples", mae(&c_err));
        assert!(mae(&b_err) <= 5.0, "B MAE {} samples", mae(&b_err));
        assert!(mae(&x_err) <= 4.0, "X MAE {} samples", mae(&x_err));
    }

    #[test]
    fn ordering_invariant_holds() {
        let (icg, lms) = synth(2);
        let det = detector();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let pts = det.detect(seg).unwrap();
            assert!(pts.b < pts.c && pts.c < pts.x, "{pts:?}");
        }
    }

    #[test]
    fn rt_window_variant_matches_global_minimum_on_clean_beats() {
        let (icg, lms) = synth(3);
        let global = detector();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let p1 = global.detect(seg).unwrap();
            // RT duration ≈ R→T apex ≈ 0.30 s for these beats
            let rt = PointDetector::new(FS, XSearch::RtWindow { rt_s: 0.30 }).unwrap();
            let p2 = rt.detect(seg).unwrap();
            assert!(
                p1.x.abs_diff(p2.x) <= 2,
                "variants disagree: {} vs {}",
                p1.x,
                p2.x
            );
        }
    }

    #[test]
    fn b0_line_fit_lands_on_rising_edge() {
        let (icg, lms) = synth(4);
        let det = detector();
        for w in lms.windows(2).take(5) {
            let seg = &icg[w[0].r..w[1].r];
            let pts = det.detect(seg).unwrap();
            // B0 must precede C and come after the segment start
            assert!(pts.b0 > 0.0 && pts.b0 < pts.c as f64);
            // and the signal at B0 must be well below 40 % of the C peak
            let v = seg[pts.b0.round() as usize];
            assert!(v < 0.45 * seg[pts.c], "B0 too high on the edge: {v}");
        }
    }

    #[test]
    fn survives_filtering_chain() {
        use crate::filter::IcgConditioner;
        let (mut icg, lms) = synth(5);
        // add out-of-band noise, then condition as the firmware would
        let mut rng = StdRng::seed_from_u64(99);
        let noise = cardiotouch_physio::noise::white(icg.len(), 0.05, &mut rng);
        for (v, n) in icg.iter_mut().zip(&noise) {
            *v += n;
        }
        let clean = IcgConditioner::paper_default(FS)
            .unwrap()
            .condition(&icg)
            .unwrap();
        let det = detector();
        let mut ok = 0;
        let mut total = 0;
        for w in lms.windows(2) {
            let seg = &clean[w[0].r..w[1].r];
            if let Ok(pts) = det.detect(seg) {
                total += 1;
                let b_abs = pts.b + w[0].r;
                let x_abs = pts.x + w[0].r;
                // Under this much in-band noise (σ = 0.05 Ω/s is ~4 % of
                // the C peak even after 20 Hz conditioning) B-point
                // detection is known to be bimodal; ±40 ms for B and
                // ±32 ms for X on ≥ 80 % of beats is the realistic bar.
                if b_abs.abs_diff(w[0].b) <= 10 && x_abs.abs_diff(w[0].x) <= 8 {
                    ok += 1;
                }
            }
        }
        assert!(total >= lms.len() - 2);
        assert!(
            ok as f64 >= 0.80 * total as f64,
            "only {ok}/{total} beats within tolerance"
        );
    }

    #[test]
    fn too_short_beat_rejected() {
        let det = detector();
        assert!(matches!(
            det.detect(&[0.0; 20]),
            Err(IcgError::BeatTooShort { .. })
        ));
    }

    #[test]
    fn all_negative_beat_has_no_c() {
        let det = detector();
        let seg = vec![-1.0; 200];
        assert!(matches!(
            det.detect(&seg),
            Err(IcgError::PointNotFound { point: "C", .. })
        ));
    }

    #[test]
    fn no_negative_trough_has_no_x() {
        let det = detector();
        // positive bump, never goes negative
        let seg: Vec<f64> = (0..200)
            .map(|i| {
                let t = (i as f64 - 60.0) / FS;
                (-t * t / (2.0 * 0.04 * 0.04)).exp()
            })
            .collect();
        assert!(matches!(
            det.detect(&seg),
            Err(IcgError::PointNotFound { point: "X", .. })
        ));
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(PointDetector::new(0.0, XSearch::GlobalMinimum).is_err());
        assert!(PointDetector::new(FS, XSearch::RtWindow { rt_s: 0.0 }).is_err());
    }

    #[test]
    fn all_strategies_detect_near_ground_truth() {
        let (icg, lms) = synth(7);
        for strategy in DelineationStrategy::ALL {
            let det = PointDetector::with_strategy(FS, XSearch::GlobalMinimum, strategy).unwrap();
            let mut state = StrategyState::default();
            let mut b_err = Vec::new();
            let mut x_err = Vec::new();
            for w in lms.windows(2) {
                let seg = &icg[w[0].r..w[1].r];
                let pts = det.detect_with(seg, &mut state).unwrap();
                assert!(pts.b < pts.c && pts.c < pts.x, "{strategy}: {pts:?}");
                b_err.push(((pts.b + w[0].r) as f64 - w[0].b as f64).abs());
                x_err.push(((pts.x + w[0].r) as f64 - w[0].x as f64).abs());
            }
            let mae = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            // 6 samples = 24 ms at 250 Hz: every rule set must stay in
            // the neighbourhood of the synthesis truth on clean beats.
            assert!(mae(&b_err) <= 6.0, "{strategy}: B MAE {}", mae(&b_err));
            assert!(mae(&x_err) <= 8.0, "{strategy}: X MAE {}", mae(&x_err));
        }
    }

    #[test]
    fn classic_strategy_is_bitwise_the_legacy_detector() {
        let (icg, lms) = synth(8);
        let legacy = detector();
        let via_strategy =
            PointDetector::with_strategy(FS, XSearch::GlobalMinimum, DelineationStrategy::Classic)
                .unwrap();
        let mut state = StrategyState::default();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let a = legacy.detect(seg).unwrap();
            let b = via_strategy.detect_with(seg, &mut state).unwrap();
            assert_eq!(a, b);
        }
        // Classic never touches the cross-beat state.
        assert_eq!(state, StrategyState::default());
    }

    #[test]
    fn rebeat_never_rejects_a_beat_with_a_positive_c_wave() {
        // A beat whose trough never goes negative: Classic rejects it
        // (no negative X minimum), ReBeatICG still delineates.
        let seg: Vec<f64> = (0..250)
            .map(|i| {
                let t = i as f64 / FS;
                1.4 * (-(t - 0.25) * (t - 0.25) / (2.0 * 0.05 * 0.05)).exp() + 0.05
            })
            .collect();
        let classic = detector();
        assert!(classic.detect(&seg).is_err());
        let rebeat = PointDetector::with_strategy(
            FS,
            XSearch::GlobalMinimum,
            DelineationStrategy::ReBeatIcg,
        )
        .unwrap();
        let pts = rebeat.detect(&seg).unwrap();
        assert!(pts.b < pts.c && pts.c < pts.x);
    }

    #[test]
    fn weighted_b_prior_adapts_across_beats() {
        let (icg, lms) = synth(9);
        let det = PointDetector::with_strategy(
            FS,
            XSearch::GlobalMinimum,
            DelineationStrategy::WeightedWindowB,
        )
        .unwrap();
        let mut state = StrategyState::default();
        for w in lms.windows(2) {
            det.detect_with(&icg[w[0].r..w[1].r], &mut state).unwrap();
        }
        assert_eq!(state.rb_beats as usize, lms.len() - 1);
        // The EMA must have settled near the true PEP of these beats.
        let true_rb: f64 = lms
            .windows(2)
            .map(|w| (w[0].b - w[0].r) as f64 / FS)
            .sum::<f64>()
            / (lms.len() - 1) as f64;
        assert!(
            (state.rb_ema_s - true_rb).abs() < 0.025,
            "prior {} vs truth {}",
            state.rb_ema_s,
            true_rb
        );
    }

    #[test]
    fn b_rule_is_reported() {
        let (icg, lms) = synth(6);
        let det = detector();
        let mut rules = std::collections::HashSet::new();
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            rules.insert(format!("{:?}", det.detect(seg).unwrap().b_rule));
        }
        assert!(!rules.is_empty());
    }
}
