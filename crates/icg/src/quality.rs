//! Per-beat signal-quality assessment.
//!
//! The paper's future-work section points at robustness on larger
//! cohorts; the standard tool for that in ICG practice is a per-beat
//! signal-quality index (SQI): each beat is correlated against the
//! R-aligned ensemble template of the recording, and beats that do not
//! resemble the template (artifact hits, mis-triggers, ectopy) are
//! excluded before parameter aggregation. This composes with the
//! physiological interval gate in `cardiotouch`'s pipeline — the SQI
//! catches morphology-level corruption the interval bounds cannot see.

use crate::beat::BeatWindow;
use crate::ensemble::EnsembleBeat;
use crate::IcgError;
use cardiotouch_dsp::stats;

/// Correlation-based SQI of one beat against a template: Pearson r over
/// the common prefix, clamped to `[−1, 1]`, with 0 returned for
/// degenerate (constant) inputs.
///
/// # Errors
///
/// Returns [`IcgError::BeatTooShort`] when the common prefix is under 8
/// samples.
pub fn beat_sqi(beat: &[f64], template: &[f64]) -> Result<f64, IcgError> {
    let common = beat.len().min(template.len());
    if common < 8 {
        return Err(IcgError::BeatTooShort {
            len: common,
            min_len: 8,
        });
    }
    match stats::pearson(&beat[..common], &template[..common]) {
        Ok(r) => Ok(r.clamp(-1.0, 1.0)),
        // constant series → undefined correlation → no resemblance
        Err(_) => Ok(0.0),
    }
}

/// Per-beat quality assessment of a whole recording.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// `(window, sqi)` for every assessed beat, in order.
    pub beats: Vec<(BeatWindow, f64)>,
    /// The ensemble template the beats were scored against.
    pub template: Vec<f64>,
}

impl QualityReport {
    /// Scores every beat of `icg` against the recording's own ensemble
    /// template.
    ///
    /// # Errors
    ///
    /// Propagates ensemble-construction errors (empty window list,
    /// windows outside the record).
    pub fn assess(icg: &[f64], windows: &[BeatWindow]) -> Result<Self, IcgError> {
        let ensemble = EnsembleBeat::average(icg, windows)?;
        let template = ensemble.samples().to_vec();
        let mut beats = Vec::with_capacity(windows.len());
        for w in windows {
            let sqi = beat_sqi(w.slice(icg), &template)?;
            beats.push((*w, sqi));
        }
        Ok(Self { beats, template })
    }

    /// The windows whose SQI is at least `threshold`.
    #[must_use]
    pub fn accepted(&self, threshold: f64) -> Vec<BeatWindow> {
        self.beats
            .iter()
            .filter(|(_, sqi)| *sqi >= threshold)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Fraction of beats at or above `threshold` (0 for an empty report).
    #[must_use]
    pub fn acceptance_rate(&self, threshold: f64) -> f64 {
        if self.beats.is_empty() {
            return 0.0;
        }
        self.accepted(threshold).len() as f64 / self.beats.len() as f64
    }

    /// Median SQI of the recording (0 for an empty report).
    #[must_use]
    pub fn median_sqi(&self) -> f64 {
        let sqis: Vec<f64> = self.beats.iter().map(|(_, s)| *s).collect();
        stats::median(&sqis).unwrap_or(0.0)
    }
}

/// Conventional acceptance threshold: beats correlating under 0.8 with
/// the recording's own template are artifact-corrupted.
pub const DEFAULT_SQI_THRESHOLD: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;
    use cardiotouch_physio::heart::HeartModel;
    use cardiotouch_physio::icg::IcgMorphology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    fn synth() -> (Vec<f64>, Vec<BeatWindow>) {
        let beats = HeartModel::default()
            .schedule(20.0, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let n = (20.0 * FS) as usize;
        let icg = IcgMorphology::default().render_dzdt(&beats, n, FS);
        let r: Vec<usize> = beats
            .iter()
            .map(|b| (b.t_r * FS).round() as usize)
            .filter(|&i| i < n)
            .collect();
        let windows = crate::beat::segment_beats(&r, n, FS, 0.3, 2.0).unwrap();
        (icg, windows)
    }

    #[test]
    fn clean_beats_score_high() {
        let (icg, windows) = synth();
        let report = QualityReport::assess(&icg, &windows).unwrap();
        assert!(report.median_sqi() > 0.95, "median {}", report.median_sqi());
        assert!(report.acceptance_rate(DEFAULT_SQI_THRESHOLD) > 0.9);
    }

    #[test]
    fn corrupted_beat_is_rejected() {
        let (mut icg, windows) = synth();
        // wreck the 4th beat with a big burst
        let w = windows[3];
        for (i, v) in icg[w.r..w.end].iter_mut().enumerate() {
            *v += 3.0 * (i as f64 * 0.9).sin();
        }
        let report = QualityReport::assess(&icg, &windows).unwrap();
        let (wrecked, sqi) = report.beats[3];
        assert_eq!(wrecked, w);
        assert!(sqi < DEFAULT_SQI_THRESHOLD, "wrecked beat SQI {sqi}");
        // and it is excluded while most others survive
        let accepted = report.accepted(DEFAULT_SQI_THRESHOLD);
        assert!(!accepted.contains(&w));
        assert!(accepted.len() >= windows.len() - 3);
    }

    #[test]
    fn sqi_handles_degenerate_beats() {
        let template = vec![1.0, 2.0, 3.0, 2.0, 1.0, 0.0, 1.0, 2.0];
        let flat = vec![5.0; 8];
        assert_eq!(beat_sqi(&flat, &template).unwrap(), 0.0);
        assert!(beat_sqi(&template[..4], &template).is_err());
    }

    #[test]
    fn identical_beat_scores_one() {
        let t: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        assert!((beat_sqi(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = t.iter().map(|v| -v).collect();
        assert!((beat_sqi(&inv, &t).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceptance_rate_bounds() {
        let (icg, windows) = synth();
        let report = QualityReport::assess(&icg, &windows).unwrap();
        assert_eq!(report.acceptance_rate(-1.1), 1.0);
        assert_eq!(report.acceptance_rate(1.1), 0.0);
    }
}
