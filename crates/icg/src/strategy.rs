//! Selectable beat-delineation strategies.
//!
//! The paper's original B/C/X rules (`points.rs`, [`Classic`]) are one
//! point in a design space the ICG literature has kept exploring. Two
//! low-complexity follow-ups matter for this codebase because they were
//! built for exactly our streaming, beat-to-beat setting:
//!
//! * **ReBeatICG** (Pale et al., arXiv:2105.01525) — a real-time
//!   low-complexity delineator: C as the in-beat apex, B as the notch
//!   (last local minimum of the smoothed ICG before C, with
//!   zero-crossing and max-curvature fallbacks), X as the bounded
//!   post-C trough with onset refinement. No rule in the chain can
//!   fail to produce a point once a positive C wave exists, which is
//!   what makes it robust on degraded touch signals.
//! * **Weighted time-window B-point** (Miljković & Šekara,
//!   arXiv:2207.04490) — B is searched only inside a physiologically
//!   expected window, candidates (third-derivative minima and
//!   first-derivative zero crossings) are scored by a triangular
//!   weight centred on the expected B location, and the expectation
//!   itself adapts beat-over-beat (an EMA of accepted R→B intervals,
//!   seeded from the line-fit intercept on the first beat).
//!
//! [`DelineationStrategy::Hybrid`] pairs the ReBeatICG C/X rules with
//! the weighted-window B — measured best on the conformance corpus and
//! therefore the pipeline default.
//!
//! Every strategy is implemented in both engines — batch
//! ([`crate::points::PointDetector::detect_with`]) and O(hop) online
//! ([`crate::online::BeatDelineator`]) — operating on the identical
//! settled beat segment, so batch and stream remain bitwise identical
//! per strategy. The only cross-beat state is [`StrategyState`], which
//! the streaming engine snapshots and restores (core codec v2) so live
//! migration and crash recovery stay invisible.
//!
//! [`Classic`]: DelineationStrategy::Classic

/// Which delineation rule set the detector applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DelineationStrategy {
    /// The source paper's rules: 40–80 % line-fit B0 with derivative
    /// refinement, global-minimum X with third-derivative onset.
    Classic,
    /// ReBeatICG (arXiv:2105.01525): notch-minimum B with layered
    /// fallbacks, bounded-trough X — never rejects a beat that has a
    /// positive C wave.
    ReBeatIcg,
    /// Classic C/X with the weighted time-window B estimator
    /// (arXiv:2207.04490).
    WeightedWindowB,
    /// ReBeatICG C/X + weighted-window B — the measured-best pairing
    /// on the conformance corpus, hence the default.
    #[default]
    Hybrid,
}

impl DelineationStrategy {
    /// Every strategy, in a stable order (matrix legs iterate this).
    pub const ALL: [Self; 4] = [
        Self::Classic,
        Self::ReBeatIcg,
        Self::WeightedWindowB,
        Self::Hybrid,
    ];

    /// Stable lowercase identifier used by CLI flags, JSON snapshots
    /// and the seed corpus.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Classic => "classic",
            Self::ReBeatIcg => "rebeat",
            Self::WeightedWindowB => "weighted-b",
            Self::Hybrid => "hybrid",
        }
    }

    /// Parses the identifier produced by [`Self::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.name() == s)
    }

    /// Stable byte code for the serialized snapshot codec.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Classic => 0,
            Self::ReBeatIcg => 1,
            Self::WeightedWindowB => 2,
            Self::Hybrid => 3,
        }
    }

    /// Inverse of [`Self::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.code() == code)
    }

    /// `true` when the strategy's B point uses the adaptive weighted
    /// window (and therefore carries cross-beat [`StrategyState`]).
    #[must_use]
    pub fn uses_weighted_b(self) -> bool {
        matches!(self, Self::WeightedWindowB | Self::Hybrid)
    }
}

impl std::fmt::Display for DelineationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cross-beat delineation state: the weighted-window strategies adapt
/// their expected R→B interval as an EMA over accepted beats. `Classic`
/// and `ReBeatIcg` never read or write it.
///
/// The state advances only on *successful* detections, in beat order —
/// the batch pipeline and the streaming delineator therefore walk the
/// identical state trajectory over the identical segment sequence,
/// which is what keeps batch==stream bitwise per strategy. The
/// streaming engine serializes this through the core snapshot codec
/// (v2) so migration/checkpoint round-trips are invisible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrategyState {
    /// EMA of the accepted R→B interval, seconds. Meaningless until
    /// `rb_beats > 0`.
    pub rb_ema_s: f64,
    /// Number of accepted beats folded into the EMA.
    pub rb_beats: u64,
}

/// EMA weight of the newest accepted R→B interval (matches the online
/// SQI template's settling behaviour: ~4 beats to converge).
pub const RB_EMA_LAMBDA: f64 = 0.25;

impl StrategyState {
    /// Folds one accepted R→B interval into the prior.
    pub fn accept_rb(&mut self, rb_s: f64) {
        self.rb_ema_s = if self.rb_beats == 0 {
            rb_s
        } else {
            RB_EMA_LAMBDA * rb_s + (1.0 - RB_EMA_LAMBDA) * self.rb_ema_s
        };
        self.rb_beats += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in DelineationStrategy::ALL {
            assert_eq!(DelineationStrategy::parse(s.name()), Some(s));
            assert_eq!(DelineationStrategy::from_code(s.code()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(DelineationStrategy::parse("nope"), None);
        assert_eq!(DelineationStrategy::from_code(255), None);
    }

    #[test]
    fn state_ema_converges_toward_accepted_intervals() {
        let mut st = StrategyState::default();
        st.accept_rb(0.10);
        assert_eq!(st.rb_ema_s, 0.10);
        for _ in 0..40 {
            st.accept_rb(0.14);
        }
        assert!((st.rb_ema_s - 0.14).abs() < 1e-6);
        assert_eq!(st.rb_beats, 41);
    }
}
