//! Robust smoothing of streamed beat parameters.
//!
//! The raw beat-to-beat LVET/PEP/HR series carries detection jitter of a
//! few samples per beat; a physician display (or the BLE uplink, to save
//! even more airtime) wants a smoothed trend that individual bad beats
//! cannot yank around. [`ParameterTrend`] combines the two standard
//! ingredients: a rolling-median pre-filter (kills isolated outliers
//! outright) followed by an exponentially weighted moving average
//! (smooths the remainder with bounded memory — it runs in O(window) per
//! beat on the MCU).

use crate::IcgError;
use std::collections::VecDeque;

/// Smooths a beat-parameter stream for display.
///
/// # Example
///
/// ```
/// use cardiotouch_icg::trending::ParameterTrend;
///
/// # fn main() -> Result<(), cardiotouch_icg::IcgError> {
/// let mut trend = ParameterTrend::display_default();
/// for _ in 0..10 {
///     trend.ingest(300.0)?;
/// }
/// // a single wild beat barely moves the display value
/// let after_outlier = trend.ingest(600.0)?;
/// assert!((after_outlier - 300.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterTrend {
    median_window: usize,
    alpha: f64,
    recent: VecDeque<f64>,
    ewma: Option<f64>,
    beats_seen: usize,
}

impl ParameterTrend {
    /// Creates a smoother with a rolling-median pre-filter of
    /// `median_window` beats (odd; 1 disables it) and EWMA coefficient
    /// `alpha` in `(0, 1]` (1 disables smoothing).
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for an even/zero window or
    /// an out-of-range `alpha`.
    pub fn new(median_window: usize, alpha: f64) -> Result<Self, IcgError> {
        if median_window == 0 || median_window % 2 == 0 {
            return Err(IcgError::InvalidParameter {
                name: "median_window",
                value: median_window as f64,
                constraint: "must be odd and positive",
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(IcgError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Self {
            median_window,
            alpha,
            recent: VecDeque::with_capacity(median_window),
            ewma: None,
            beats_seen: 0,
        })
    }

    /// The conventional display smoother: 5-beat median, α = 0.2
    /// (≈ 10-beat effective memory).
    #[must_use]
    pub fn display_default() -> Self {
        Self::new(5, 0.2).expect("constants are valid")
    }

    /// Number of beats ingested so far.
    #[must_use]
    pub fn beats_seen(&self) -> usize {
        self.beats_seen
    }

    /// Ingests one beat's value and returns the current trend estimate.
    ///
    /// # Errors
    ///
    /// Returns [`IcgError::InvalidParameter`] for a non-finite value.
    pub fn ingest(&mut self, value: f64) -> Result<f64, IcgError> {
        if !value.is_finite() {
            return Err(IcgError::InvalidParameter {
                name: "value",
                value,
                constraint: "must be finite",
            });
        }
        self.beats_seen += 1;
        if self.recent.len() == self.median_window {
            self.recent.pop_front();
        }
        self.recent.push_back(value);
        let mut sorted: Vec<f64> = self.recent.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let med = sorted[sorted.len() / 2];
        let next = match self.ewma {
            Some(prev) => prev + self.alpha * (med - prev),
            None => med,
        };
        self.ewma = Some(next);
        Ok(next)
    }

    /// The current trend estimate, if any beat has been ingested.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_input_is_identity() {
        let mut t = ParameterTrend::display_default();
        for _ in 0..20 {
            assert!((t.ingest(300.0).unwrap() - 300.0).abs() < 1e-12);
        }
        assert_eq!(t.value(), Some(300.0));
        assert_eq!(t.beats_seen(), 20);
    }

    #[test]
    fn single_outlier_is_absorbed() {
        let mut t = ParameterTrend::display_default();
        for _ in 0..10 {
            t.ingest(300.0).unwrap();
        }
        // one wild beat (double the LVET) must barely move the trend
        let after = t.ingest(600.0).unwrap();
        assert!((after - 300.0).abs() < 1.0, "trend jumped to {after}");
        // and recovery is immediate
        let next = t.ingest(300.0).unwrap();
        assert!((next - 300.0).abs() < 1.0, "{next}");
    }

    #[test]
    fn genuine_level_shift_is_tracked() {
        let mut t = ParameterTrend::display_default();
        for _ in 0..10 {
            t.ingest(300.0).unwrap();
        }
        let mut last = 300.0;
        for _ in 0..30 {
            last = t.ingest(250.0).unwrap();
        }
        assert!((last - 250.0).abs() < 2.0, "converged to {last}");
    }

    #[test]
    fn ewma_alpha_controls_speed() {
        let run = |alpha: f64| -> f64 {
            let mut t = ParameterTrend::new(1, alpha).unwrap();
            t.ingest(0.0).unwrap();
            let mut v = 0.0;
            for _ in 0..5 {
                v = t.ingest(100.0).unwrap();
            }
            v
        };
        assert!(run(0.5) > run(0.1));
        assert!((run(1.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn median_window_one_disables_prefilter() {
        let mut t = ParameterTrend::new(1, 1.0).unwrap();
        assert_eq!(t.ingest(5.0).unwrap(), 5.0);
        assert_eq!(t.ingest(7.0).unwrap(), 7.0);
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(ParameterTrend::new(0, 0.2).is_err());
        assert!(ParameterTrend::new(4, 0.2).is_err());
        assert!(ParameterTrend::new(5, 0.0).is_err());
        assert!(ParameterTrend::new(5, 1.5).is_err());
        let mut t = ParameterTrend::display_default();
        assert!(t.ingest(f64::NAN).is_err());
    }
}
