//! Per-session frame reassembly: bounded out-of-order windows, duplicate
//! suppression, and NaN gap fill for declared-lost frames.
//!
//! Frames arrive from the decoder in wire order, tagged `(session, seq)`.
//! Each session tracks the next expected sequence number. In-order frames
//! deliver immediately through a reused scratch buffer (alloc-free once
//! warm); frames up to [`REORDER_WINDOW`] ahead are parked and delivered
//! when the gap closes. A jump beyond the window declares the missing
//! frames lost: each is delivered as a run of NaN samples (sized like the
//! last good frame), so downstream the signal-degradation ladder treats
//! wire loss exactly like electrode contact loss. Frames from the past
//! half of the sequence space are stale duplicates and are dropped.
//!
//! Delivery order is a pure function of frame arrival order, which is
//! what makes ingest-log replay bitwise-identical to the live run.

use std::collections::BTreeMap;

use crate::frame::{copy_payload, FrameView};

/// How many frames ahead of the next expected sequence number a session
/// will park before declaring the gap a loss.
pub const REORDER_WINDOW: u16 = 8;

/// Running totals of an [`Assembler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Frames delivered to the sink (in-order + reordered + NaN fills).
    pub delivered: u64,
    /// Frames that arrived ahead of sequence and were parked.
    pub reordered: u64,
    /// Frames lost: declared-lost gap members, stale arrivals from the
    /// past, and duplicates of parked frames.
    pub dropped: u64,
    /// NaN samples synthesized to fill declared-lost frames.
    pub filled_samples: u64,
}

#[derive(Debug)]
struct SessionAsm {
    started: bool,
    next: u16,
    /// Samples in the most recent delivered frame — sizes NaN fills.
    last_n: usize,
    /// Parked payloads: slot `d` holds sequence `next + 1 + d`.
    window: Vec<Option<Vec<u8>>>,
}

impl SessionAsm {
    fn new() -> Self {
        Self {
            started: false,
            next: 0,
            last_n: 0,
            window: (0..REORDER_WINDOW).map(|_| None).collect(),
        }
    }

    /// Shifts the window down one sequence number.
    fn rotate(&mut self) {
        self.window.rotate_left(1);
        let last = self.window.len() - 1;
        self.window[last] = None;
    }
}

/// Serializable per-session reassembly state: what a checkpoint needs
/// to resume a session's window exactly where the live run left it.
/// Restoring this alongside the engine snapshot makes at-least-once
/// re-feed safe — any re-sent pre-watermark frame lands behind `next`
/// (or duplicates a parked slot) and is dropped, so replay + re-feed
/// applies every frame exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResume {
    /// Whether the session has locked its first sequence number.
    pub started: bool,
    /// Next expected sequence number.
    pub next_seq: u16,
    /// Samples in the last delivered frame (sizes NaN fills).
    pub last_n: usize,
    /// Parked payloads, slot `d` holding sequence `next + 1 + d`.
    pub parked: Vec<Option<Vec<u8>>>,
}

/// Multi-session reassembler. See the module docs for the policy.
#[derive(Debug, Default)]
pub struct Assembler {
    sessions: BTreeMap<u32, SessionAsm>,
    scratch_ecg: Vec<f64>,
    scratch_z: Vec<f64>,
    stats: AssemblyStats,
}

impl Assembler {
    /// Creates an empty reassembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts one decoded frame, invoking `sink(session, ecg, z)` zero
    /// or more times: once per frame that becomes deliverable (the
    /// frame itself, parked successors it releases, or NaN fills for
    /// frames it declares lost).
    pub fn accept<F>(&mut self, frame: &FrameView<'_>, mut sink: F)
    where
        F: FnMut(u32, &[f64], &[f64]),
    {
        let session = frame.session();
        let seq = frame.seq();
        let s = self.sessions.entry(session).or_insert_with(SessionAsm::new);
        if !s.started {
            s.started = true;
            s.next = seq;
        }
        let dist = seq.wrapping_sub(s.next);
        if dist == 0 {
            deliver(
                &mut self.stats,
                s,
                session,
                frame.payload(),
                &mut self.scratch_ecg,
                &mut self.scratch_z,
                &mut sink,
            );
            s.next = s.next.wrapping_add(1);
            drain_window(
                &mut self.stats,
                s,
                session,
                &mut self.scratch_ecg,
                &mut self.scratch_z,
                &mut sink,
            );
        } else if dist <= REORDER_WINDOW {
            let slot = usize::from(dist - 1);
            if s.window[slot].is_some() {
                self.stats.dropped += 1; // duplicate of a parked frame
            } else {
                s.window[slot] = Some(frame.payload().to_vec());
                self.stats.reordered += 1;
            }
        } else if dist < 0x8000 {
            // Forward jump beyond the window: everything between `next`
            // and `seq` that is not parked is lost.
            while s.next != seq {
                if let Some(payload) = s.window[0].take() {
                    deliver(
                        &mut self.stats,
                        s,
                        session,
                        &payload,
                        &mut self.scratch_ecg,
                        &mut self.scratch_z,
                        &mut sink,
                    );
                } else {
                    self.stats.dropped += 1;
                    nan_fill(
                        &mut self.stats,
                        s,
                        session,
                        &mut self.scratch_ecg,
                        &mut self.scratch_z,
                        &mut sink,
                    );
                }
                s.rotate();
                s.next = s.next.wrapping_add(1);
            }
            deliver(
                &mut self.stats,
                s,
                session,
                frame.payload(),
                &mut self.scratch_ecg,
                &mut self.scratch_z,
                &mut sink,
            );
            s.next = s.next.wrapping_add(1);
            drain_window(
                &mut self.stats,
                s,
                session,
                &mut self.scratch_ecg,
                &mut self.scratch_z,
                &mut sink,
            );
        } else {
            // Behind `next`: a stale retransmit or duplicate.
            self.stats.dropped += 1;
        }
    }

    /// Reassembly totals so far.
    #[must_use]
    pub fn stats(&self) -> AssemblyStats {
        self.stats
    }

    /// Sessions seen so far.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Combined capacity of the sample scratch buffers — stable in
    /// steady state, checked by the bench's alloc-free assertion.
    #[must_use]
    pub fn scratch_capacity(&self) -> usize {
        self.scratch_ecg.capacity() + self.scratch_z.capacity()
    }

    /// Exports every session's resume state, ordered by session id —
    /// the reassembly half of a checkpoint.
    #[must_use]
    pub fn export_sessions(&self) -> Vec<(u32, SessionResume)> {
        self.sessions
            .iter()
            .map(|(&id, s)| {
                (
                    id,
                    SessionResume {
                        started: s.started,
                        next_seq: s.next,
                        last_n: s.last_n,
                        parked: s.window.clone(),
                    },
                )
            })
            .collect()
    }

    /// Installs (or overwrites) one session's resume state. The parked
    /// window is normalized to [`REORDER_WINDOW`] slots.
    pub fn resume_session(&mut self, session: u32, state: &SessionResume) {
        let mut window: Vec<Option<Vec<u8>>> = state.parked.clone();
        window.resize_with(usize::from(REORDER_WINDOW), || None);
        window.truncate(usize::from(REORDER_WINDOW));
        self.sessions.insert(
            session,
            SessionAsm {
                started: state.started,
                next: state.next_seq,
                last_n: state.last_n,
                window,
            },
        );
    }
}

fn deliver<F>(
    stats: &mut AssemblyStats,
    s: &mut SessionAsm,
    session: u32,
    payload: &[u8],
    ecg: &mut Vec<f64>,
    z: &mut Vec<f64>,
    sink: &mut F,
) where
    F: FnMut(u32, &[f64], &[f64]),
{
    ecg.clear();
    z.clear();
    copy_payload(payload, ecg, z);
    s.last_n = ecg.len();
    stats.delivered += 1;
    sink(session, ecg, z);
}

/// Delivers one lost frame as NaN samples sized like the last good one.
/// Before any frame has been delivered the width is unknown and the
/// loss surfaces only in the `dropped` counter.
fn nan_fill<F>(
    stats: &mut AssemblyStats,
    s: &SessionAsm,
    session: u32,
    ecg: &mut Vec<f64>,
    z: &mut Vec<f64>,
    sink: &mut F,
) where
    F: FnMut(u32, &[f64], &[f64]),
{
    if s.last_n == 0 {
        return;
    }
    ecg.clear();
    z.clear();
    ecg.resize(s.last_n, f64::NAN);
    z.resize(s.last_n, f64::NAN);
    stats.filled_samples += s.last_n as u64;
    sink(session, ecg, z);
}

/// Releases consecutively parked frames now that `next` advanced.
fn drain_window<F>(
    stats: &mut AssemblyStats,
    s: &mut SessionAsm,
    session: u32,
    ecg: &mut Vec<f64>,
    z: &mut Vec<f64>,
    sink: &mut F,
) where
    F: FnMut(u32, &[f64], &[f64]),
{
    while let Some(payload) = s.window[0].take() {
        s.rotate();
        deliver(stats, s, session, &payload, ecg, z, sink);
        s.next = s.next.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, FrameView};

    /// Encodes a one-frame wire with a recognisable payload and parses
    /// it back into an owned buffer the test keeps alive.
    fn frame_bytes(session: u32, seq: u16, n: usize) -> Vec<u8> {
        let ecg: Vec<f64> = (0..n).map(|i| f64::from(seq) * 1000.0 + i as f64).collect();
        let z: Vec<f64> = (0..n)
            .map(|i| 400.0 + f64::from(seq) + i as f64 * 0.25)
            .collect();
        let mut out = Vec::new();
        encode_frame(session, seq, &ecg, &z, &mut out).unwrap();
        out
    }

    fn accept(asm: &mut Assembler, bytes: &[u8], out: &mut Vec<(u32, Vec<f64>)>) {
        let (frame, _) = FrameView::parse(bytes).unwrap();
        asm.accept(&frame, |sess, ecg, _z| out.push((sess, ecg.to_vec())));
    }

    #[test]
    fn in_order_frames_flow_straight_through() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        for seq in 0..5u16 {
            accept(&mut asm, &frame_bytes(1, seq, 4), &mut got);
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[3].1[0], 3000.0);
        let st = asm.stats();
        assert_eq!((st.delivered, st.reordered, st.dropped), (5, 0, 0));
    }

    #[test]
    fn swap_within_window_is_reordered_back() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        accept(&mut asm, &frame_bytes(1, 0, 4), &mut got);
        accept(&mut asm, &frame_bytes(1, 2, 4), &mut got); // ahead: parked
        assert_eq!(got.len(), 1);
        accept(&mut asm, &frame_bytes(1, 1, 4), &mut got); // closes the gap
        assert_eq!(got.len(), 3);
        let delivered: Vec<f64> = got.iter().map(|(_, e)| e[0]).collect();
        assert_eq!(delivered, vec![0.0, 1000.0, 2000.0]);
        let st = asm.stats();
        assert_eq!((st.delivered, st.reordered, st.dropped), (3, 1, 0));
    }

    #[test]
    fn gap_beyond_window_nan_fills_and_fast_forwards() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        accept(&mut asm, &frame_bytes(1, 0, 4), &mut got);
        let jump = 1 + REORDER_WINDOW + 3; // beyond the window
        accept(&mut asm, &frame_bytes(1, jump, 4), &mut got);
        // 1 good + (jump-1) NaN fills + the jumped-to frame
        assert_eq!(got.len(), 1 + usize::from(jump - 1) + 1);
        assert!(got[1].1[0].is_nan());
        let st = asm.stats();
        assert_eq!(st.dropped, u64::from(jump) - 1);
        assert_eq!(st.filled_samples, (u64::from(jump) - 1) * 4);
    }

    #[test]
    fn stale_and_duplicate_frames_drop() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        accept(&mut asm, &frame_bytes(1, 10, 4), &mut got);
        accept(&mut asm, &frame_bytes(1, 10, 4), &mut got); // stale (next is 11)
        accept(&mut asm, &frame_bytes(1, 13, 4), &mut got); // parked
        accept(&mut asm, &frame_bytes(1, 13, 4), &mut got); // duplicate of parked
        assert_eq!(got.len(), 1);
        assert_eq!(asm.stats().dropped, 2);
    }

    #[test]
    fn sequence_wrap_is_seamless() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        for seq in [u16::MAX - 1, u16::MAX, 0, 1] {
            accept(&mut asm, &frame_bytes(1, seq, 2), &mut got);
        }
        assert_eq!(got.len(), 4);
        let st = asm.stats();
        assert_eq!((st.delivered, st.reordered, st.dropped), (4, 0, 0));
    }

    #[test]
    fn resumed_session_dedups_refed_prefix_exactly() {
        // Live run: frames 0..6 with 4 parked out of order.
        let frames: Vec<Vec<u8>> = vec![
            frame_bytes(1, 0, 4),
            frame_bytes(1, 1, 4),
            frame_bytes(1, 2, 4),
            frame_bytes(1, 4, 4), // parked
            frame_bytes(1, 3, 4), // closes the gap, releases 4
            frame_bytes(1, 6, 4), // parked at the cut point
        ];
        let mut live = Assembler::new();
        let mut live_out = Vec::new();
        for fr in &frames {
            accept(&mut live, fr, &mut live_out);
        }
        let exported = live.export_sessions();
        assert_eq!(exported.len(), 1);

        // Resume a fresh assembler from the exported state, then
        // re-feed the ENTIRE original frame sequence plus the true
        // continuation — at-least-once delivery.
        let mut resumed = Assembler::new();
        resumed.resume_session(exported[0].0, &exported[0].1);
        let mut resumed_out = Vec::new();
        for fr in &frames {
            accept(&mut resumed, fr, &mut resumed_out);
        }
        assert!(
            resumed_out.is_empty(),
            "every re-fed pre-watermark frame must drop as stale/duplicate"
        );
        // Continuation delivers 5, releases parked 6, then 7 flows.
        accept(&mut resumed, &frame_bytes(1, 5, 4), &mut resumed_out);
        accept(&mut resumed, &frame_bytes(1, 7, 4), &mut resumed_out);
        let delivered: Vec<f64> = resumed_out.iter().map(|(_, e)| e[0]).collect();
        assert_eq!(delivered, vec![5000.0, 6000.0, 7000.0]);
    }

    #[test]
    fn sessions_are_independent() {
        let mut asm = Assembler::new();
        let mut got = Vec::new();
        accept(&mut asm, &frame_bytes(1, 0, 2), &mut got);
        accept(&mut asm, &frame_bytes(2, 7, 2), &mut got); // independent start seq
        accept(&mut asm, &frame_bytes(1, 1, 2), &mut got);
        accept(&mut asm, &frame_bytes(2, 8, 2), &mut got);
        assert_eq!(got.len(), 4);
        assert_eq!(asm.session_count(), 2);
        assert_eq!(asm.stats().dropped, 0);
    }
}
