//! Durable checkpoint store: per-session engine snapshots plus an
//! ingest-log watermark, persisted with the same CRC-chained entry
//! discipline as [`crate::log`].
//!
//! # Layout
//!
//! ```text
//! [0..8)          magic  b"CTCKPT\x01\n"
//! then per entry:
//!   u32 LE        payload length in bytes
//!   u16 LE        chain CRC: crc16(prev_chain LE bytes || payload)
//!   [u8; length]  one serialized [`Checkpoint`]
//! ```
//!
//! The chain starts at `crc16(magic)`, exactly like the ingest log, so
//! a crash-cut store yields the longest valid prefix of checkpoints and
//! [`recover_latest`] returns the newest one in it. A checkpoint is
//! *durable* once the following append begins; callers compact the
//! ingest log only to the previous durable checkpoint, which keeps the
//! fall-back-one-checkpoint recovery path replayable (see
//! [`crate::segment`]).
//!
//! # Checkpoint payload (all little-endian)
//!
//! `u16 version` · watermark (`u64 segment`, `u64 offset`, `u16 chain`,
//! `u64 frames`) · `u32 n_sessions` · per session: `u32 id`,
//! `u8 started`, `u16 next_seq`, `u32 last_n`, `u16 n_parked_slots`,
//! per slot `u8 present` (+ `u32 len` + bytes), `u32 snapshot_len` +
//! snapshot bytes. Snapshot bytes are opaque here — the engine's own
//! versioned codec (`BeatStreamSnapshot`) validates them on restore.

use crate::assembler::SessionResume;
use crate::frame::{crc16, crc16_update};
use crate::log::LogError;
use crate::segment::LogPosition;

/// Leading magic of a checkpoint store.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CTCKPT\x01\n";

/// Serialization version of the checkpoint payload.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Sanity ceiling on one checkpoint entry (guards length-prefix
/// corruption from allocating absurd buffers on read).
pub const MAX_CHECKPOINT_ENTRY: usize = 256 * 1024 * 1024;

/// One wire session's durable state: reassembly resume point plus the
/// serialized engine snapshot taken at the watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// Wire session identifier.
    pub session: u32,
    /// Reassembly window state at the watermark.
    pub resume: SessionResume,
    /// Serialized `BeatStreamSnapshot` bytes; empty when the session
    /// had reassembly state but no engine stream yet (frames parked
    /// before the first delivery).
    pub snapshot: Vec<u8>,
}

/// One durable recovery point: every session's state at a single
/// ingest-log watermark. Restoring the sessions and replaying the log
/// suffix past the watermark reproduces the uninterrupted run bitwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Ingest-log position every snapshot is consistent with.
    pub watermark: LogPosition,
    /// Per-session durable state, ordered by session id.
    pub sessions: Vec<SessionCheckpoint>,
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Serializes one checkpoint payload (no framing, no CRC — the store
/// adds those).
#[must_use]
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_size_hint(ckpt));
    encode_checkpoint_into(ckpt, &mut buf);
    buf
}

/// Conservative serialized-size estimate — session snapshots dominate
/// (tens of KB each), so sizing buffers up front avoids memcpying the
/// payload again through doubling reallocs.
fn encoded_size_hint(ckpt: &Checkpoint) -> usize {
    32 + ckpt
        .sessions
        .iter()
        .map(|s| {
            32 + s.snapshot.len()
                + s.resume
                    .parked
                    .iter()
                    .map(|p| 5 + p.as_ref().map_or(0, Vec::len))
                    .sum::<usize>()
        })
        .sum::<usize>()
}

/// Serializes one checkpoint payload onto the end of `buf` — the
/// in-place worker behind [`encode_checkpoint`], used directly by the
/// store to avoid staging multi-hundred-KB entries in a temporary.
pub fn encode_checkpoint_into(ckpt: &Checkpoint, buf: &mut Vec<u8>) {
    buf.reserve(encoded_size_hint(ckpt));
    put_u16(buf, CHECKPOINT_VERSION);
    put_u64(buf, ckpt.watermark.segment);
    put_u64(buf, ckpt.watermark.offset as u64);
    put_u16(buf, ckpt.watermark.chain);
    put_u64(buf, ckpt.watermark.frames);
    put_u32(
        buf,
        u32::try_from(ckpt.sessions.len()).expect("session count fits u32"),
    );
    for s in &ckpt.sessions {
        put_u32(buf, s.session);
        buf.push(u8::from(s.resume.started));
        put_u16(buf, s.resume.next_seq);
        put_u32(
            buf,
            u32::try_from(s.resume.last_n).expect("frame width fits u32"),
        );
        put_u16(
            buf,
            u16::try_from(s.resume.parked.len()).expect("window fits u16"),
        );
        for slot in &s.resume.parked {
            match slot {
                Some(payload) => {
                    buf.push(1);
                    put_u32(buf, u32::try_from(payload.len()).expect("payload fits u32"));
                    buf.extend_from_slice(payload);
                }
                None => buf.push(0),
            }
        }
        put_u32(
            buf,
            u32::try_from(s.snapshot.len()).expect("snapshot fits u32"),
        );
        buf.extend_from_slice(&s.snapshot);
    }
}

/// Deserializes one checkpoint payload; `None` for a malformed or
/// version-mismatched buffer.
#[must_use]
pub fn decode_checkpoint(data: &[u8]) -> Option<Checkpoint> {
    let mut c = Cursor { data, pos: 0 };
    if c.u16()? != CHECKPOINT_VERSION {
        return None;
    }
    let watermark = LogPosition {
        segment: c.u64()?,
        offset: usize::try_from(c.u64()?).ok()?,
        chain: c.u16()?,
        frames: c.u64()?,
    };
    let n_sessions = c.u32()? as usize;
    let mut sessions = Vec::with_capacity(n_sessions.min(4096));
    for _ in 0..n_sessions {
        let session = c.u32()?;
        let started = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let next_seq = c.u16()?;
        let last_n = usize::try_from(c.u32()?).ok()?;
        let n_slots = c.u16()? as usize;
        let mut parked = Vec::with_capacity(n_slots.min(64));
        for _ in 0..n_slots {
            match c.u8()? {
                0 => parked.push(None),
                1 => {
                    let len = c.u32()? as usize;
                    parked.push(Some(c.take(len)?.to_vec()));
                }
                _ => return None,
            }
        }
        let snap_len = c.u32()? as usize;
        let snapshot = c.take(snap_len)?.to_vec();
        sessions.push(SessionCheckpoint {
            session,
            resume: SessionResume {
                started,
                next_seq,
                last_n,
                parked,
            },
            snapshot,
        });
    }
    if c.pos != data.len() {
        return None;
    }
    Some(Checkpoint {
        watermark,
        sessions,
    })
}

/// In-memory append-only checkpoint store writer.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    buf: Vec<u8>,
    chain: u16,
    entries: u64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CheckpointStore {
    /// Creates an empty store (header written).
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: CHECKPOINT_MAGIC.to_vec(),
            chain: crc16(&CHECKPOINT_MAGIC),
            entries: 0,
        }
    }

    /// Appends one checkpoint; returns the serialized entry size.
    ///
    /// The payload is encoded straight into the store buffer (entries
    /// run to hundreds of KB for a full fleet, so a staging `Vec`
    /// would cost an extra allocation plus copy on the serving path);
    /// the length/CRC header is patched in afterwards.
    pub fn append(&mut self, ckpt: &Checkpoint) -> usize {
        let header_at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 6]);
        let payload_at = self.buf.len();
        encode_checkpoint_into(ckpt, &mut self.buf);
        let payload_len = self.buf.len() - payload_at;
        let next = crc16_update(
            crc16_update(0xFFFF, &self.chain.to_le_bytes()),
            &self.buf[payload_at..],
        );
        let len_le = u32::try_from(payload_len)
            .expect("checkpoint length fits u32")
            .to_le_bytes();
        self.buf[header_at..header_at + 4].copy_from_slice(&len_le);
        self.buf[header_at + 4..header_at + 6].copy_from_slice(&next.to_le_bytes());
        self.chain = next;
        self.entries += 1;
        payload_len + 6
    }

    /// Checkpoints appended so far.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The serialized store, header included.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Serialized size so far.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Reopens a (possibly crash-cut) serialized store for further
    /// appends: keeps the longest valid prefix, discards the cut tail,
    /// and continues the CRC chain from the last intact entry — so a
    /// recovered process appends to the store it crashed with and older
    /// checkpoints stay recoverable. Also returns the newest decodable
    /// checkpoint in that prefix, exactly as [`recover_latest`] would.
    /// Empty input reopens as a fresh store.
    ///
    /// # Errors
    ///
    /// * [`LogError::BadHeader`] when non-empty input lacks the magic.
    pub fn from_valid_prefix(data: &[u8]) -> Result<(Self, Option<RecoveredCheckpoint>), LogError> {
        if data.is_empty() {
            return Ok((Self::new(), None));
        }
        let newest = recover_latest(data)?;
        let mut store = Self::new();
        let mut pos = CHECKPOINT_MAGIC.len();
        loop {
            let rest = &data[pos..];
            if rest.len() < 6 {
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_CHECKPOINT_ENTRY || rest.len() < 6 + len {
                break;
            }
            let stored = u16::from_le_bytes(rest[4..6].try_into().expect("2 bytes"));
            let payload = &rest[6..6 + len];
            let computed = crc16_update(crc16_update(0xFFFF, &store.chain.to_le_bytes()), payload);
            if stored != computed {
                break;
            }
            store.buf.extend_from_slice(&rest[..6 + len]);
            store.chain = stored;
            store.entries += 1;
            pos += 6 + len;
        }
        Ok((store, newest))
    }
}

/// The newest checkpoint recovered from a (possibly crash-cut) store.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredCheckpoint {
    /// The newest decodable checkpoint in the valid prefix.
    pub checkpoint: Checkpoint,
    /// Zero-based index of that entry in the store.
    pub index: u64,
    /// Total valid entries read (`index + 1`).
    pub entries: u64,
}

/// Walks a serialized store front to back, validating the CRC chain,
/// and returns the newest decodable checkpoint in the longest valid
/// prefix — the crash-recovery entry point. An interrupted final append
/// simply falls back one checkpoint. `Ok(None)` for an empty store
/// (header only) or empty input.
///
/// # Errors
///
/// * [`LogError::BadHeader`] when non-empty input lacks the magic.
pub fn recover_latest(data: &[u8]) -> Result<Option<RecoveredCheckpoint>, LogError> {
    if data.is_empty() {
        return Ok(None);
    }
    if data.len() < CHECKPOINT_MAGIC.len() || data[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(LogError::BadHeader);
    }
    let mut pos = CHECKPOINT_MAGIC.len();
    let mut chain = crc16(&CHECKPOINT_MAGIC);
    let mut newest: Option<RecoveredCheckpoint> = None;
    let mut index = 0u64;
    while pos < data.len() {
        let rest = &data[pos..];
        if rest.len() < 6 {
            break; // crash-cut tail
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_CHECKPOINT_ENTRY {
            break;
        }
        let stored = u16::from_le_bytes(rest[4..6].try_into().expect("2 bytes"));
        if rest.len() < 6 + len {
            break; // crash-cut tail
        }
        let payload = &rest[6..6 + len];
        let computed = crc16_update(crc16_update(0xFFFF, &chain.to_le_bytes()), payload);
        if stored != computed {
            break; // corruption: trust only the prefix
        }
        chain = stored;
        pos += 6 + len;
        if let Some(checkpoint) = decode_checkpoint(payload) {
            newest = Some(RecoveredCheckpoint {
                checkpoint,
                index,
                entries: index + 1,
            });
        }
        index += 1;
    }
    Ok(newest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(n: u32) -> Checkpoint {
        Checkpoint {
            watermark: LogPosition {
                segment: u64::from(n),
                offset: 100 + n as usize,
                chain: 0xBEE0 + n as u16,
                frames: u64::from(n) * 7,
            },
            sessions: (0..n)
                .map(|i| SessionCheckpoint {
                    session: i,
                    resume: SessionResume {
                        started: i % 2 == 0,
                        next_seq: (i * 31) as u16,
                        last_n: 125,
                        parked: vec![None, Some(vec![1, 2, 3, i as u8]), None],
                    },
                    snapshot: vec![0xAB; 16 + i as usize],
                })
                .collect(),
        }
    }

    #[test]
    fn payload_round_trips() {
        for n in [0u32, 1, 5] {
            let ckpt = sample_checkpoint(n);
            let bytes = encode_checkpoint(&ckpt);
            assert_eq!(decode_checkpoint(&bytes), Some(ckpt));
        }
        assert_eq!(decode_checkpoint(&[]), None);
        assert_eq!(decode_checkpoint(&[9, 9]), None);
    }

    #[test]
    fn store_recovers_the_newest_entry() {
        let mut store = CheckpointStore::new();
        for n in 1..=4 {
            store.append(&sample_checkpoint(n));
        }
        let got = recover_latest(store.as_bytes()).unwrap().unwrap();
        assert_eq!(got.index, 3);
        assert_eq!(got.entries, 4);
        assert_eq!(got.checkpoint, sample_checkpoint(4));
    }

    #[test]
    fn crash_cut_falls_back_exactly_one_checkpoint() {
        let mut store = CheckpointStore::new();
        store.append(&sample_checkpoint(1));
        store.append(&sample_checkpoint(2));
        let before_last = store.byte_len();
        store.append(&sample_checkpoint(3));
        // Cut at every byte inside the final append: recovery must
        // yield checkpoint 2 (cut mid-entry) or 3 (cut at the end).
        let bytes = store.as_bytes();
        for cut in before_last..bytes.len() {
            let got = recover_latest(&bytes[..cut]).unwrap().unwrap();
            assert_eq!(got.checkpoint, sample_checkpoint(2), "cut at {cut}");
        }
        let full = recover_latest(bytes).unwrap().unwrap();
        assert_eq!(full.checkpoint, sample_checkpoint(3));
    }

    #[test]
    fn empty_and_garbage_inputs() {
        assert_eq!(recover_latest(&[]).unwrap(), None);
        assert_eq!(
            recover_latest(CheckpointStore::new().as_bytes()).unwrap(),
            None
        );
        assert!(matches!(
            recover_latest(b"definitely not a store"),
            Err(LogError::BadHeader)
        ));
    }

    #[test]
    fn reopened_store_continues_the_chain_past_a_cut() {
        let mut store = CheckpointStore::new();
        store.append(&sample_checkpoint(1));
        store.append(&sample_checkpoint(2));
        let mut bytes = store.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 4); // cut inside the last entry
        let (mut reopened, newest) = CheckpointStore::from_valid_prefix(&bytes).unwrap();
        assert_eq!(reopened.entries(), 1);
        assert_eq!(newest.unwrap().checkpoint, sample_checkpoint(1));
        reopened.append(&sample_checkpoint(3));
        let got = recover_latest(reopened.as_bytes()).unwrap().unwrap();
        assert_eq!(got.checkpoint, sample_checkpoint(3));
        assert_eq!(got.entries, 2);
    }

    #[test]
    fn corruption_truncates_to_the_valid_prefix() {
        let mut store = CheckpointStore::new();
        store.append(&sample_checkpoint(1));
        store.append(&sample_checkpoint(2));
        let mut bytes = store.as_bytes().to_vec();
        // Flip one payload byte inside the second entry.
        let target = bytes.len() - 3;
        bytes[target] ^= 0x40;
        let got = recover_latest(&bytes).unwrap().unwrap();
        assert_eq!(got.checkpoint, sample_checkpoint(1));
        assert_eq!(got.entries, 1);
    }
}
