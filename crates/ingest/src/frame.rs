//! Multiplexed sample-frame wire format and the zero-copy streaming
//! decoder.
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       2     magic          0xC7 0x1C
//! 2       1     version        WIRE_VERSION (1)
//! 3       1     flags          reserved, 0
//! 4       4     session_id     u32
//! 8       2     sequence       u16, per-session, wraps
//! 10      2     n_samples      u16, <= MAX_SAMPLES_PER_FRAME
//! 12      16*n  payload        n x (ecg f64 LE, z f64 LE)
//! 12+16n  2     crc16          CRC-16/CCITT-FALSE over bytes [0, 12+16n)
//! ```
//!
//! Unlike `uplink::ParameterRecord` framing (fixed 20-byte records, no
//! magic, CRC-8, two-consecutive-valid re-lock), sample frames are
//! variable length and lead with a 2-byte magic, so a single CRC-16-valid
//! candidate suffices to re-lock after corruption: a false re-lock needs
//! both a magic collision and a 16-bit CRC collision.

/// Leading magic bytes of every sample frame.
pub const MAGIC: [u8; 2] = [0xC7, 0x1C];

/// Wire format version emitted by the encoder and required by the
/// decoder.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header length in bytes (magic through `n_samples`).
pub const HEADER_LEN: usize = 12;

/// CRC trailer length in bytes.
pub const CRC_LEN: usize = 2;

/// Bytes per paired sample: one `f64` ECG sample plus one `f64`
/// impedance sample.
pub const BYTES_PER_SAMPLE: usize = 16;

/// Upper bound on `n_samples`, bounding decoder buffering and resync
/// work. 4096 samples is 16.4 s at the paper's 250 Hz — far above any
/// sane transport chunking.
pub const MAX_SAMPLES_PER_FRAME: usize = 4096;

/// Largest possible encoded frame, in bytes.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_SAMPLES_PER_FRAME * BYTES_PER_SAMPLE + CRC_LEN;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no
/// final xor) over `data`. `crc16(b"123456789") == 0x29B1`.
#[must_use]
pub fn crc16(data: &[u8]) -> u16 {
    crc16_update(0xFFFF, data)
}

/// Slicing-by-16 lookup tables for CRC-16/CCITT-FALSE, built at
/// compile time. `TABLES[0]` is the classic byte-at-a-time table
/// (each entry the CRC of one byte); `TABLES[k]` is `TABLES[0]`
/// advanced by `k` zero bytes, so sixteen bytes fold into the running
/// CRC with sixteen independent table reads and no inter-byte
/// dependency chain. This sits on the hot path of wire decode,
/// durable log append, and checkpoint sealing, where the bitwise
/// form (eight shift/xor iterations per byte) dominated serving cost.
const CRC16_TABLES: [[u16; 256]; 16] = {
    let mut t = [[0u16; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev << 8) ^ t[0][(prev >> 8) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// Continues a CRC-16/CCITT-FALSE computation from a running value.
/// `crc16(x)` is `crc16_update(0xFFFF, x)`.
///
/// Sixteen-byte chunks are folded via slicing-by-16 (~an order of
/// magnitude faster than the definitional bit loop); the tail falls
/// back to the byte-at-a-time table. Bitwise-identical to the
/// definitional form for every input — the unit tests pin the check
/// value and cross-check random lengths against the bit-loop
/// reference.
#[must_use]
pub fn crc16_update(mut crc: u16, data: &[u8]) -> u16 {
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        crc = CRC16_TABLES[15][usize::from(c[0] ^ (crc >> 8) as u8)]
            ^ CRC16_TABLES[14][usize::from(c[1] ^ (crc & 0xFF) as u8)]
            ^ CRC16_TABLES[13][usize::from(c[2])]
            ^ CRC16_TABLES[12][usize::from(c[3])]
            ^ CRC16_TABLES[11][usize::from(c[4])]
            ^ CRC16_TABLES[10][usize::from(c[5])]
            ^ CRC16_TABLES[9][usize::from(c[6])]
            ^ CRC16_TABLES[8][usize::from(c[7])]
            ^ CRC16_TABLES[7][usize::from(c[8])]
            ^ CRC16_TABLES[6][usize::from(c[9])]
            ^ CRC16_TABLES[5][usize::from(c[10])]
            ^ CRC16_TABLES[4][usize::from(c[11])]
            ^ CRC16_TABLES[3][usize::from(c[12])]
            ^ CRC16_TABLES[2][usize::from(c[13])]
            ^ CRC16_TABLES[1][usize::from(c[14])]
            ^ CRC16_TABLES[0][usize::from(c[15])];
    }
    for &b in chunks.remainder() {
        crc = (crc << 8) ^ CRC16_TABLES[0][usize::from((crc >> 8) as u8 ^ b)];
    }
    crc
}

/// Frame encode/decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The buffer ends before the frame does; the prefix seen so far is
    /// still consistent with a valid frame. Streaming decoders buffer
    /// and retry with more bytes.
    Incomplete,
    /// The first bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported wire version.
    BadVersion(u8),
    /// `n_samples` exceeds [`MAX_SAMPLES_PER_FRAME`].
    Oversize(usize),
    /// CRC trailer mismatch.
    BadCrc {
        /// CRC stored in the trailer.
        stored: u16,
        /// CRC computed over the received bytes.
        computed: u16,
    },
    /// Encoder input channels differ in length.
    ChannelLengthMismatch {
        /// ECG samples supplied.
        ecg_len: usize,
        /// Impedance samples supplied.
        z_len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Incomplete => write!(f, "frame truncated: more bytes required"),
            Self::BadMagic => write!(f, "bad frame magic"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::Oversize(n) => write!(
                f,
                "frame declares {n} samples, above the {MAX_SAMPLES_PER_FRAME} cap"
            ),
            Self::BadCrc { stored, computed } => {
                write!(
                    f,
                    "frame CRC mismatch: stored {stored:#06x}, computed {computed:#06x}"
                )
            }
            Self::ChannelLengthMismatch { ecg_len, z_len } => {
                write!(
                    f,
                    "channel length mismatch: {ecg_len} ecg vs {z_len} z samples"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one encoded frame to `out` and returns the number of bytes
/// written.
///
/// # Errors
///
/// * [`FrameError::ChannelLengthMismatch`] when `ecg` and `z` differ in
///   length.
/// * [`FrameError::Oversize`] when more than [`MAX_SAMPLES_PER_FRAME`]
///   samples are supplied.
pub fn encode_frame(
    session: u32,
    seq: u16,
    ecg: &[f64],
    z: &[f64],
    out: &mut Vec<u8>,
) -> Result<usize, FrameError> {
    if ecg.len() != z.len() {
        return Err(FrameError::ChannelLengthMismatch {
            ecg_len: ecg.len(),
            z_len: z.len(),
        });
    }
    if ecg.len() > MAX_SAMPLES_PER_FRAME {
        return Err(FrameError::Oversize(ecg.len()));
    }
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(0); // flags
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(
        &u16::try_from(ecg.len())
            .expect("length capped above")
            .to_le_bytes(),
    );
    for (&e, &zv) in ecg.iter().zip(z) {
        out.extend_from_slice(&e.to_le_bytes());
        out.extend_from_slice(&zv.to_le_bytes());
    }
    let crc = crc16(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out.len() - start)
}

/// Per-session encoder that tracks the wrapping sequence counter — the
/// sim-side producer for one multiplexed session.
#[derive(Debug, Clone)]
pub struct SessionEncoder {
    session: u32,
    next_seq: u16,
}

impl SessionEncoder {
    /// Creates an encoder for `session` starting at sequence 0.
    #[must_use]
    pub fn new(session: u32) -> Self {
        Self {
            session,
            next_seq: 0,
        }
    }

    /// Creates an encoder starting at an arbitrary sequence number
    /// (exercises wrap-around in tests).
    #[must_use]
    pub fn with_start_seq(session: u32, seq: u16) -> Self {
        Self {
            session,
            next_seq: seq,
        }
    }

    /// Session this encoder stamps on every frame.
    #[must_use]
    pub fn session(&self) -> u32 {
        self.session
    }

    /// Encodes the next frame in sequence, appending to `out`; returns
    /// the sequence number used.
    ///
    /// # Errors
    ///
    /// Propagates [`encode_frame`] errors.
    pub fn push_frame(
        &mut self,
        ecg: &[f64],
        z: &[f64],
        out: &mut Vec<u8>,
    ) -> Result<u16, FrameError> {
        let seq = self.next_seq;
        encode_frame(self.session, seq, ecg, z, out)?;
        self.next_seq = self.next_seq.wrapping_add(1);
        Ok(seq)
    }
}

/// A decoded frame **borrowing** from the input buffer — the zero-copy
/// unit the streaming decoder hands to its sink. Holds the full encoded
/// frame (header, payload, CRC), already validated.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    bytes: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parses one frame from the head of `buf`, returning the view and
    /// the number of bytes it occupies.
    ///
    /// # Errors
    ///
    /// * [`FrameError::Incomplete`] when `buf` ends before the frame
    ///   does but is still a plausible prefix.
    /// * [`FrameError::BadMagic`] / [`FrameError::BadVersion`] /
    ///   [`FrameError::Oversize`] / [`FrameError::BadCrc`] on framing
    ///   violations — streaming decoders resync past these.
    pub fn parse(buf: &'a [u8]) -> Result<(Self, usize), FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Incomplete);
        }
        if buf[0] != MAGIC[0] {
            return Err(FrameError::BadMagic);
        }
        if buf.len() < 2 {
            return Err(FrameError::Incomplete);
        }
        if buf[1] != MAGIC[1] {
            return Err(FrameError::BadMagic);
        }
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Incomplete);
        }
        if buf[2] != WIRE_VERSION {
            return Err(FrameError::BadVersion(buf[2]));
        }
        let n = usize::from(u16::from_le_bytes([buf[10], buf[11]]));
        if n > MAX_SAMPLES_PER_FRAME {
            return Err(FrameError::Oversize(n));
        }
        let total = HEADER_LEN + n * BYTES_PER_SAMPLE + CRC_LEN;
        if buf.len() < total {
            return Err(FrameError::Incomplete);
        }
        let stored = u16::from_le_bytes([buf[total - 2], buf[total - 1]]);
        let computed = crc16(&buf[..total - CRC_LEN]);
        if stored != computed {
            return Err(FrameError::BadCrc { stored, computed });
        }
        Ok((
            Self {
                bytes: &buf[..total],
            },
            total,
        ))
    }

    /// Session identifier.
    #[must_use]
    pub fn session(&self) -> u32 {
        u32::from_le_bytes([self.bytes[4], self.bytes[5], self.bytes[6], self.bytes[7]])
    }

    /// Per-session sequence number.
    #[must_use]
    pub fn seq(&self) -> u16 {
        u16::from_le_bytes([self.bytes[8], self.bytes[9]])
    }

    /// Reserved flags byte.
    #[must_use]
    pub fn flags(&self) -> u8 {
        self.bytes[3]
    }

    /// Number of paired samples in the payload.
    #[must_use]
    pub fn n_samples(&self) -> usize {
        usize::from(u16::from_le_bytes([self.bytes[10], self.bytes[11]]))
    }

    /// The `(ecg, z)` pair at sample index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_samples()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> (f64, f64) {
        let off = HEADER_LEN + i * BYTES_PER_SAMPLE;
        let ecg = f64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"));
        let z = f64::from_le_bytes(self.bytes[off + 8..off + 16].try_into().expect("8 bytes"));
        (ecg, z)
    }

    /// Decodes the payload, **appending** to the two sample buffers.
    pub fn copy_samples(&self, ecg: &mut Vec<f64>, z: &mut Vec<f64>) {
        copy_payload(self.payload(), ecg, z);
    }

    /// Raw payload bytes (`16 * n_samples` long), borrowed from the
    /// input buffer.
    #[must_use]
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[HEADER_LEN..self.bytes.len() - CRC_LEN]
    }

    /// The complete validated frame bytes — what the ingest log appends.
    #[must_use]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }
}

/// Decodes a raw payload byte run into the two sample buffers,
/// appending.
pub(crate) fn copy_payload(payload: &[u8], ecg: &mut Vec<f64>, z: &mut Vec<f64>) {
    for pair in payload.chunks_exact(BYTES_PER_SAMPLE) {
        ecg.push(f64::from_le_bytes(pair[..8].try_into().expect("8 bytes")));
        z.push(f64::from_le_bytes(pair[8..].try_into().expect("8 bytes")));
    }
}

/// Running totals of a [`WireDecoder`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// CRC-valid frames emitted.
    pub frames: u64,
    /// Bytes consumed by emitted frames.
    pub bytes: u64,
    /// Times the decoder lost framing and had to hunt for the next
    /// valid frame (one per corruption episode, not per skipped byte).
    pub resyncs: u64,
    /// Bytes discarded while out of sync.
    pub bytes_skipped: u64,
}

/// Streaming frame decoder: push arbitrary byte chunks, get validated
/// [`FrameView`]s.
///
/// Steady state is zero-copy and alloc-free: when a pushed chunk starts
/// on a frame boundary, every complete frame in it is emitted as a view
/// borrowing the caller's buffer, and nothing is copied. Only a frame
/// split across chunks lands in the internal carry buffer (bounded by
/// [`MAX_FRAME_LEN`]); its capacity is retained, so even the split path
/// stops allocating once warm. On corruption the decoder skips forward
/// byte-by-byte until magic plus a valid CRC-16 line up again.
#[derive(Debug, Default)]
pub struct WireDecoder {
    buf: Vec<u8>,
    lost_sync: bool,
    stats: DecodeStats,
}

impl WireDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `chunk` to the decoder, invoking `sink` for every complete
    /// CRC-valid frame, in wire order.
    pub fn push<F>(&mut self, chunk: &[u8], mut sink: F)
    where
        F: FnMut(FrameView<'_>),
    {
        if self.buf.is_empty() {
            let consumed = scan(&mut self.stats, &mut self.lost_sync, chunk, &mut sink);
            if consumed < chunk.len() {
                self.buf.extend_from_slice(&chunk[consumed..]);
            }
        } else {
            self.buf.extend_from_slice(chunk);
            let consumed = {
                let Self {
                    buf,
                    lost_sync,
                    stats,
                } = self;
                scan(stats, lost_sync, buf, &mut sink)
            };
            let len = self.buf.len();
            self.buf.copy_within(consumed..len, 0);
            self.buf.truncate(len - consumed);
        }
    }

    /// Decoder totals so far.
    #[must_use]
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Bytes of a split frame currently carried between pushes.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Capacity of the internal carry buffer — stable across pushes in
    /// steady state, which is what the bench's alloc-free assertion
    /// checks.
    #[must_use]
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Emits every complete frame at the head of `data`, resyncing past
/// corruption; returns the number of bytes consumed (everything except
/// a trailing plausible-prefix, which the caller carries over).
fn scan<F>(stats: &mut DecodeStats, lost_sync: &mut bool, data: &[u8], sink: &mut F) -> usize
where
    F: FnMut(FrameView<'_>),
{
    let mut pos = 0;
    while pos < data.len() {
        match FrameView::parse(&data[pos..]) {
            Ok((frame, used)) => {
                *lost_sync = false;
                stats.frames += 1;
                stats.bytes += used as u64;
                sink(frame);
                pos += used;
            }
            Err(FrameError::Incomplete) => break,
            Err(_) => {
                if !*lost_sync {
                    *lost_sync = true;
                    stats.resyncs += 1;
                }
                stats.bytes_skipped += 1;
                pos += 1;
            }
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize, salt: f64) -> (Vec<f64>, Vec<f64>) {
        let ecg: Vec<f64> = (0..n).map(|i| (i as f64).sin() + salt).collect();
        let z: Vec<f64> = (0..n).map(|i| 400.0 + (i as f64).cos() * salt).collect();
        (ecg, z)
    }

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    /// The slicing-by-8 fold must be bitwise-identical to the
    /// definitional bit loop for every length (covering the chunked
    /// body, the tail path, and their seam) and every running value.
    #[test]
    fn crc16_sliced_matches_bitwise_reference() {
        fn reference(mut crc: u16, data: &[u8]) -> u16 {
            for &b in data {
                crc ^= u16::from(b) << 8;
                for _ in 0..8 {
                    crc = if crc & 0x8000 != 0 {
                        (crc << 1) ^ 0x1021
                    } else {
                        crc << 1
                    };
                }
            }
            crc
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167).wrapping_add(i >> 3) & 0xFF) as u8)
            .collect();
        for len in 0..data.len() {
            for init in [0x0000, 0xFFFF, 0x29B1, 0x8408] {
                assert_eq!(
                    crc16_update(init, &data[..len]),
                    reference(init, &data[..len]),
                    "mismatch at len={len} init={init:#06x}"
                );
            }
        }
    }

    #[test]
    fn frame_round_trips_bitwise() {
        let (ecg, z) = samples(37, 2.5);
        let mut out = Vec::new();
        let written = encode_frame(9, 4321, &ecg, &z, &mut out).unwrap();
        assert_eq!(written, out.len());
        let (frame, used) = FrameView::parse(&out).unwrap();
        assert_eq!(used, out.len());
        assert_eq!(frame.session(), 9);
        assert_eq!(frame.seq(), 4321);
        assert_eq!(frame.n_samples(), 37);
        let (mut de, mut dz) = (Vec::new(), Vec::new());
        frame.copy_samples(&mut de, &mut dz);
        assert_eq!(
            de.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ecg.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            dz.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn encode_rejects_mismatch_and_oversize() {
        let mut out = Vec::new();
        assert!(matches!(
            encode_frame(0, 0, &[1.0], &[], &mut out),
            Err(FrameError::ChannelLengthMismatch { .. })
        ));
        let big = vec![0.0; MAX_SAMPLES_PER_FRAME + 1];
        assert!(matches!(
            encode_frame(0, 0, &big, &big, &mut out),
            Err(FrameError::Oversize(_))
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn decoder_handles_split_frames_across_pushes() {
        let (ecg, z) = samples(50, 1.0);
        let mut wire = Vec::new();
        let mut enc = SessionEncoder::new(3);
        for _ in 0..4 {
            enc.push_frame(&ecg, &z, &mut wire).unwrap();
        }
        let mut got = Vec::new();
        let mut dec = WireDecoder::new();
        // Push in awkward 97-byte slivers: every frame is split.
        for piece in wire.chunks(97) {
            dec.push(piece, |f| got.push((f.session(), f.seq(), f.n_samples())));
        }
        assert_eq!(got, vec![(3, 0, 50), (3, 1, 50), (3, 2, 50), (3, 3, 50)]);
        assert_eq!(dec.stats().frames, 4);
        assert_eq!(dec.stats().resyncs, 0);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_resyncs_past_corruption_and_garbage() {
        let (ecg, z) = samples(20, 0.5);
        let mut wire = vec![0xAA, 0xC7, 0x55]; // garbage prefix with a fake magic byte
        let mut enc = SessionEncoder::new(7);
        let first_start = wire.len();
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        let second_start = wire.len();
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        // Corrupt a payload byte of the second frame: its CRC fails.
        wire[second_start + HEADER_LEN + 5] ^= 0x80;
        let mut seqs = Vec::new();
        let mut dec = WireDecoder::new();
        dec.push(&wire, |f| seqs.push(f.seq()));
        assert_eq!(seqs, vec![0, 2]);
        let s = dec.stats();
        assert_eq!(s.frames, 2);
        assert_eq!(
            s.resyncs, 2,
            "one for the garbage prefix, one for the corrupted frame"
        );
        assert!(s.bytes_skipped >= (first_start as u64) + (HEADER_LEN as u64));
    }

    #[test]
    fn decoder_steady_state_does_not_grow_buffers() {
        let (ecg, z) = samples(125, 3.0);
        let mut wire = Vec::new();
        let mut enc = SessionEncoder::new(1);
        for _ in 0..8 {
            enc.push_frame(&ecg, &z, &mut wire).unwrap();
        }
        let mut dec = WireDecoder::new();
        let mut n = 0usize;
        dec.push(&wire, |_| n += 1);
        let cap = dec.buffer_capacity();
        for _ in 0..16 {
            dec.push(&wire, |_| n += 1);
        }
        assert_eq!(n, 8 * 17);
        assert_eq!(
            dec.buffer_capacity(),
            cap,
            "aligned pushes must not allocate"
        );
        assert_eq!(cap, 0, "no carry buffer is ever needed on aligned pushes");
    }

    #[test]
    fn version_and_oversize_are_rejected_then_resynced() {
        let (ecg, z) = samples(4, 0.1);
        let mut wire = Vec::new();
        let mut enc = SessionEncoder::new(2);
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        let bad_start = wire.len();
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        wire[bad_start + 2] = 99; // bad version on the second frame
        enc.push_frame(&ecg, &z, &mut wire).unwrap();
        let mut seqs = Vec::new();
        let mut dec = WireDecoder::new();
        dec.push(&wire, |f| seqs.push(f.seq()));
        assert_eq!(seqs, vec![0, 2]);
    }
}
