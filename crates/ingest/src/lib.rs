//! Ingestion edge between encoded device frames and the serving fleet.
//!
//! The [`crate::frame`] module defines the multiplexed many-session wire
//! format: session-tagged, sequence-numbered **sample frames** layered on
//! the same CRC-framing discipline as `cardiotouch_device::uplink`, but
//! carrying raw paired `(ecg, z)` samples rather than per-beat
//! `ParameterRecord`s. The decoder is zero-copy in steady state: a
//! [`frame::FrameView`] borrows straight from the caller's byte buffer and
//! no allocation happens once internal scratch capacities have warmed up.
//!
//! [`crate::assembler`] reorders frames per session inside a bounded
//! window and fills declared-lost frames with NaN samples, so wire loss
//! surfaces to the pipeline as contact loss and is handled by the existing
//! signal-degradation ladder.
//!
//! [`crate::log`] is the append-only replayable ingest log: every frame
//! accepted by the decoder is appended (length-prefixed, CRC-chained)
//! *before* dispatch, so a crash recovers the valid prefix and a replay of
//! the log reproduces the live run bitwise.
//!
//! [`crate::link`] models the lossy transport with deterministic seeded
//! frame drops and bit corruption, mirroring `uplink::LossyLink` at frame
//! granularity.

pub mod assembler;
pub mod frame;
pub mod link;
pub mod log;

pub use assembler::{Assembler, AssemblyStats, REORDER_WINDOW};
pub use frame::{
    crc16, encode_frame, DecodeStats, FrameError, FrameView, SessionEncoder, WireDecoder,
    HEADER_LEN, MAX_SAMPLES_PER_FRAME, WIRE_VERSION,
};
pub use link::LossyWire;
pub use log::{IngestLog, LogError, LogReader};
