//! Ingestion edge between encoded device frames and the serving fleet.
//!
//! The [`crate::frame`] module defines the multiplexed many-session wire
//! format: session-tagged, sequence-numbered **sample frames** layered on
//! the same CRC-framing discipline as `cardiotouch_device::uplink`, but
//! carrying raw paired `(ecg, z)` samples rather than per-beat
//! `ParameterRecord`s. The decoder is zero-copy in steady state: a
//! [`frame::FrameView`] borrows straight from the caller's byte buffer and
//! no allocation happens once internal scratch capacities have warmed up.
//!
//! [`crate::assembler`] reorders frames per session inside a bounded
//! window and fills declared-lost frames with NaN samples, so wire loss
//! surfaces to the pipeline as contact loss and is handled by the existing
//! signal-degradation ladder.
//!
//! [`crate::log`] is the append-only replayable ingest log: every frame
//! accepted by the decoder is appended (length-prefixed, CRC-chained)
//! *before* dispatch, so a crash recovers the valid prefix and a replay of
//! the log reproduces the live run bitwise.
//!
//! [`crate::link`] models the lossy transport with deterministic seeded
//! frame drops and bit corruption, mirroring `uplink::LossyLink` at frame
//! granularity.
//!
//! [`crate::segment`] rotates the log into size/entry-bounded segments
//! and compacts segments fully covered by a durable checkpoint, and
//! [`crate::checkpoint`] is the CRC-chained checkpoint store pairing
//! per-session engine snapshots with an ingest-log watermark — together
//! they make recovery = newest checkpoint + suffix replay, bitwise
//! equal to the uninterrupted run.

pub mod assembler;
pub mod checkpoint;
pub mod frame;
pub mod link;
pub mod log;
pub mod segment;

pub use assembler::{Assembler, AssemblyStats, SessionResume, REORDER_WINDOW};
pub use checkpoint::{
    recover_latest, Checkpoint, CheckpointStore, RecoveredCheckpoint, SessionCheckpoint,
    CHECKPOINT_MAGIC,
};
pub use frame::{
    crc16, encode_frame, DecodeStats, FrameError, FrameView, SessionEncoder, WireDecoder,
    HEADER_LEN, MAX_SAMPLES_PER_FRAME, WIRE_VERSION,
};
pub use link::LossyWire;
pub use log::{IngestLog, LogError, LogReader};
pub use segment::{LogPosition, Segment, SegmentPolicy, SegmentedLog, SuffixReplay};
