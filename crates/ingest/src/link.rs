//! Deterministic lossy transport model at frame granularity — the
//! frame-level sibling of `cardiotouch_device::uplink::LossyLink`, which
//! operates on per-beat `ParameterRecord`s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded frame-dropping, bit-corrupting wire. Whole frames are dropped
/// with `drop_prob`; delivered frames have a single random bit flipped
/// with `corrupt_prob` (the decoder's CRC catches it and resyncs).
/// Identical seeds give identical fault sequences, which keeps wire
/// simulations and the conformance corpus reproducible.
#[derive(Debug)]
pub struct LossyWire {
    rng: StdRng,
    drop_prob: f64,
    corrupt_prob: f64,
    delivered: u64,
    dropped: u64,
    corrupted: u64,
}

impl LossyWire {
    /// Creates a wire with the given fault probabilities (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn new(seed: u64, drop_prob: f64, corrupt_prob: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            drop_prob: drop_prob.clamp(0.0, 1.0),
            corrupt_prob: corrupt_prob.clamp(0.0, 1.0),
            delivered: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Transmits one encoded frame, appending the (possibly corrupted)
    /// bytes to `out`. Returns `false` when the frame was dropped.
    pub fn transmit(&mut self, frame: &[u8], out: &mut Vec<u8>) -> bool {
        if self.rng.gen_bool(self.drop_prob) {
            self.dropped += 1;
            return false;
        }
        let start = out.len();
        out.extend_from_slice(frame);
        if !frame.is_empty() && self.rng.gen_bool(self.corrupt_prob) {
            let idx = start + (self.rng.gen::<u64>() as usize) % frame.len();
            let bit = (self.rng.gen::<u32>() % 8) as u8;
            out[idx] ^= 1 << bit;
            self.corrupted += 1;
        }
        self.delivered += 1;
        true
    }

    /// Frames that made it across (corrupted ones included).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Frames dropped outright.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Delivered frames that took a bit flip.
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, FrameView, WireDecoder};

    fn frames(n: u16) -> Vec<Vec<u8>> {
        (0..n)
            .map(|seq| {
                let ecg = [f64::from(seq); 8];
                let z = [410.0; 8];
                let mut out = Vec::new();
                encode_frame(1, seq, &ecg, &z, &mut out).unwrap();
                out
            })
            .collect()
    }

    #[test]
    fn lossless_wire_is_transparent() {
        let mut wire = LossyWire::new(7, 0.0, 0.0);
        let mut out = Vec::new();
        for fr in frames(10) {
            assert!(wire.transmit(&fr, &mut out));
        }
        assert_eq!(wire.delivered(), 10);
        assert_eq!(wire.dropped() + wire.corrupted(), 0);
        let mut n = 0;
        let mut dec = WireDecoder::new();
        dec.push(&out, |_| n += 1);
        assert_eq!(n, 10);
        assert_eq!(dec.stats().resyncs, 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let fs = frames(200);
        let run = |seed| {
            let mut wire = LossyWire::new(seed, 0.2, 0.1);
            let mut out = Vec::new();
            for fr in &fs {
                wire.transmit(fr, &mut out);
            }
            (out, wire.dropped(), wire.corrupted())
        };
        assert_eq!(run(42), run(42));
        let (_, d1, c1) = run(42);
        assert!(
            d1 > 0 && c1 > 0,
            "faults should actually fire at these rates"
        );
    }

    #[test]
    fn corrupted_frames_fail_crc_but_decoder_recovers() {
        let fs = frames(100);
        let mut wire = LossyWire::new(3, 0.0, 0.3);
        let mut out = Vec::new();
        for fr in &fs {
            wire.transmit(fr, &mut out);
        }
        assert!(wire.corrupted() > 0);
        let mut seqs: Vec<u16> = Vec::new();
        let mut dec = WireDecoder::new();
        dec.push(&out, |f: FrameView<'_>| seqs.push(f.seq()));
        let s = dec.stats();
        assert!(s.resyncs >= 1);
        // Every surviving frame is genuine and in order.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.frames + wire.corrupted(), 100);
    }
}
