//! Append-only replayable ingest log.
//!
//! # Layout
//!
//! ```text
//! [0..8)          magic  b"CTILOG\x01\n"
//! then per entry:
//!   u32 LE        frame length in bytes
//!   u16 LE        chain CRC: crc16(prev_chain LE bytes || frame bytes)
//!   [u8; length]  the accepted frame, verbatim
//! ```
//!
//! The chain starts at `crc16(magic)`. Because every entry's CRC covers
//! the previous chain value, the log is tamper- and truncation-evident:
//! a reader validates entries front to back and stops at the first
//! violation, yielding the longest valid prefix — which is exactly the
//! crash-recovery contract (an interrupted append leaves a clean prefix).
//!
//! Frames are appended at the **acceptance point**: after the wire
//! decoder validates a frame's CRC but before reassembly. Replaying the
//! log therefore feeds the identical frame sequence through the identical
//! reassembly policy, making replay bitwise-equal to the live run even
//! under loss and reordering.

use crate::frame::{crc16, crc16_update, MAX_FRAME_LEN};

/// Leading magic of an ingest log.
pub const LOG_MAGIC: [u8; 8] = *b"CTILOG\x01\n";

/// Per-entry overhead: u32 length prefix + u16 chain CRC.
pub const ENTRY_OVERHEAD: usize = 6;

/// Ingest-log read failures. Reads stop at the first violation; the
/// entries before it remain trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogError {
    /// The buffer does not start with [`LOG_MAGIC`].
    BadHeader,
    /// The log ends mid-entry (e.g. an interrupted append).
    Truncated {
        /// Byte offset of the incomplete entry.
        offset: usize,
    },
    /// An entry's chain CRC does not match — corruption or tampering.
    ChainMismatch {
        /// Index of the offending entry.
        index: u64,
        /// Byte offset of the offending entry.
        offset: usize,
    },
    /// An entry declares a length above [`MAX_FRAME_LEN`].
    Oversize {
        /// Byte offset of the offending entry.
        offset: usize,
        /// Declared length.
        len: u32,
    },
    /// A replay watermark points into a segment the log no longer
    /// holds — compaction retired something a checkpoint still needs,
    /// which violates the watermark/compaction invariant.
    MissingSegment {
        /// Identifier of the absent segment.
        segment: u64,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader => write!(f, "ingest log header magic mismatch"),
            Self::Truncated { offset } => {
                write!(f, "ingest log truncated mid-entry at byte {offset}")
            }
            Self::ChainMismatch { index, offset } => {
                write!(
                    f,
                    "ingest log chain CRC mismatch at entry {index} (byte {offset})"
                )
            }
            Self::Oversize { offset, len } => {
                write!(
                    f,
                    "ingest log entry at byte {offset} declares oversize length {len}"
                )
            }
            Self::MissingSegment { segment } => {
                write!(f, "ingest log segment {segment} was compacted away")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// In-memory append-only ingest log writer.
#[derive(Debug, Clone)]
pub struct IngestLog {
    buf: Vec<u8>,
    chain: u16,
    frames: u64,
}

impl Default for IngestLog {
    fn default() -> Self {
        Self::new()
    }
}

impl IngestLog {
    /// Creates an empty log (header written).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty log whose buffer is sized for `cap` bytes up
    /// front. Segmented sinks know their rotation bound, so sizing the
    /// buffer once avoids the doubling-realloc copies a fresh segment
    /// would otherwise pay on the per-frame append path.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Vec::with_capacity(cap.max(LOG_MAGIC.len()));
        buf.extend_from_slice(&LOG_MAGIC);
        Self {
            buf,
            chain: crc16(&LOG_MAGIC),
            frames: 0,
        }
    }

    /// Appends one accepted frame.
    pub fn append(&mut self, frame: &[u8]) {
        let next = crc16_update(crc16_update(0xFFFF, &self.chain.to_le_bytes()), frame);
        self.buf.extend_from_slice(
            &u32::try_from(frame.len())
                .expect("frame length fits u32")
                .to_le_bytes(),
        );
        self.buf.extend_from_slice(&next.to_le_bytes());
        self.buf.extend_from_slice(frame);
        self.chain = next;
        self.frames += 1;
    }

    /// Frames appended so far.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Serialized size so far, header included.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Current chain CRC — together with [`IngestLog::byte_len`] this
    /// is the resume point a checkpoint watermark records.
    #[must_use]
    pub fn chain(&self) -> u16 {
        self.chain
    }

    /// Rebuilds a writer from serialized bytes, keeping only the
    /// longest valid prefix (so a crash-cut segment can keep accepting
    /// appends after recovery). Returns the writer plus the violation
    /// that trimmed the tail, if any.
    ///
    /// # Errors
    ///
    /// * [`LogError::BadHeader`] when the magic is absent.
    pub fn from_valid_prefix(data: &[u8]) -> Result<(Self, Option<LogError>), LogError> {
        let mut reader = LogReader::new(data)?;
        while reader.next_frame().is_some() {}
        let trimmed = reader.error();
        let prefix = reader.valid_prefix_len();
        Ok((
            Self {
                buf: data[..prefix].to_vec(),
                chain: reader.chain,
                frames: reader.frames,
            },
            trimmed,
        ))
    }

    /// The serialized log, header included.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the serialized log.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Validating front-to-back ingest-log reader. Yields frames until the
/// end of the log or the first violation, whichever comes first.
#[derive(Debug)]
pub struct LogReader<'a> {
    data: &'a [u8],
    pos: usize,
    chain: u16,
    frames: u64,
    error: Option<LogError>,
}

impl<'a> LogReader<'a> {
    /// Opens a serialized log.
    ///
    /// # Errors
    ///
    /// * [`LogError::BadHeader`] when the magic is absent.
    pub fn new(data: &'a [u8]) -> Result<Self, LogError> {
        if data.len() < LOG_MAGIC.len() || data[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(LogError::BadHeader);
        }
        Ok(Self {
            data,
            pos: LOG_MAGIC.len(),
            chain: crc16(&LOG_MAGIC),
            frames: 0,
            error: None,
        })
    }

    /// Opens a serialized log at a previously validated position —
    /// `(offset, chain, frames)` as recorded by a checkpoint watermark
    /// — so a recovery replays only the suffix past the watermark. The
    /// chain CRC discipline still validates every suffix entry.
    ///
    /// # Errors
    ///
    /// * [`LogError::BadHeader`] when the magic is absent or `offset`
    ///   lies before the header or past the end of `data`.
    pub fn resume(
        data: &'a [u8],
        offset: usize,
        chain: u16,
        frames: u64,
    ) -> Result<Self, LogError> {
        if data.len() < LOG_MAGIC.len() || data[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(LogError::BadHeader);
        }
        if offset < LOG_MAGIC.len() || offset > data.len() {
            return Err(LogError::BadHeader);
        }
        Ok(Self {
            data,
            pos: offset,
            chain,
            frames,
            error: None,
        })
    }

    /// Returns the next validated frame, or `None` at the end of the
    /// valid prefix (check [`LogReader::error`] to distinguish a clean
    /// end from corruption).
    pub fn next_frame(&mut self) -> Option<&'a [u8]> {
        if self.error.is_some() || self.pos == self.data.len() {
            return None;
        }
        let offset = self.pos;
        let rest = &self.data[offset..];
        if rest.len() < ENTRY_OVERHEAD {
            self.error = Some(LogError::Truncated { offset });
            return None;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        if len as usize > MAX_FRAME_LEN {
            self.error = Some(LogError::Oversize { offset, len });
            return None;
        }
        let stored = u16::from_le_bytes(rest[4..6].try_into().expect("2 bytes"));
        let end = ENTRY_OVERHEAD + len as usize;
        if rest.len() < end {
            self.error = Some(LogError::Truncated { offset });
            return None;
        }
        let frame = &rest[ENTRY_OVERHEAD..end];
        let computed = crc16_update(crc16_update(0xFFFF, &self.chain.to_le_bytes()), frame);
        if stored != computed {
            self.error = Some(LogError::ChainMismatch {
                index: self.frames,
                offset,
            });
            return None;
        }
        self.chain = stored;
        self.frames += 1;
        self.pos = offset + end;
        Some(frame)
    }

    /// Frames successfully read so far.
    #[must_use]
    pub fn frames_read(&self) -> u64 {
        self.frames
    }

    /// Byte length of the valid prefix consumed so far — what crash
    /// recovery would keep.
    #[must_use]
    pub fn valid_prefix_len(&self) -> usize {
        self.pos
    }

    /// The violation that stopped reading, if any.
    #[must_use]
    pub fn error(&self) -> Option<LogError> {
        self.error
    }
}

impl<'a> Iterator for LogReader<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        self.next_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    fn sample_frame(seq: u16) -> Vec<u8> {
        let ecg = [f64::from(seq); 3];
        let z = [400.0 + f64::from(seq); 3];
        let mut out = Vec::new();
        encode_frame(5, seq, &ecg, &z, &mut out).unwrap();
        out
    }

    #[test]
    fn log_round_trips_frames_verbatim() {
        let frames: Vec<Vec<u8>> = (0..6).map(sample_frame).collect();
        let mut log = IngestLog::new();
        for fr in &frames {
            log.append(fr);
        }
        assert_eq!(log.frames(), 6);
        let bytes = log.into_bytes();
        let mut reader = LogReader::new(&bytes).unwrap();
        let got: Vec<Vec<u8>> = reader.by_ref().map(<[u8]>::to_vec).collect();
        assert_eq!(got, frames);
        assert_eq!(reader.error(), None);
        assert_eq!(reader.valid_prefix_len(), bytes.len());
    }

    #[test]
    fn truncation_yields_valid_prefix() {
        let mut log = IngestLog::new();
        for seq in 0..4 {
            log.append(&sample_frame(seq));
        }
        let bytes = log.as_bytes();
        // Cut mid-way through the final entry, as a crash would.
        let cut = &bytes[..bytes.len() - 10];
        let mut reader = LogReader::new(cut).unwrap();
        let n = reader.by_ref().count();
        assert_eq!(n, 3);
        assert!(matches!(reader.error(), Some(LogError::Truncated { .. })));
        // The valid prefix re-reads cleanly end to end.
        let prefix = &cut[..reader.valid_prefix_len()];
        let mut again = LogReader::new(prefix).unwrap();
        assert_eq!(again.by_ref().count(), 3);
        assert_eq!(again.error(), None);
    }

    #[test]
    fn corruption_breaks_the_chain() {
        let mut log = IngestLog::new();
        for seq in 0..4 {
            log.append(&sample_frame(seq));
        }
        let mut bytes = log.into_bytes();
        // Flip one payload byte inside the second entry.
        let entry_len = ENTRY_OVERHEAD + sample_frame(0).len();
        let target = LOG_MAGIC.len() + entry_len + ENTRY_OVERHEAD + 14;
        bytes[target] ^= 0x01;
        let mut reader = LogReader::new(&bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 1);
        assert!(matches!(
            reader.error(),
            Some(LogError::ChainMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn splice_of_valid_entries_is_detected() {
        // Build two logs and splice an entry of B after A's first entry:
        // every entry is individually well-formed, but the chain breaks.
        let mut a = IngestLog::new();
        a.append(&sample_frame(0));
        let mut b = IngestLog::new();
        b.append(&sample_frame(9));
        let entry_b = &b.as_bytes()[LOG_MAGIC.len()..];
        let mut spliced = a.as_bytes().to_vec();
        spliced.extend_from_slice(entry_b);
        let mut reader = LogReader::new(&spliced).unwrap();
        assert_eq!(reader.by_ref().count(), 1);
        assert!(matches!(
            reader.error(),
            Some(LogError::ChainMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn resume_reads_exactly_the_suffix() {
        let mut log = IngestLog::new();
        for seq in 0..3 {
            log.append(&sample_frame(seq));
        }
        // Watermark taken mid-log.
        let (offset, chain, frames) = (log.byte_len(), log.chain(), log.frames());
        for seq in 3..7 {
            log.append(&sample_frame(seq));
        }
        let bytes = log.as_bytes();
        let mut reader = LogReader::resume(bytes, offset, chain, frames).unwrap();
        let got: Vec<Vec<u8>> = reader.by_ref().map(<[u8]>::to_vec).collect();
        assert_eq!(got, (3..7).map(sample_frame).collect::<Vec<_>>());
        assert_eq!(reader.error(), None);
        assert_eq!(reader.frames_read(), 7);
    }

    #[test]
    fn from_valid_prefix_resumes_appends_after_a_cut() {
        let mut log = IngestLog::new();
        for seq in 0..4 {
            log.append(&sample_frame(seq));
        }
        let cut = &log.as_bytes()[..log.byte_len() - 7];
        let (mut rebuilt, trimmed) = IngestLog::from_valid_prefix(cut).unwrap();
        assert!(matches!(trimmed, Some(LogError::Truncated { .. })));
        assert_eq!(rebuilt.frames(), 3);
        // The rebuilt writer keeps the chain alive: further appends
        // read back as one continuous valid log.
        rebuilt.append(&sample_frame(99));
        let bytes = rebuilt.into_bytes();
        let mut reader = LogReader::new(&bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 4);
        assert_eq!(reader.error(), None);
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(
            LogReader::new(b"nonsense"),
            Err(LogError::BadHeader)
        ));
    }
}
