//! Size/entry-bounded ingest-log segments with checkpoint-driven
//! compaction.
//!
//! A single [`crate::log::IngestLog`] grows forever; a fleet serving
//! long-lived sessions needs the log bounded. [`SegmentedLog`] rotates
//! the append stream into a chain of independent segments — each a
//! self-contained CRC-chained [`IngestLog`] with its own header — and
//! retires whole segments once a durable checkpoint covers them.
//!
//! # Watermark/compaction invariant
//!
//! A [`LogPosition`] records `(segment id, byte offset, chain CRC,
//! frames)` — everything [`crate::log::LogReader::resume`] needs to
//! validate and replay the suffix past it. Compaction
//! ([`SegmentedLog::compact`]) retires only segments whose id is
//! strictly below the watermark's, so replay from any retained
//! watermark always finds its suffix. Callers compact to the *previous*
//! durable checkpoint when sealing a new one: a crash can truncate the
//! checkpoint being written, and recovery then falls back exactly one
//! checkpoint — whose suffix is still on disk.
//!
//! Because each segment restarts the chain from its own header, an
//! arbitrary crash cut in the active (last) segment still yields a
//! clean valid prefix per segment, and earlier segments are untouched.

use std::collections::VecDeque;

use crate::log::{IngestLog, LogError, LogReader, LOG_MAGIC};

/// Rotation bounds for one segment. A segment rotates when appending
/// one more frame would exceed either bound (a segment always accepts
/// at least one frame, so an oversized frame still lands somewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPolicy {
    /// Rotate when a segment's serialized size would pass this.
    pub max_bytes: usize,
    /// Rotate when a segment holds this many frames.
    pub max_frames: u64,
}

impl SegmentPolicy {
    /// Default bounds: 64 KiB or 256 frames per segment.
    pub const DEFAULT: Self = Self {
        max_bytes: 64 * 1024,
        max_frames: 256,
    };
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A replayable position in a [`SegmentedLog`] — the ingest-log half of
/// a checkpoint watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogPosition {
    /// Segment the position points into.
    pub segment: u64,
    /// Byte offset within that segment (end of the last covered entry).
    pub offset: usize,
    /// Chain CRC at `offset`, seeding suffix validation.
    pub chain: u16,
    /// Frames read within that segment up to `offset`.
    pub frames: u64,
}

/// One rotation unit: an id plus a self-contained [`IngestLog`].
#[derive(Debug, Clone)]
pub struct Segment {
    id: u64,
    log: IngestLog,
}

impl Segment {
    /// Monotonic segment identifier (never reused after compaction).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The segment's serialized bytes, header included.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        self.log.as_bytes()
    }

    /// Frames in this segment.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.log.frames()
    }
}

/// Outcome of a suffix replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuffixReplay {
    /// Frames delivered past the watermark.
    pub frames: u64,
    /// `true` when the final segment ended in a crash cut (truncated
    /// mid-entry) — expected after an interrupted append, not an error.
    pub truncated: bool,
}

/// Rotating, compactable chain of ingest-log segments.
#[derive(Debug, Clone)]
pub struct SegmentedLog {
    segments: VecDeque<Segment>,
    policy: SegmentPolicy,
    /// Frames appended over the log's whole lifetime, retired segments
    /// included.
    appended: u64,
    /// Bytes ever appended, retired segments included.
    appended_bytes: u64,
    /// Segments retired by compaction so far.
    retired: u64,
}

impl SegmentedLog {
    /// Creates an empty segmented log whose first segment has id 0.
    #[must_use]
    pub fn new(policy: SegmentPolicy) -> Self {
        Self::with_base(policy, 0)
    }

    /// Creates an empty segmented log whose first segment has id
    /// `base` — recovery continues the id sequence past the segments it
    /// loaded, so old and new segment files never collide.
    #[must_use]
    pub fn with_base(policy: SegmentPolicy, base: u64) -> Self {
        let mut segments = VecDeque::new();
        segments.push_back(Segment {
            id: base,
            log: IngestLog::with_capacity(policy.max_bytes),
        });
        Self {
            segments,
            policy,
            appended: 0,
            appended_bytes: 0,
            retired: 0,
        }
    }

    /// Rebuilds a segmented log from `(id, bytes)` pairs, e.g. segment
    /// files read back after a crash. Ids must be strictly increasing;
    /// every segment but the last must be fully valid, while the last
    /// keeps its longest valid prefix (an interrupted append cuts only
    /// the active segment's tail).
    ///
    /// # Errors
    ///
    /// * [`LogError::BadHeader`] for an empty input or a segment whose
    ///   magic is absent;
    /// * the first violation inside a non-final segment.
    pub fn from_segments(
        policy: SegmentPolicy,
        parts: &[(u64, Vec<u8>)],
    ) -> Result<Self, LogError> {
        if parts.is_empty() {
            return Err(LogError::BadHeader);
        }
        let mut segments = VecDeque::new();
        let mut appended = 0u64;
        let mut appended_bytes = 0u64;
        let last = parts.len() - 1;
        let mut prev_id: Option<u64> = None;
        for (i, (id, bytes)) in parts.iter().enumerate() {
            if prev_id.is_some_and(|p| *id <= p) {
                return Err(LogError::BadHeader);
            }
            prev_id = Some(*id);
            let (log, trimmed) = IngestLog::from_valid_prefix(bytes)?;
            if let Some(e) = trimmed {
                // Only the active segment may carry a crash cut.
                if i != last {
                    return Err(e);
                }
            }
            appended += log.frames();
            appended_bytes += (log.byte_len() - LOG_MAGIC.len()) as u64;
            segments.push_back(Segment { id: *id, log });
        }
        Ok(Self {
            segments,
            policy,
            appended,
            appended_bytes,
            retired: 0,
        })
    }

    fn active(&self) -> &Segment {
        self.segments
            .back()
            .expect("a segmented log is never empty")
    }

    /// Appends one accepted frame, rotating first when the active
    /// segment is full.
    pub fn append(&mut self, frame: &[u8]) {
        let rotate = {
            let seg = self.active();
            seg.log.frames() > 0
                && (seg.log.frames() >= self.policy.max_frames
                    || seg.log.byte_len() + frame.len() > self.policy.max_bytes)
        };
        if rotate {
            let next = self.active().id + 1;
            self.segments.push_back(Segment {
                id: next,
                log: IngestLog::with_capacity(self.policy.max_bytes),
            });
        }
        let seg = self.segments.back_mut().expect("active segment");
        let before = seg.log.byte_len();
        seg.log.append(frame);
        self.appended += 1;
        self.appended_bytes += (seg.log.byte_len() - before) as u64;
    }

    /// The current end of the log — what a checkpoint records as its
    /// watermark.
    #[must_use]
    pub fn position(&self) -> LogPosition {
        let seg = self.active();
        LogPosition {
            segment: seg.id,
            offset: seg.log.byte_len(),
            chain: seg.log.chain(),
            frames: seg.log.frames(),
        }
    }

    /// The very start of the retained log — replaying from here yields
    /// every retained frame.
    #[must_use]
    pub fn start_position(&self) -> LogPosition {
        let seg = self
            .segments
            .front()
            .expect("a segmented log is never empty");
        LogPosition {
            segment: seg.id,
            offset: LOG_MAGIC.len(),
            chain: crate::frame::crc16(&LOG_MAGIC),
            frames: 0,
        }
    }

    /// Retires every segment strictly below the watermark's segment —
    /// those are fully covered by the checkpoint that recorded it.
    /// Returns the number of segments retired.
    pub fn compact(&mut self, up_to: &LogPosition) -> usize {
        let mut n = 0;
        while self
            .segments
            .front()
            .is_some_and(|s| s.id < up_to.segment && self.segments.len() > 1)
        {
            self.segments.pop_front();
            n += 1;
        }
        self.retired += n as u64;
        n
    }

    /// Replays every retained frame past `from`, calling `f` once per
    /// frame. A watermark at or past a crash cut simply has nothing to
    /// replay there; the re-feed path covers the remainder.
    ///
    /// # Errors
    ///
    /// * [`LogError::MissingSegment`] when `from` points below the
    ///   oldest retained segment (the compaction invariant was broken);
    /// * chain/oversize violations inside a non-final segment, or any
    ///   violation other than a final-segment truncation.
    pub fn replay_from<F>(&self, from: &LogPosition, mut f: F) -> Result<SuffixReplay, LogError>
    where
        F: FnMut(&[u8]),
    {
        let oldest = self.segments.front().expect("non-empty").id;
        if from.segment < oldest {
            return Err(LogError::MissingSegment {
                segment: from.segment,
            });
        }
        let mut frames = 0u64;
        let mut truncated = false;
        let last_idx = self.segments.len() - 1;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.id < from.segment {
                continue;
            }
            let bytes = seg.bytes();
            let mut reader = if seg.id == from.segment {
                if from.offset >= bytes.len() {
                    // The watermark lies at or past this segment's
                    // (possibly crash-cut) end: nothing to replay here.
                    continue;
                }
                LogReader::resume(bytes, from.offset, from.chain, from.frames)?
            } else {
                LogReader::new(bytes)?
            };
            while let Some(frame) = reader.next_frame() {
                f(frame);
                frames += 1;
            }
            match reader.error() {
                None => {}
                Some(LogError::Truncated { .. }) if i == last_idx => truncated = true,
                Some(e) => return Err(e),
            }
        }
        Ok(SuffixReplay { frames, truncated })
    }

    /// Retained segments, oldest first.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter()
    }

    /// Retained segments right now.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Serialized bytes currently retained across all segments.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.log.byte_len()).sum()
    }

    /// Frames appended over the log's lifetime (retired included).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.appended
    }

    /// Entry bytes appended over the log's lifetime (retired included,
    /// headers excluded) — what an unsegmented log would have grown to.
    #[must_use]
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Segments retired by compaction over the log's lifetime.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    fn sample_frame(seq: u16) -> Vec<u8> {
        let ecg = [f64::from(seq); 8];
        let z = [400.0 + f64::from(seq); 8];
        let mut out = Vec::new();
        encode_frame(3, seq, &ecg, &z, &mut out).unwrap();
        out
    }

    fn tiny_policy() -> SegmentPolicy {
        SegmentPolicy {
            max_bytes: 512,
            max_frames: 3,
        }
    }

    #[test]
    fn rotation_bounds_segments_and_preserves_order() {
        let mut log = SegmentedLog::new(tiny_policy());
        let frames: Vec<Vec<u8>> = (0..10).map(sample_frame).collect();
        for fr in &frames {
            log.append(fr);
        }
        assert!(log.segment_count() >= 4, "3-frame segments must rotate");
        for seg in log.segments() {
            assert!(seg.frames() <= 3);
        }
        let mut got = Vec::new();
        log.replay_from(&log.start_position(), |f| got.push(f.to_vec()))
            .unwrap();
        assert_eq!(got, frames);
    }

    #[test]
    fn replay_from_watermark_yields_exactly_the_suffix() {
        let mut log = SegmentedLog::new(tiny_policy());
        for seq in 0..5 {
            log.append(&sample_frame(seq));
        }
        let mark = log.position();
        for seq in 5..12 {
            log.append(&sample_frame(seq));
        }
        let mut got = Vec::new();
        let replay = log.replay_from(&mark, |f| got.push(f.to_vec())).unwrap();
        assert_eq!(replay.frames, 7);
        assert!(!replay.truncated);
        assert_eq!(got, (5..12).map(sample_frame).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_retires_only_covered_segments() {
        let mut log = SegmentedLog::new(tiny_policy());
        for seq in 0..9 {
            log.append(&sample_frame(seq));
        }
        let mark = log.position();
        for seq in 9..12 {
            log.append(&sample_frame(seq));
        }
        let before = log.segment_count();
        let retired = log.compact(&mark);
        assert!(retired > 0);
        assert_eq!(log.segment_count(), before - retired);
        assert_eq!(log.retired(), retired as u64);
        // The suffix past the watermark is fully intact.
        let mut got = Vec::new();
        log.replay_from(&mark, |f| got.push(f.to_vec())).unwrap();
        assert_eq!(got, (9..12).map(sample_frame).collect::<Vec<_>>());
        // But replaying from below the oldest retained segment fails
        // loudly rather than silently skipping data.
        let before_start = LogPosition {
            segment: 0,
            offset: LOG_MAGIC.len(),
            chain: crate::frame::crc16(&LOG_MAGIC),
            frames: 0,
        };
        if log.start_position().segment > 0 {
            assert!(matches!(
                log.replay_from(&before_start, |_| {}),
                Err(LogError::MissingSegment { segment: 0 })
            ));
        }
    }

    #[test]
    fn crash_cut_active_segment_round_trips_through_from_segments() {
        let mut log = SegmentedLog::new(tiny_policy());
        for seq in 0..8 {
            log.append(&sample_frame(seq));
        }
        let mut parts: Vec<(u64, Vec<u8>)> = log
            .segments()
            .map(|s| (s.id(), s.bytes().to_vec()))
            .collect();
        // Crash-cut the active segment mid-entry.
        let tail = parts.last_mut().unwrap();
        let keep = tail.1.len() - 5;
        tail.1.truncate(keep);
        let rebuilt = SegmentedLog::from_segments(tiny_policy(), &parts).unwrap();
        let mut got = Vec::new();
        let replay = rebuilt
            .replay_from(&rebuilt.start_position(), |f| got.push(f.to_vec()))
            .unwrap();
        assert_eq!(replay.frames, 7, "the cut entry is dropped, prefix kept");
        assert_eq!(got, (0..7).map(sample_frame).collect::<Vec<_>>());
    }

    #[test]
    fn from_segments_rejects_disorder_and_mid_chain_cuts() {
        let mut log = SegmentedLog::new(tiny_policy());
        for seq in 0..8 {
            log.append(&sample_frame(seq));
        }
        let parts: Vec<(u64, Vec<u8>)> = log
            .segments()
            .map(|s| (s.id(), s.bytes().to_vec()))
            .collect();
        let mut swapped = parts.clone();
        swapped.swap(0, 1);
        assert!(SegmentedLog::from_segments(tiny_policy(), &swapped).is_err());
        // A cut in a non-final segment is corruption, not a crash.
        let mut cut_inner = parts;
        let keep = cut_inner[0].1.len() - 3;
        cut_inner[0].1.truncate(keep);
        assert!(SegmentedLog::from_segments(tiny_policy(), &cut_inner).is_err());
    }

    #[test]
    fn with_base_continues_the_id_sequence() {
        let log = SegmentedLog::with_base(SegmentPolicy::DEFAULT, 17);
        assert_eq!(log.position().segment, 17);
    }
}
