//! Property-based tests over the ingest wire format, decoder, log and
//! reassembler: round-trip identity for arbitrary `f64` bit patterns,
//! and never-panics / bounded-loss behaviour on truncated, bit-flipped
//! and garbage-prefixed streams.

use cardiotouch_ingest::checkpoint::{recover_latest, Checkpoint, CheckpointStore};
use cardiotouch_ingest::frame::MAX_FRAME_LEN;
use cardiotouch_ingest::log::LOG_MAGIC;
use cardiotouch_ingest::segment::{SegmentPolicy, SegmentedLog};
use cardiotouch_ingest::{
    encode_frame, Assembler, FrameView, IngestLog, LogReader, LossyWire, SessionEncoder,
    WireDecoder, HEADER_LEN,
};
use proptest::prelude::*;

/// Encodes `n` frames of `len` deterministic samples for one session,
/// returning the wire bytes and each frame's start offset.
fn encode_wire(session: u32, n: usize, len: usize) -> (Vec<u8>, Vec<usize>) {
    let mut enc = SessionEncoder::new(session);
    let mut out = Vec::new();
    let mut starts = Vec::new();
    for seq in 0..n {
        starts.push(out.len());
        let ecg: Vec<f64> = (0..len)
            .map(|i| (seq * 131 + i) as f64 * 0.5 - 3.0)
            .collect();
        let z: Vec<f64> = (0..len).map(|i| 420.0 + (seq + i) as f64 * 0.25).collect();
        enc.push_frame(&ecg, &z, &mut out).expect("encode");
    }
    (out, starts)
}

/// Pushes enough zero bytes to complete (and so CRC-fail) any pending
/// plausible-prefix the decoder may be buffering — a bit flip in the
/// `n_samples` field can otherwise stall frames behind an `Incomplete`
/// that never resolves. Zero bytes can never start a frame (no magic),
/// so everything buffered gets adjudicated.
fn flush(dec: &mut WireDecoder, seqs: &mut Vec<u16>) {
    let zeros = vec![0u8; MAX_FRAME_LEN];
    dec.push(&zeros, |f| seqs.push(f.seq()));
}

proptest! {
    #[test]
    fn frame_round_trips_any_bit_patterns(
        session in any::<u32>(),
        seq in any::<u16>(),
        ecg_bits in prop::collection::vec(any::<u64>(), 0..200),
        z_bits in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let n = ecg_bits.len().min(z_bits.len());
        let ecg: Vec<f64> = ecg_bits[..n].iter().map(|&b| f64::from_bits(b)).collect();
        let z: Vec<f64> = z_bits[..n].iter().map(|&b| f64::from_bits(b)).collect();
        let mut out = Vec::new();
        let written = encode_frame(session, seq, &ecg, &z, &mut out).expect("encode");
        prop_assert_eq!(written, out.len());
        let (frame, used) = FrameView::parse(&out).expect("parse");
        prop_assert_eq!(used, out.len());
        prop_assert_eq!(frame.session(), session);
        prop_assert_eq!(frame.seq(), seq);
        prop_assert_eq!(frame.n_samples(), n);
        let (mut de, mut dz) = (Vec::new(), Vec::new());
        frame.copy_samples(&mut de, &mut dz);
        // bitwise, so NaN payloads and negative zero survive the wire
        prop_assert_eq!(
            de.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ecg.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            dz.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_bit_flips_never_pass_full_frame_crc(
        len in 1usize..32,
        flip in any::<u32>(),
    ) {
        let (wire, _) = encode_wire(7, 1, len);
        let bit = (flip as usize) % (wire.len() * 8);
        let mut bad = wire.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        // CRC-16 detects every single-bit error, so the only way a
        // flipped buffer can still parse is a shorter reinterpretation
        // (a flip shrinking `n_samples`), never the full frame.
        match FrameView::parse(&bad) {
            Err(_) => {}
            Ok((_, used)) => prop_assert!(used < wire.len()),
        }
    }

    #[test]
    fn decoder_conserves_every_byte_of_garbage(
        data in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..97,
    ) {
        let mut dec = WireDecoder::new();
        let mut frames = 0u64;
        for piece in data.chunks(chunk) {
            dec.push(piece, |_| frames += 1);
        }
        // emitted + skipped + still-buffered must account for every
        // input byte, whatever the input is — and never panic
        let s = dec.stats();
        prop_assert_eq!(s.frames, frames);
        prop_assert_eq!(s.bytes + s.bytes_skipped + dec.buffered() as u64, data.len() as u64);
    }

    #[test]
    fn decoder_loses_at_most_the_bit_flipped_frame(
        n in 2usize..10,
        len in 1usize..16,
        flip in any::<u32>(),
    ) {
        let (mut wire, starts) = encode_wire(1, n, len);
        let bit = (flip as usize) % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        let hit = starts.iter().rposition(|&s| s <= bit / 8).expect("starts[0] is 0");
        let mut seqs = Vec::new();
        let mut dec = WireDecoder::new();
        dec.push(&wire, |f| seqs.push(f.seq()));
        flush(&mut dec, &mut seqs);
        let want: Vec<u16> = (0..n as u16).filter(|&s| usize::from(s) != hit).collect();
        prop_assert_eq!(seqs, want);
        // one resync episode for the corruption, at most one more for
        // the zero-byte flush tail
        let s = dec.stats();
        prop_assert!(s.resyncs >= 1 && s.resyncs <= 2, "resyncs {}", s.resyncs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn garbage_prefix_and_truncated_tail_lose_only_the_cut_frame(
        junk in prop::collection::vec(any::<u8>(), 0..64),
        n in 2usize..10,
        len in 1usize..16,
        cut in 1usize..32,
    ) {
        let (wire, _) = encode_wire(3, n, len);
        let frame_len = HEADER_LEN + len * 16 + 2;
        let cut = cut.min(frame_len - 1); // truncate into the final frame
        let mut stream = junk;
        stream.extend_from_slice(&wire[..wire.len() - cut]);
        let mut seqs = Vec::new();
        let mut dec = WireDecoder::new();
        for piece in stream.chunks(53) {
            dec.push(piece, |f| seqs.push(f.seq()));
        }
        flush(&mut dec, &mut seqs);
        // every intact frame survives, in order (match by subsequence:
        // arbitrary junk could in principle CRC-collide into a bogus
        // extra frame, which would not be a decoder defect)
        let mut it = seqs.iter();
        for want in 0..n as u16 - 1 {
            prop_assert!(
                it.any(|&s| s == want),
                "frame {} lost to prefix junk or tail cut",
                want
            );
        }
    }

    #[test]
    fn lossy_wire_is_deterministic_and_accounted(
        seed in any::<u16>(),
        n in 1usize..40,
        drop_pct in 0usize..40,
        corrupt_pct in 0usize..40,
    ) {
        let (dp, cp) = (drop_pct as f64 / 100.0, corrupt_pct as f64 / 100.0);
        let (clean, starts) = encode_wire(9, n, 8);
        let frame_len = clean.len() / n;
        let run = || {
            let mut link = LossyWire::new(u64::from(seed), dp, cp);
            let mut out = Vec::new();
            for &s in &starts {
                link.transmit(&clean[s..s + frame_len], &mut out);
            }
            (out, link.delivered(), link.dropped(), link.corrupted())
        };
        let (out, delivered, dropped, corrupted) = run();
        prop_assert_eq!(run(), (out.clone(), delivered, dropped, corrupted));
        prop_assert_eq!(delivered + dropped, n as u64);
        // every corrupted frame fails CRC; every survivor is genuine
        let mut seqs = Vec::new();
        let mut dec = WireDecoder::new();
        dec.push(&out, |f| seqs.push(f.seq()));
        flush(&mut dec, &mut seqs);
        prop_assert_eq!(dec.stats().frames, delivered - corrupted);
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "out-of-order survivors");
    }

    #[test]
    fn log_round_trips_and_any_cut_recovers_a_prefix(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 1..12),
        cut in any::<u16>(),
    ) {
        let mut log = IngestLog::new();
        for f in &frames {
            log.append(f);
        }
        prop_assert_eq!(log.frames(), frames.len() as u64);
        let bytes = log.as_bytes();
        let mut r = LogReader::new(bytes).expect("header");
        let got: Vec<Vec<u8>> = r.by_ref().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(r.error(), None);
        prop_assert_eq!(r.valid_prefix_len(), bytes.len());
        // a crash can cut the log anywhere; the reader must yield a
        // bitwise prefix of what was appended and nothing else
        let keep = LOG_MAGIC.len() + usize::from(cut) % (bytes.len() - LOG_MAGIC.len() + 1);
        let mut r2 = LogReader::new(&bytes[..keep]).expect("header survives any cut past it");
        let got2: Vec<Vec<u8>> = r2.by_ref().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(got2.as_slice(), &frames[..got2.len()]);
        prop_assert!(r2.valid_prefix_len() <= keep);
    }

    #[test]
    fn log_byte_flip_truncates_to_a_clean_prefix(
        n in 1usize..10,
        flip in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let mut log = IngestLog::new();
        let mut frames = Vec::new();
        for seq in 0..n {
            let (w, _) = encode_wire(2, 1, 3 + seq);
            log.append(&w);
            frames.push(w);
        }
        let mut bytes = log.into_bytes();
        let idx = LOG_MAGIC.len() + (flip as usize) % (bytes.len() - LOG_MAGIC.len());
        bytes[idx] ^= mask;
        let mut r = LogReader::new(&bytes).expect("magic untouched");
        let got: Vec<Vec<u8>> = r.by_ref().map(<[u8]>::to_vec).collect();
        // the chain CRC stops the read at (or before) the flipped
        // entry; everything yielded is still bitwise trustworthy
        prop_assert!(got.len() < n);
        prop_assert_eq!(got.as_slice(), &frames[..got.len()]);
        prop_assert!(r.error().is_some());
    }

    #[test]
    fn assembler_restores_an_adjacent_swap_bitwise(
        session in any::<u32>(),
        start_seq in any::<u16>(),
        n in 3usize..20,
        swap in any::<u32>(),
        salt in any::<u64>(),
    ) {
        // arbitrary payload bit patterns, delivered with one adjacent
        // pair swapped (never the first frame: the first arrival
        // anchors the session's sequence origin)
        let len = 4usize;
        let mut enc = SessionEncoder::with_start_seq(session, start_seq);
        let mut wire = Vec::new();
        let mut starts = Vec::new();
        let mut want_bits: Vec<u64> = Vec::new();
        for seq in 0..n as u64 {
            let ecg: Vec<f64> = (0..len)
                .map(|i| f64::from_bits(salt.wrapping_mul(seq + 1).wrapping_add(i as u64)))
                .collect();
            let z: Vec<f64> = ecg.iter().map(|v| f64::from_bits(v.to_bits() ^ 0x5A5A)).collect();
            want_bits.extend(ecg.iter().chain(&z).map(|v| v.to_bits()));
            starts.push(wire.len());
            enc.push_frame(&ecg, &z, &mut wire).expect("encode");
        }
        starts.push(wire.len());
        let s = 1 + (swap as usize) % (n - 2);
        let mut order: Vec<usize> = (0..n).collect();
        order.swap(s, s + 1);
        let mut asm = Assembler::new();
        let mut got_bits: Vec<u64> = Vec::new();
        for &idx in &order {
            let (frame, _) = FrameView::parse(&wire[starts[idx]..starts[idx + 1]]).expect("parse");
            asm.accept(&frame, |_, ecg, z| {
                got_bits.extend(ecg.iter().chain(z).map(|v| v.to_bits()));
            });
        }
        prop_assert_eq!(got_bits, want_bits);
        let st = asm.stats();
        prop_assert_eq!(
            (st.delivered, st.reordered, st.dropped, st.filled_samples),
            (n as u64, 1, 0, 0)
        );
    }

    #[test]
    fn segmented_log_any_cut_recovers_a_prefix_across_boundaries(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 1..24),
        max_frames in 1u64..5,
        cut in any::<u32>(),
    ) {
        let policy = SegmentPolicy { max_bytes: 4096, max_frames };
        let mut log = SegmentedLog::new(policy);
        for f in &frames {
            log.append(f);
        }
        let mut parts: Vec<(u64, Vec<u8>)> = log
            .segments()
            .map(|s| (s.id(), s.bytes().to_vec()))
            .collect();
        // A crash can cut the active segment anywhere past its header;
        // whatever survives must replay as a bitwise prefix.
        let tail = parts.last_mut().expect("non-empty");
        let span = tail.1.len() - LOG_MAGIC.len();
        let keep = LOG_MAGIC.len() + (cut as usize) % (span + 1);
        tail.1.truncate(keep);
        let rebuilt = SegmentedLog::from_segments(policy, &parts).expect("rebuild");
        let mut got = Vec::new();
        rebuilt
            .replay_from(&rebuilt.start_position(), |f| got.push(f.to_vec()))
            .expect("replay");
        prop_assert_eq!(got.as_slice(), &frames[..got.len()]);
        // A cut only ever hits the active segment, so at most one
        // segment's worth of frames is lost; earlier segments survive
        // untouched by construction.
        prop_assert!((frames.len() - got.len()) as u64 <= max_frames);
    }

    #[test]
    fn compaction_never_drops_entries_past_the_watermark(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 2..24),
        max_frames in 1u64..5,
        mark_at in any::<u32>(),
    ) {
        let policy = SegmentPolicy { max_bytes: 4096, max_frames };
        let mut log = SegmentedLog::new(policy);
        let k = (mark_at as usize) % frames.len();
        for f in &frames[..k] {
            log.append(f);
        }
        let mark = log.position();
        for f in &frames[k..] {
            log.append(f);
        }
        log.compact(&mark);
        // Everything past the watermark is still replayable, bitwise.
        let mut got = Vec::new();
        let replay = log.replay_from(&mark, |f| got.push(f.to_vec())).expect("replay");
        prop_assert_eq!(replay.frames as usize, frames.len() - k);
        prop_assert_eq!(got.as_slice(), &frames[k..]);
    }

    #[test]
    fn checkpoint_plus_suffix_equals_full_replay(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 2..24),
        max_frames in 1u64..5,
        mark_at in any::<u32>(),
        cut in any::<u16>(),
    ) {
        let policy = SegmentPolicy { max_bytes: 4096, max_frames };
        let mut log = SegmentedLog::new(policy);
        let k = (mark_at as usize) % frames.len();
        let mut covered: Vec<Vec<u8>> = Vec::new();
        for f in &frames[..k] {
            log.append(f);
            covered.push(f.clone());
        }
        // Seal a checkpoint at the watermark (sessions empty: this
        // property is about the log algebra, not engine state).
        let mut store = CheckpointStore::new();
        store.append(&Checkpoint { watermark: log.position(), sessions: Vec::new() });
        for f in &frames[k..] {
            log.append(f);
        }
        // Recover the checkpoint from store bytes cut anywhere in the
        // final append's tail window (the fsynced prefix survives).
        let bytes = store.as_bytes();
        let keep = bytes.len() - (cut as usize) % 3;
        let recovered = recover_latest(&bytes[..keep]).expect("store readable");
        let (watermark, covered_used) = match recovered {
            Some(r) => (r.checkpoint.watermark, covered),
            // Cut destroyed the only checkpoint: cold start from the
            // log head, nothing covered.
            None => (log.start_position(), Vec::new()),
        };
        let mut suffix = Vec::new();
        log.replay_from(&watermark, |f| suffix.push(f.to_vec())).expect("replay");
        let mut recovered_stream = covered_used;
        recovered_stream.extend(suffix);
        // replay(checkpoint + suffix) == replay(full log), bitwise.
        prop_assert_eq!(recovered_stream, frames);
    }
}
