//! Time sources for span timing.
//!
//! Spans measure durations against a [`Clock`] owned by their
//! [`crate::Registry`]. Production registries use [`MonotonicClock`]
//! (`std::time::Instant` against a per-registry epoch); tests inject a
//! [`ManualClock`] and advance it explicitly, which makes span timing
//! fully deterministic — a test can assert the exact recorded duration.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be monotone non-decreasing; span durations are
/// computed as differences of two readings.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;
}

/// Wall-clock monotonic time via [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — the deterministic test double.
///
/// ```
/// use cardiotouch_obs::clock::{Clock, ManualClock};
/// let c = ManualClock::default();
/// c.advance_us(250);
/// assert_eq!(c.now_ns(), 250_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Moves the clock forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.advance_ns(us.saturating_mul(1_000));
    }

    /// Sets the absolute reading. Callers are responsible for keeping it
    /// monotone if spans are open across the call.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_exact() {
        let c = ManualClock::default();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(7);
        c.advance_us(3);
        assert_eq!(c.now_ns(), 3_007);
        c.set_ns(42);
        assert_eq!(c.now_ns(), 42);
    }
}
