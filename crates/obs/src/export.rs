//! Snapshot exporters.
//!
//! Two shapes cover the workspace's needs:
//!
//! * [`Snapshot::to_json`] (in [`crate::registry`]) — one point-in-time
//!   document, pretty or compact; the CLI's `--metrics-out file.json`
//!   and `perf_bench`'s embedded `"metrics"` section use this.
//! * [`JsonlExporter`] — a streaming exporter writing one compact
//!   snapshot per line to any [`Write`] sink; `serve-sim --metrics-out
//!   file.jsonl` appends a line per scheduler tick, giving a time
//!   series that `tail -f` or any JSONL tool can follow live.

use std::io::{self, Write};

use crate::registry::Snapshot;

/// Streams snapshots as JSON Lines: one compact JSON object per line.
#[derive(Debug)]
pub struct JsonlExporter<W: Write> {
    sink: W,
    lines: u64,
}

impl<W: Write> JsonlExporter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        Self { sink, lines: 0 }
    }

    /// Writes `snapshot` as one line and flushes, so a crashed process
    /// loses at most the line being written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn export(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        writeln!(self.sink, "{}", snapshot.to_json(false))?;
        self.sink.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::registry::Registry;

    #[test]
    fn writes_one_parseable_line_per_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("jl.events");
        let mut exporter = JsonlExporter::new(Vec::new());
        for _ in 0..3 {
            c.inc();
            exporter.export(&reg.snapshot()).unwrap();
        }
        assert_eq!(exporter.lines(), 3);
        let text = String::from_utf8(exporter.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = parse(line).unwrap();
            let count = v.get("counters").unwrap().get("jl.events").unwrap();
            assert_eq!(count.as_f64(), Some((i + 1) as f64));
        }
    }
}
