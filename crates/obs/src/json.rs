//! Minimal JSON emit/parse helpers — enough to round-trip metric
//! snapshots without an external dependency.
//!
//! The emitter side is a pair of free functions used by
//! [`crate::Snapshot::to_json`]; the parser builds a tiny [`Value`]
//! tree and exists so exporters can be *validated*: tests and the CI
//! `metrics_check` binary parse emitted documents back and assert the
//! expected metric names are present. It accepts standard JSON
//! (objects, arrays, strings with escapes, numbers, booleans, null)
//! and rejects trailing garbage; it is not meant to be a general
//! high-performance parser.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` as the contents of a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` compactly (integers without a trailing `.0`
/// would be ambiguous with int fields, so they keep one decimal);
/// non-finite values become `null`.
#[must_use]
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys are sorted (JSON objects are unordered).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if this is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing non-whitespace.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are replaced, not paired — snapshot
                            // names never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let raw = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(2.5), "2.500");
        assert_eq!(number(f64::NAN), "null");
    }
}
