//! `cardiotouch-obs` — zero-dependency observability substrate for the
//! cardiotouch workspace.
//!
//! The paper's device must *prove* its real-time and power budget
//! (beat-to-beat deadlines, 106 h on a 710 mAh cell), and the
//! production north star — fleets of concurrent streaming sessions —
//! needs the serving stack to measure itself uniformly rather than with
//! ad-hoc `Vec`-sort percentiles and one-off atomics. This crate is
//! that layer, built on `std` alone:
//!
//! * **[`Registry`]** — named atomic [`Counter`]s and [`Gauge`]s plus
//!   lock-free log-linear [`Histogram`]s with thread-sharded writes and
//!   p50/p90/p99/p999 quantile queries (§ [`metrics`]);
//! * **spans** — RAII [`span!`] timers over a thread-local span stack,
//!   driven by an injectable [`clock::Clock`] so tests are
//!   deterministic (§ [`span`], [`clock`]);
//! * **exporters** — a point-in-time [`Snapshot`] (plain data,
//!   optionally serde-derived, with a dependency-free JSON renderer)
//!   and a JSONL streaming exporter (§ [`export`]), plus a minimal JSON
//!   parser so emitted documents can be validated in tests and CI
//!   (§ [`json`]).
//!
//! # Naming convention
//!
//! Metric names are dotted paths `crate.component.event`; measured
//! quantities carry a unit suffix (`_us`, `_ms`, `_bytes`). Span names
//! double as histogram names and therefore end in `_us` (spans record
//! microseconds). Counters count events and use plural nouns
//! (`beats_emitted`, `delineation_failures`).
//!
//! # Global vs. scoped registries
//!
//! Process-wide instrumentation uses the global registry via the
//! free functions below ([`counter`], [`gauge`], [`histogram`],
//! [`snapshot`], [`span!`]). Tests needing isolation or deterministic
//! time build their own [`Registry`] (optionally over a
//! [`clock::ManualClock`]) and use its methods directly.
//!
//! ```
//! use cardiotouch_obs as obs;
//!
//! let beats = obs::counter("example.beats_emitted");
//! beats.add(3);
//! {
//!     let _span = obs::span!("example.hop_us");
//!     // timed work…
//! }
//! let snap = obs::snapshot();
//! assert!(snap.counter("example.beats_emitted").unwrap() >= 3);
//! assert!(snap.histogram("example.hop_us").unwrap().count >= 1);
//! ```

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

use std::sync::OnceLock;

pub use export::JsonlExporter;
pub use metrics::{Counter, Gauge, Histogram, HistogramStat, LocalHistogram};
pub use registry::{Registry, Snapshot};

/// The process-wide registry backing [`counter`]/[`gauge`]/
/// [`histogram`]/[`snapshot`] and the [`span!`] macro.
#[must_use]
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Global-registry counter handle (registers on first use).
#[must_use]
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Global-registry gauge handle (registers on first use).
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Global-registry histogram handle (registers on first use).
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Point-in-time snapshot of the global registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Enables or disables all recording on the global registry. Disabled
/// metrics keep their values and drop updates; each instrumentation
/// site degrades to one relaxed atomic load.
pub fn set_enabled(enabled: bool) {
    registry().set_enabled(enabled);
}

/// Whether global-registry recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    registry().enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_live() {
        let a = counter("lib.test.events");
        let b = counter("lib.test.events");
        a.inc();
        b.inc();
        assert!(snapshot().counter("lib.test.events").unwrap() >= 2);
        assert!(enabled());
    }

    #[test]
    fn span_macro_times_into_the_global_registry() {
        {
            let _g = span!("lib.test.block_us");
        }
        let snap = snapshot();
        assert!(snap.histogram("lib.test.block_us").unwrap().count >= 1);
    }
}
