//! Metric primitives: atomic counters, gauges, and lock-free
//! log-linear histograms.
//!
//! All handles are cheap `Arc` clones of a shared cell registered in a
//! [`crate::Registry`]; updating a metric never takes a lock. Every
//! mutator is gated by the owning registry's enabled flag, so disabling
//! observability reduces each update to one relaxed atomic load — that
//! gate is what lets `perf_bench` measure the instrumentation overhead
//! of the streaming hot path directly.
//!
//! # Histogram design
//!
//! [`Histogram`] buckets values on a **log-linear** grid: values below
//! 2⁵ = 32 get exact unit buckets, and every octave `[2ᵏ, 2ᵏ⁺¹)` above
//! that is split into 32 linear sub-buckets. The worst-case relative
//! width of a bucket is 1/32 ≈ 3.1 %, so any quantile read off the grid
//! (bucket midpoint) is within ~1.6 % of the exact order statistic —
//! ample for latency percentiles, at 1 920 buckets total.
//!
//! Recording is lock-free and contention-free: each histogram keeps a
//! small set of **shards** (arrays of `AtomicU64` counts) and every
//! thread hashes to a stable shard, so concurrent recorders touch
//! disjoint cache lines. Queries merge the shards; merging loses
//! nothing because bucket counts are order-independent sums. The
//! non-atomic [`LocalHistogram`] twin serves single-threaded hot loops
//! and exact-reference tests, and can be absorbed into a shared
//! [`Histogram`] — the per-thread-shard-then-merge pattern.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: 2⁵ = 32 linear divisions per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub(crate) const NUM_BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);
/// Number of write shards per histogram.
const SHARDS: usize = 8;

/// Maps a value to its bucket index (monotone in the value).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) - SUB;
    (msb - SUB_BITS + 1) as usize * SUB + sub
}

/// Lower bound and width of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, 1);
    }
    let block = (idx / SUB) as u32;
    let msb = block + SUB_BITS - 1;
    let sub = (idx % SUB) as u64;
    let shift = msb - SUB_BITS;
    ((SUB as u64 + sub) << shift, 1u64 << shift)
}

/// Representative value reported for bucket `idx` (exact for the unit
/// buckets, midpoint otherwise).
fn representative(idx: usize) -> f64 {
    let (lo, width) = bucket_bounds(idx);
    if width == 1 {
        lo as f64
    } else {
        lo as f64 + width as f64 / 2.0
    }
}

/// Nearest-rank quantile over merged bucket counts.
pub(crate) fn quantile_from_counts(counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
    let mut cum = 0u64;
    for (idx, &c) in counts.iter().enumerate() {
        cum += c;
        if cum > rank {
            return representative(idx);
        }
    }
    representative(NUM_BUCKETS - 1)
}

/// Stable per-thread shard assignment (round-robin at first use).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    IDX.with(|i| *i)
}

/// A monotone event counter. Handles are cheap clones of one shared
/// atomic; two handles compare equal when they share the cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    gate: Arc<AtomicBool>,
}

impl Counter {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
            gate,
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl PartialEq for Counter {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A last-written-wins instantaneous value (queue depths, resident
/// entries, sessions active).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    gate: Arc<AtomicBool>,
}

impl Gauge {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self {
            cell: Arc::new(AtomicI64::new(0)),
            gate,
        }
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl PartialEq for Gauge {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// Shared state behind a [`Histogram`] handle.
pub(crate) struct HistogramCell {
    /// `SHARDS` independent bucket arrays; threads write disjoint shards.
    shards: Vec<Vec<AtomicU64>>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log-linear histogram of `u64` observations (typically
/// durations in microseconds or nanoseconds — the unit is the caller's
/// naming convention, e.g. a `…_us` metric records microseconds).
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
    gate: Arc<AtomicBool>,
}

impl Histogram {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self {
            cell: Arc::new(HistogramCell::new()),
            gate,
        }
    }

    /// Records one observation. Lock-free; concurrent recorders land on
    /// distinct shards.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.gate.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.cell;
        c.shards[shard_index()][bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges a thread-local histogram into this one (ignores the gate:
    /// the local recorder already decided to measure).
    pub fn absorb(&self, local: &LocalHistogram) {
        let c = &self.cell;
        let shard = &c.shards[shard_index()];
        for (idx, &n) in local.counts.iter().enumerate() {
            if n > 0 {
                shard[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        if local.count > 0 {
            c.count.fetch_add(local.count, Ordering::Relaxed);
            c.sum.fetch_add(local.sum, Ordering::Relaxed);
            c.min.fetch_min(local.min, Ordering::Relaxed);
            c.max.fetch_max(local.max, Ordering::Relaxed);
        }
    }

    /// Total observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Merged bucket counts plus the scalar accumulators
    /// `(counts, count, sum, min, max)`.
    fn merged(&self) -> (Vec<u64>, u64, u64, u64, u64) {
        let c = &self.cell;
        let mut counts = vec![0u64; NUM_BUCKETS];
        for shard in &c.shards {
            for (dst, bucket) in counts.iter_mut().zip(shard) {
                *dst += bucket.load(Ordering::Relaxed);
            }
        }
        (
            counts,
            c.count.load(Ordering::Relaxed),
            c.sum.load(Ordering::Relaxed),
            c.min.load(Ordering::Relaxed),
            c.max.load(Ordering::Relaxed),
        )
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) of everything recorded so
    /// far; `0.0` when empty. Accurate to the bucket's relative width
    /// (≤ 1/32).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let (counts, total, _, _, _) = self.merged();
        quantile_from_counts(&counts, total, q)
    }

    /// Point-in-time distribution summary under `name`.
    #[must_use]
    pub fn stat(&self, name: &str) -> HistogramStat {
        let (counts, count, sum, min, max) = self.merged();
        HistogramStat::from_parts(name, &counts, count, sum, min, max)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// Single-threaded histogram twin: plain `u64` buckets, no atomics, no
/// gate. Use it where one thread owns the measurement loop (e.g. the
/// scheduler's per-run latency record) and merge into a shared
/// [`Histogram`] with [`Histogram::absorb`] when cross-thread
/// aggregation is wanted.
#[derive(Clone)]
pub struct LocalHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LocalHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`); `0.0` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(&self.counts, self.count, q)
    }

    /// Point-in-time distribution summary under `name`.
    #[must_use]
    pub fn stat(&self, name: &str) -> HistogramStat {
        HistogramStat::from_parts(name, &self.counts, self.count, self.sum, self.min, self.max)
    }
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LocalHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// Exported distribution summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistogramStat {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl HistogramStat {
    fn from_parts(name: &str, counts: &[u64], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Self {
            name: name.to_owned(),
            count,
            min: if count == 0 { 0 } else { min },
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile_from_counts(counts, count, 0.50),
            p90: quantile_from_counts(counts, count, 0.90),
            p99: quantile_from_counts(counts, count, 0.99),
            p999: quantile_from_counts(counts, count, 0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn bucket_index_is_monotone_and_exhaustive() {
        // unit buckets are exact
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // monotone across octave boundaries
        let mut prev = 0;
        for shift in 0..58 {
            for v in [31u64 << shift, 32 << shift, 33 << shift] {
                let idx = bucket_index(v);
                assert!(idx >= prev, "index regressed at {v}");
                assert!(idx < NUM_BUCKETS);
                prev = idx;
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bounds_invert_the_index() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u64::MAX / 3] {
            let idx = bucket_index(v);
            let (lo, width) = bucket_bounds(idx);
            assert!(lo <= v && v < lo.saturating_add(width), "v={v} idx={idx}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LocalHistogram::new();
        for v in [3u64, 3, 7, 9] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 3.0);
        assert_eq!(h.quantile(1.0), 9.0);
        let s = h.stat("x");
        assert_eq!((s.count, s.min, s.max), (4, 3, 9));
        assert!((s.mean - 5.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LocalHistogram::new();
        let mut values: Vec<u64> = (0..5_000).map(|i| 100 + 37 * i % 900_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = values[((values.len() - 1) as f64 * q).round() as usize] as f64;
            let approx = h.quantile(q);
            assert!(
                (approx - exact).abs() <= exact / 32.0 + 1.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new(gate());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.stat("e");
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn absorb_merges_local_shards() {
        let shared = Histogram::new(gate());
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 1_000);
        }
        shared.absorb(&a);
        shared.absorb(&b);
        let s = shared.stat("m");
        assert_eq!(s.count, 200);
        assert_eq!(s.min, 1);
        // rank 100 of the 200 merged values is the smallest of `b`
        assert!((s.p50 - 1_000.0).abs() <= 1_000.0 / 32.0, "p50={}", s.p50);
    }

    #[test]
    fn disabled_gate_drops_records() {
        let g = gate();
        let c = Counter::new(Arc::clone(&g));
        let h = Histogram::new(Arc::clone(&g));
        let gau = Gauge::new(Arc::clone(&g));
        g.store(false, Ordering::SeqCst);
        c.inc();
        h.record(5);
        gau.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(gau.get(), 0);
        g.store(true, Ordering::SeqCst);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
