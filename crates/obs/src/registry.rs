//! Named metric registry and point-in-time snapshots.
//!
//! A [`Registry`] maps dotted metric names (`crate.component.event`,
//! unit suffix on measured quantities — see `DESIGN.md` §6c) to
//! counters, gauges and histograms. Lookup takes a mutex once per
//! *handle* acquisition; the handles themselves update lock-free, so
//! hot paths resolve their metrics at construction time and never touch
//! the registry again.
//!
//! [`Registry::snapshot`] freezes every metric into a [`Snapshot`] —
//! plain data, serde-serializable (behind the `serde` feature) and
//! renderable as JSON via [`Snapshot::to_json`] with zero dependencies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};
use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramStat};
use crate::span::SpanGuard;

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A process- or test-scoped collection of named metrics sharing one
/// clock and one enable gate.
///
/// The crate-level [`crate::registry`] function returns the global
/// instance; tests build private registries (optionally with a
/// [`crate::clock::ManualClock`]) so their readings are isolated and
/// deterministic.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    clock: Arc<dyn Clock>,
    gate: Arc<AtomicBool>,
}

impl Registry {
    /// Creates an enabled registry on the monotonic wall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Creates an enabled registry timing spans against `clock`.
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
            clock,
            gate: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Whether metric updates are currently recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.gate.load(Ordering::Relaxed)
    }

    /// Globally enables or disables recording on every handle issued by
    /// this registry (existing values are kept, updates are dropped
    /// while disabled). Used by `perf_bench` to measure instrumentation
    /// overhead.
    pub fn set_enabled(&self, enabled: bool) {
        self.gate.store(enabled, Ordering::SeqCst);
    }

    /// The registry's span clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind — metric names are a static, crate-owned namespace, so a
    /// kind collision is a programming error.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::new(Arc::clone(&self.gate))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is already registered as a non-counter"),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::new(Arc::clone(&self.gate))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is already registered as a non-gauge"),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(Arc::clone(&self.gate))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is already registered as a non-histogram"),
        }
    }

    /// Opens a scoped span timer recording into the histogram `name`
    /// (microseconds) when the returned guard drops. See
    /// [`crate::span!`] for the global-registry shorthand.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::enter_in(self, name)
    }

    /// Freezes every registered metric into plain data.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().expect("obs registry poisoned");
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push(h.stat(name)),
            }
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time export of a registry: plain data, sorted by metric
/// name within each kind.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// Distribution summaries for every histogram.
    pub histograms: Vec<HistogramStat>,
}

impl Snapshot {
    /// Value of the counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    /// `pretty` adds two-space indentation; compact output is a single
    /// line, suitable as one JSONL record.
    #[must_use]
    pub fn to_json(&self, pretty: bool) -> String {
        let (nl, ind, ind2, ind3) = if pretty {
            ("\n", "  ", "    ", "      ")
        } else {
            ("", "", "", "")
        };
        let sep = if pretty { ": " } else { ":" };
        let mut out = String::from("{");
        out.push_str(nl);

        out.push_str(&format!("{ind}\"counters\"{sep}{{{nl}"));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!(
                "{ind2}\"{}\"{sep}{v}{comma}{nl}",
                json::escape(name)
            ));
        }
        out.push_str(&format!("{ind}}},{nl}"));

        out.push_str(&format!("{ind}\"gauges\"{sep}{{{nl}"));
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            out.push_str(&format!(
                "{ind2}\"{}\"{sep}{v}{comma}{nl}",
                json::escape(name)
            ));
        }
        out.push_str(&format!("{ind}}},{nl}"));

        out.push_str(&format!("{ind}\"histograms\"{sep}{{{nl}"));
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "{ind2}\"{}\"{sep}{{{nl}{ind3}\"count\"{sep}{},{nl}{ind3}\"min\"{sep}{},{nl}{ind3}\"max\"{sep}{},{nl}{ind3}\"mean\"{sep}{},{nl}{ind3}\"p50\"{sep}{},{nl}{ind3}\"p90\"{sep}{},{nl}{ind3}\"p99\"{sep}{},{nl}{ind3}\"p999\"{sep}{}{nl}{ind2}}}{comma}{nl}",
                json::escape(&h.name),
                h.count,
                h.min,
                h.max,
                json::number(h.mean),
                json::number(h.p50),
                json::number(h.p90),
                json::number(h.p99),
                json::number(h.p999),
            ));
        }
        out.push_str(&format!("{ind}}}{nl}"));
        out.push('}');
        if pretty {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn handles_share_cells_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(a, b);
        assert_ne!(a, reg.counter("x.other"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        let _c = reg.counter("x");
        let _h = reg.histogram("x");
    }

    #[test]
    fn snapshot_collects_everything_sorted() {
        let reg = Registry::new();
        reg.counter("b.count").add(5);
        reg.counter("a.count").add(1);
        reg.gauge("depth").set(-3);
        let h = reg.histogram("lat_us");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(1));
        assert_eq!(snap.counter("b.count"), Some(5));
        assert_eq!(snap.counters[0].0, "a.count", "sorted by name");
        assert_eq!(snap.gauge("depth"), Some(-3));
        let stat = snap.histogram("lat_us").unwrap();
        assert_eq!(stat.count, 3);
        assert_eq!(stat.min, 10);
        assert_eq!(stat.max, 30);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("c.one").inc();
        reg.gauge("g.two").set(7);
        reg.histogram("h.three_us").record(1_500);
        let snap = reg.snapshot();
        for pretty in [false, true] {
            let text = snap.to_json(pretty);
            let v = parse(&text).unwrap_or_else(|e| panic!("pretty={pretty}: {e}\n{text}"));
            assert_eq!(
                v.get("counters").unwrap().get("c.one").unwrap().as_f64(),
                Some(1.0)
            );
            assert_eq!(
                v.get("gauges").unwrap().get("g.two").unwrap().as_f64(),
                Some(7.0)
            );
            let h = v.get("histograms").unwrap().get("h.three_us").unwrap();
            assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
            assert!(h.get("p50").unwrap().as_f64().unwrap() > 1_400.0);
        }
        // compact form is a single line (a valid JSONL record)
        assert!(!snap.to_json(false).contains('\n'));
    }

    #[test]
    fn disabling_freezes_values() {
        let reg = Registry::new();
        let c = reg.counter("frozen");
        c.add(4);
        reg.set_enabled(false);
        assert!(!reg.enabled());
        c.add(10);
        assert_eq!(reg.snapshot().counter("frozen"), Some(4));
        reg.set_enabled(true);
        c.inc();
        assert_eq!(reg.snapshot().counter("frozen"), Some(5));
    }
}
