//! Scoped span timers over a thread-local span stack.
//!
//! A span is an RAII guard: entering pushes the span name onto the
//! current thread's stack and reads the registry clock; dropping pops
//! the stack and records the elapsed time — in **microseconds**, per
//! the `…_us` naming convention — into the registry histogram of the
//! same name. Nesting is free (the stack is just a `Vec`), and
//! [`depth`]/[`current`] expose it for tests and debugging.
//!
//! Spans opened while the registry is disabled skip the clock reads and
//! the stack entirely, so a disabled process pays one atomic load per
//! span site.

use std::cell::RefCell;

use crate::registry::Registry;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Number of spans currently open on this thread.
#[must_use]
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Name of the innermost open span on this thread, if any.
#[must_use]
pub fn current() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().copied())
}

/// An open span; records its duration on drop.
///
/// Created by [`Registry::span`] or the [`crate::span!`] macro. Guards
/// should drop in reverse creation order (normal scoping guarantees
/// this); an out-of-order drop still records correct durations, only
/// the nesting stack telemetry degrades.
#[derive(Debug)]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl<'r> SpanGuard<'r> {
    /// Opens a span on `registry` timing into histogram `name`.
    pub(crate) fn enter_in(registry: &'r Registry, name: &'static str) -> Self {
        let active = registry.enabled();
        let start_ns = if active {
            STACK.with(|s| s.borrow_mut().push(name));
            registry.clock().now_ns()
        } else {
            0
        };
        Self {
            registry,
            name,
            start_ns,
            active,
        }
    }

    /// Opens a span on the global registry (what [`crate::span!`]
    /// expands to).
    #[must_use]
    pub fn enter(name: &'static str) -> SpanGuard<'static> {
        SpanGuard::enter_in(crate::registry(), name)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let elapsed_ns = self.registry.clock().now_ns().saturating_sub(self.start_ns);
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(pos);
            }
        });
        self.registry
            .histogram(self.name)
            .record(elapsed_ns / 1_000);
    }
}

/// Opens a scoped span timer on the **global** registry: the guard
/// records its lifetime (microseconds) into the histogram named by the
/// argument when it drops.
///
/// ```
/// {
///     let _span = cardiotouch_obs::span!("example.work_us");
///     // ... timed work ...
/// } // histogram `example.work_us` gains one observation here
/// assert!(cardiotouch_obs::snapshot().histogram("example.work_us").is_some());
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;

    #[test]
    fn records_exact_durations_with_a_manual_clock() {
        let clock = Arc::new(ManualClock::default());
        let reg = Registry::with_clock(Arc::clone(&clock) as Arc<dyn crate::clock::Clock>);
        {
            let _g = reg.span("t.outer_us");
            clock.advance_us(1_000);
            {
                let _h = reg.span("t.inner_us");
                clock.advance_us(200);
                assert_eq!(depth(), 2);
                assert_eq!(current(), Some("t.inner_us"));
            }
            clock.advance_us(300);
        }
        assert_eq!(depth(), 0);
        let snap = reg.snapshot();
        let inner = snap.histogram("t.inner_us").unwrap();
        let outer = snap.histogram("t.outer_us").unwrap();
        assert_eq!(inner.count, 1);
        assert_eq!(outer.count, 1);
        // 200 µs and 1 500 µs, up to log-linear bucket resolution (1/32)
        assert!((inner.p50 - 200.0).abs() <= 200.0 / 32.0);
        assert!((outer.p50 - 1_500.0).abs() <= 1_500.0 / 32.0);
        assert_eq!(inner.min, 200);
        assert_eq!(outer.min, 1_500);
    }

    #[test]
    fn disabled_registry_skips_stack_and_recording() {
        let reg = Registry::new();
        reg.set_enabled(false);
        {
            let _g = reg.span("t.skipped_us");
            assert_eq!(depth(), 0);
        }
        assert!(reg.snapshot().histogram("t.skipped_us").is_none());
    }

    #[test]
    fn repeated_spans_accumulate() {
        let clock = Arc::new(ManualClock::default());
        let reg = Registry::with_clock(Arc::clone(&clock) as Arc<dyn crate::clock::Clock>);
        for us in [100u64, 200, 300] {
            let _g = reg.span("t.loop_us");
            clock.advance_us(us);
        }
        let stat = reg.snapshot();
        let h = stat.histogram("t.loop_us").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 300);
    }
}
