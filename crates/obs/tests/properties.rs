//! Property and concurrency tests for the observability substrate:
//! histogram quantile accuracy against an exact sorted reference,
//! cross-thread counter/histogram merge correctness, and deterministic
//! span timing through an injected [`ManualClock`].

use std::sync::Arc;
use std::thread;

use cardiotouch_obs::clock::{Clock, ManualClock};
use cardiotouch_obs::{LocalHistogram, Registry};
use proptest::prelude::*;

/// Worst-case relative half-width of a log-linear bucket (32 linear
/// sub-buckets per octave → bucket width ≤ lower/32, midpoint within
/// half of that).
const BUCKET_REL_ERR: f64 = 1.0 / 32.0;

/// Exact nearest-rank quantile over raw samples.
fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank] as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile of a histogram lands within one
    /// log-linear bucket of the exact order statistic, across sample
    /// counts and seven orders of magnitude of values.
    #[test]
    fn quantiles_match_exact_reference(
        samples in prop::collection::vec(1u64..10_000_000, 1..600),
    ) {
        let mut h = LocalHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = h.quantile(q);
            let tol = exact * BUCKET_REL_ERR + 1.0;
            prop_assert!(
                (approx - exact).abs() <= tol,
                "q={}: approx {} vs exact {} (n={})", q, approx, exact, sorted.len()
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let stat = h.stat("q");
        prop_assert_eq!(stat.min, sorted[0]);
        prop_assert_eq!(stat.max, *sorted.last().unwrap());
    }

    /// Recording through per-thread `LocalHistogram`s merged with
    /// `absorb` is indistinguishable (same count/min/max, quantiles
    /// within bucket resolution) from recording everything into the
    /// shared histogram directly.
    #[test]
    fn sharded_merge_equals_direct_recording(
        per_thread in prop::collection::vec(
            prop::collection::vec(1u64..1_000_000, 1..200),
            2..5,
        ),
    ) {
        let reg = Registry::new();
        let merged = reg.histogram("merge.h_us");
        let direct = reg.histogram("direct.h_us");
        thread::scope(|scope| {
            for chunk in &per_thread {
                let merged = merged.clone();
                scope.spawn(move || {
                    let mut local = LocalHistogram::new();
                    for &v in chunk {
                        local.record(v);
                    }
                    merged.absorb(&local);
                });
            }
        });
        for chunk in &per_thread {
            for &v in chunk {
                direct.record(v);
            }
        }
        let m = merged.stat("m");
        let d = direct.stat("d");
        prop_assert_eq!(m.count, d.count);
        prop_assert_eq!(m.min, d.min);
        prop_assert_eq!(m.max, d.max);
        for (qm, qd) in [(m.p50, d.p50), (m.p90, d.p90), (m.p99, d.p99), (m.p999, d.p999)] {
            prop_assert!((qm - qd).abs() < 1e-9, "{} vs {}", qm, qd);
        }
    }
}

#[test]
fn counters_merge_across_threads_without_loss() {
    let reg = Registry::new();
    let c = reg.counter("merge.events");
    let h = reg.histogram("merge.lat_us");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    thread::scope(|scope| {
        for t in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    // distinct per-thread value ranges so every shard
                    // contributes distinguishable buckets
                    h.record((t as u64 + 1) * 1_000 + (i % 7));
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    let stat = h.stat("m");
    assert_eq!(stat.count, THREADS as u64 * PER_THREAD);
    assert_eq!(stat.min, 1_000);
    assert!(stat.max >= 8_000);
    // p50 sits between the 4th and 5th thread's value band
    assert!(
        stat.p50 >= 3_000.0 && stat.p50 <= 6_000.0,
        "p50={}",
        stat.p50
    );
}

#[test]
fn span_timing_is_deterministic_with_a_manual_clock() {
    let clock = Arc::new(ManualClock::default());
    let reg = Registry::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);

    // Three nested hops with exactly known durations.
    for (outer_us, inner_us) in [(5_000u64, 1_000u64), (8_000, 2_000), (13_000, 3_000)] {
        let _hop = reg.span("det.hop_us");
        clock.advance_us(outer_us - inner_us);
        {
            let _delineate = reg.span("det.delineate_us");
            clock.advance_us(inner_us);
        }
    }

    let snap = reg.snapshot();
    let hop = snap.histogram("det.hop_us").unwrap();
    let inner = snap.histogram("det.delineate_us").unwrap();
    assert_eq!(hop.count, 3);
    assert_eq!(inner.count, 3);
    // exact extremes survive (min/max track raw microsecond values)
    assert_eq!(hop.min, 5_000);
    assert_eq!(hop.max, 13_000);
    assert_eq!(inner.min, 1_000);
    assert_eq!(inner.max, 3_000);
    // median within bucket resolution of the exact middle duration
    assert!((hop.p50 - 8_000.0).abs() <= 8_000.0 * BUCKET_REL_ERR);
    assert!((inner.p50 - 2_000.0).abs() <= 2_000.0 * BUCKET_REL_ERR);
}

#[test]
fn snapshot_json_survives_adversarial_metric_names() {
    let reg = Registry::new();
    reg.counter("weird.\"quoted\"\\name\nline").add(2);
    let snap = reg.snapshot();
    let text = snap.to_json(true);
    let v = cardiotouch_obs::json::parse(&text).expect("emitted JSON must parse");
    let counters = v.get("counters").unwrap().as_obj().unwrap();
    assert_eq!(
        counters
            .get("weird.\"quoted\"\\name\nline")
            .and_then(|x| x.as_f64()),
        Some(2.0)
    );
}
