//! Corpus enumeration for conformance and accuracy testing.
//!
//! The conformance subsystem (the `cardiotouch-conformance` crate) pins
//! a seeded corpus of scenarios — subjects × positions × injection
//! frequencies — and renders each cell to a [`PairedRecording`] with
//! ground truth. This module owns the *enumeration* side: a stable,
//! human-readable identity per grid cell ([`GridCell::id`]) and the
//! cartesian-product helper ([`enumerate`]), so every layer (golden
//! files, accuracy snapshots, CI logs) names the same scenario the same
//! way.
//!
//! Identities are part of the committed golden-file format: changing
//! them invalidates every golden vector, so they are deliberately
//! boring — `s<subject>-p<position>-f<freq>` with the frequency in
//! kilohertz when it divides evenly (`f50k`), raw hertz otherwise.

use crate::path::Position;
use crate::scenario::{PairedRecording, Protocol};
use crate::subject::Population;
use crate::PhysioError;

/// One cell of the study grid: a subject (0-based index into the
/// population), an arm position and an injection frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCell {
    /// 0-based subject index into the population.
    pub subject: usize,
    /// Arm position of the touch measurement.
    pub position: Position,
    /// Injection frequency, hertz.
    pub freq_hz: f64,
}

impl GridCell {
    /// Stable identity used in golden-file names and report rows, e.g.
    /// `s1-p2-f50k` (1-based subject, paper position index, frequency
    /// in kHz when whole, raw Hz otherwise).
    #[must_use]
    pub fn id(&self) -> String {
        let khz = self.freq_hz / 1000.0;
        let freq = if khz >= 1.0 && khz.fract() == 0.0 {
            format!("{}k", khz as u64)
        } else {
            format!("{}", self.freq_hz)
        };
        format!("s{}-p{}-f{freq}", self.subject + 1, self.position.index())
    }

    /// Renders the cell to one deterministic recording: the same
    /// `(cell, protocol, seed)` always yields the same channels and
    /// ground truth.
    ///
    /// # Errors
    ///
    /// * [`PhysioError::InvalidParameter`] when `subject` is out of
    ///   range for `population`;
    /// * generation errors from the underlying physiological models.
    pub fn render(
        &self,
        population: &Population,
        protocol: &Protocol,
        seed: u64,
    ) -> Result<PairedRecording, PhysioError> {
        let subject = population.subjects().get(self.subject).ok_or({
            PhysioError::InvalidParameter {
                name: "subject",
                value: self.subject as f64,
                constraint: "must index into the population",
            }
        })?;
        PairedRecording::generate(subject, self.position, self.freq_hz, protocol, seed)
    }
}

/// Cartesian product of subjects × positions × frequencies, in
/// deterministic row-major order (subjects outermost, frequencies
/// innermost) — the enumeration every corpus derives from.
#[must_use]
pub fn enumerate(subjects: &[usize], positions: &[Position], freqs_hz: &[f64]) -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(subjects.len() * positions.len() * freqs_hz.len());
    for &subject in subjects {
        for &position in positions {
            for &freq_hz in freqs_hz {
                cells.push(GridCell {
                    subject,
                    position,
                    freq_hz,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let cells = enumerate(&[0, 2, 4], &Position::ALL, &[2_000.0, 50_000.0, 1_500.0]);
        assert_eq!(cells.len(), 27);
        assert_eq!(cells[0].id(), "s1-p1-f2k");
        assert_eq!(cells[1].id(), "s1-p1-f50k");
        assert_eq!(cells[2].id(), "s1-p1-f1500");
        let mut ids: Vec<String> = cells.iter().map(GridCell::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 27, "grid-cell ids must be unique");
    }

    #[test]
    fn render_is_deterministic_and_validates_subject() {
        let population = Population::reference_five();
        let protocol = Protocol {
            duration_s: 8.0,
            ..Protocol::paper_default()
        };
        let cell = GridCell {
            subject: 1,
            position: Position::Two,
            freq_hz: 50_000.0,
        };
        let a = cell.render(&population, &protocol, 7).unwrap();
        let b = cell.render(&population, &protocol, 7).unwrap();
        assert_eq!(a.device_ecg(), b.device_ecg());
        assert_eq!(a.device_z(), b.device_z());

        let bad = GridCell {
            subject: 99,
            ..cell
        };
        assert!(bad.render(&population, &protocol, 7).is_err());
    }
}
