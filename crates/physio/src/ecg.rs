//! Synthetic ECG waveform generation.
//!
//! Each cardiac cycle is rendered as a sum of Gaussian bumps for the P, Q,
//! R, S and T waves — the standard reduced form of the McSharry/ECGSYN
//! dynamical model, sufficient here because the downstream consumer is a
//! QRS detector (Pan–Tompkins), not a morphology classifier. The R-peak
//! sample positions are exact ground truth for evaluating detection.

use crate::heart::Beat;

/// Shape parameters of one ECG wave component.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WaveComponent {
    /// Centre offset from the R peak, seconds (negative = before R).
    pub offset_s: f64,
    /// Gaussian width, seconds.
    pub sigma_s: f64,
    /// Peak amplitude, millivolts.
    pub amplitude_mv: f64,
}

/// Morphology of a synthetic ECG: one [`WaveComponent`] per wave.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EcgMorphology {
    /// P wave (atrial depolarization).
    pub p: WaveComponent,
    /// Q wave.
    pub q: WaveComponent,
    /// R wave (the detector's target).
    pub r: WaveComponent,
    /// S wave.
    pub s: WaveComponent,
    /// T wave (ventricular repolarization). Its offset scales with √RR.
    pub t: WaveComponent,
}

impl Default for EcgMorphology {
    fn default() -> Self {
        Self {
            p: WaveComponent {
                offset_s: -0.17,
                sigma_s: 0.022,
                amplitude_mv: 0.12,
            },
            q: WaveComponent {
                offset_s: -0.035,
                sigma_s: 0.009,
                amplitude_mv: -0.10,
            },
            r: WaveComponent {
                offset_s: 0.0,
                sigma_s: 0.010,
                amplitude_mv: 1.0,
            },
            s: WaveComponent {
                offset_s: 0.035,
                sigma_s: 0.010,
                amplitude_mv: -0.22,
            },
            t: WaveComponent {
                offset_s: 0.30,
                sigma_s: 0.055,
                amplitude_mv: 0.30,
            },
        }
    }
}

impl EcgMorphology {
    /// Renders the continuous ECG of the beats in `schedule` over
    /// `n` samples at rate `fs`, in millivolts. Beats are additive, so
    /// waves spanning a beat boundary are handled naturally.
    #[must_use]
    pub fn render(&self, schedule: &[Beat], n: usize, fs: f64) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for beat in schedule {
            // T-wave position adapts to cycle length (QT ∝ √RR, Bazett).
            let rr_ref: f64 = beat.rr / 0.857; // 70 bpm reference
            let waves = [
                self.p,
                self.q,
                self.r,
                self.s,
                WaveComponent {
                    offset_s: self.t.offset_s * rr_ref.sqrt(),
                    ..self.t
                },
            ];
            for w in waves {
                let centre = beat.t_r + w.offset_s;
                let amp = w.amplitude_mv * beat.amplitude;
                // render only ±5σ around the centre
                let lo = ((centre - 5.0 * w.sigma_s) * fs).floor().max(0.0) as usize;
                let hi = (((centre + 5.0 * w.sigma_s) * fs).ceil() as usize).min(n);
                for (i, xi) in x.iter_mut().enumerate().take(hi).skip(lo) {
                    let t = i as f64 / fs - centre;
                    *xi += amp * (-t * t / (2.0 * w.sigma_s * w.sigma_s)).exp();
                }
            }
        }
        x
    }

    /// Exact R-peak sample indices for `schedule` at rate `fs`, clipped to
    /// `n` samples — the detection ground truth.
    #[must_use]
    pub fn r_peak_indices(schedule: &[Beat], n: usize, fs: f64) -> Vec<usize> {
        schedule
            .iter()
            .map(|b| (b.t_r * fs).round() as usize)
            .filter(|&i| i < n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heart::HeartModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule() -> Vec<Beat> {
        HeartModel::default()
            .schedule(10.0, &mut StdRng::seed_from_u64(1))
            .unwrap()
    }

    #[test]
    fn render_length() {
        let fs = 250.0;
        let x = EcgMorphology::default().render(&schedule(), 2500, fs);
        assert_eq!(x.len(), 2500);
    }

    #[test]
    fn r_peaks_are_local_maxima_of_rendered_signal() {
        let fs = 250.0;
        let sched = schedule();
        let x = EcgMorphology::default().render(&sched, 2500, fs);
        for idx in EcgMorphology::r_peak_indices(&sched, 2500, fs) {
            if idx < 3 || idx + 3 >= x.len() {
                continue;
            }
            let local_max = (idx - 3..=idx + 3).map(|i| x[i]).fold(f64::MIN, f64::max);
            assert!(
                x[idx] >= 0.95 * local_max && x[idx] > 0.5,
                "R at {idx} is not a dominant local max"
            );
        }
    }

    #[test]
    fn r_amplitude_dominates() {
        let fs = 250.0;
        let sched = schedule();
        let x = EcgMorphology::default().render(&sched, 2500, fs);
        let peak = x.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 0.8 && peak < 1.4, "peak {peak}");
    }

    #[test]
    fn t_wave_present_after_r() {
        let fs = 250.0;
        let sched = schedule();
        let x = EcgMorphology::default().render(&sched, 2500, fs);
        let r = (sched[2].t_r * fs) as usize;
        let t_region = &x[r + 50..r + 110]; // 200–440 ms after R
        let t_max = t_region.iter().cloned().fold(f64::MIN, f64::max);
        assert!(t_max > 0.15, "t_max {t_max}");
    }

    #[test]
    fn quiescent_before_first_beat() {
        let fs = 250.0;
        let sched = schedule();
        let x = EcgMorphology::default().render(&sched, 2500, fs);
        // First beat starts at ~0.26 s; the first 10 samples are baseline.
        for v in &x[..10] {
            assert!(v.abs() < 0.05);
        }
    }

    #[test]
    fn indices_clip_to_length() {
        let sched = schedule();
        let idx = EcgMorphology::r_peak_indices(&sched, 100, 250.0);
        assert!(idx.iter().all(|&i| i < 100));
        assert!(idx.len() < sched.len());
    }
}
