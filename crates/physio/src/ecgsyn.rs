//! Dynamical ECG synthesis (McSharry et al., "A dynamical model for
//! generating synthetic electrocardiogram signals", IEEE TBME 2003).
//!
//! [`crate::ecg`] renders beats as additive Gaussian bumps — fast,
//! landmark-exact, and sufficient for scoring a QRS detector. The ECGSYN
//! model is the stronger substrate: a three-dimensional ODE whose
//! trajectory circles a limit cycle in the `(x, y)` plane once per beat
//! while `z(t)` is attracted toward a sum of Gaussian events anchored at
//! fixed angles (P, Q, R, S, T). Integrating it produces continuously
//! varying, realistically correlated morphology — wave shapes breathe
//! with the cycle length rather than being stamped identically — which is
//! what a detector robustness test wants.
//!
//! The integrator is classic fixed-step RK4 at the output rate; beat
//! boundaries (R peaks) are read off the limit-cycle phase, giving ground
//! truth without peak-picking.

use crate::heart::Beat;
use crate::PhysioError;

/// One Gaussian event on the limit cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PqrstEvent {
    /// Anchor angle on the cycle, radians in `(-π, π]` (R at 0).
    pub theta: f64,
    /// Event magnitude (the `a_i` of the paper).
    pub a: f64,
    /// Angular width (the `b_i`).
    pub b: f64,
}

/// Parameters of the dynamical model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EcgsynModel {
    /// The five PQRST events.
    pub events: [PqrstEvent; 5],
    /// Baseline-restoring rate for `z` (the model's `1/τ`-like constant).
    pub z_decay: f64,
    /// Output amplitude scale, millivolts per model unit.
    pub scale_mv: f64,
}

impl Default for EcgsynModel {
    fn default() -> Self {
        // The parameter set of the original paper (Table 1), angles in
        // radians: P −π/3, Q −π/12, R 0, S π/12, T π/2.
        let pi = std::f64::consts::PI;
        Self {
            events: [
                PqrstEvent {
                    theta: -pi / 3.0,
                    a: 1.2,
                    b: 0.25,
                },
                PqrstEvent {
                    theta: -pi / 12.0,
                    a: -5.0,
                    b: 0.1,
                },
                PqrstEvent {
                    theta: 0.0,
                    a: 30.0,
                    b: 0.1,
                },
                PqrstEvent {
                    theta: pi / 12.0,
                    a: -7.5,
                    b: 0.1,
                },
                PqrstEvent {
                    theta: pi / 2.0,
                    a: 0.75,
                    b: 0.4,
                },
            ],
            z_decay: 1.0,
            scale_mv: 0.35,
        }
    }
}

/// Output of one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgsynOutput {
    /// The synthesized ECG, millivolts.
    pub ecg_mv: Vec<f64>,
    /// Sample indices where the trajectory crossed the R angle (θ = 0).
    pub r_peaks: Vec<usize>,
}

impl EcgsynModel {
    /// Integrates the model over the beat schedule: each cycle's angular
    /// velocity is set from that beat's RR interval, so the output tracks
    /// the same ground-truth timing the rest of the workspace uses.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for an empty schedule or
    /// a non-positive sampling rate.
    pub fn render(
        &self,
        schedule: &[Beat],
        n: usize,
        fs: f64,
    ) -> Result<EcgsynOutput, PhysioError> {
        if schedule.is_empty() {
            return Err(PhysioError::InvalidParameter {
                name: "schedule",
                value: 0.0,
                constraint: "must contain at least one beat",
            });
        }
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "fs",
                value: fs,
                constraint: "must be positive and finite",
            });
        }
        let dt = 1.0 / fs;
        let pi = std::f64::consts::PI;

        // RR for the cycle active at time t.
        let rr_at = |t: f64| -> f64 {
            match schedule.iter().rev().find(|b| b.t_r <= t) {
                Some(b) => b.rr,
                None => schedule[0].rr,
            }
        };

        // State: on the unit circle, phase aligned so θ = 0 coincides
        // with the first beat's R time.
        let first_r = schedule[0].t_r;
        let w0 = 2.0 * pi / schedule[0].rr;
        let mut theta = -w0 * first_r; // phase at t = 0
                                       // wrap into (-π, π]
        theta = wrap(theta);
        let (mut x, mut y) = (theta.cos(), theta.sin());
        let mut z = 0.0;

        let mut ecg = Vec::with_capacity(n);
        let mut r_peaks = Vec::new();
        let mut prev_theta = f64::atan2(y, x);

        for i in 0..n {
            let t = i as f64 / fs;
            let w = 2.0 * pi / rr_at(t);
            let deriv = |x: f64, y: f64, z: f64| -> (f64, f64, f64) {
                let alpha = 1.0 - (x * x + y * y).sqrt();
                let th = f64::atan2(y, x);
                let dx = alpha * x - w * y;
                let dy = alpha * y + w * x;
                let mut dz = -self.z_decay * z;
                for e in &self.events {
                    let d = wrap(th - e.theta);
                    dz -= e.a * w * d * (-d * d / (2.0 * e.b * e.b)).exp();
                }
                (dx, dy, dz)
            };
            // RK4 step
            let (k1x, k1y, k1z) = deriv(x, y, z);
            let (k2x, k2y, k2z) = deriv(x + 0.5 * dt * k1x, y + 0.5 * dt * k1y, z + 0.5 * dt * k1z);
            let (k3x, k3y, k3z) = deriv(x + 0.5 * dt * k2x, y + 0.5 * dt * k2y, z + 0.5 * dt * k2z);
            let (k4x, k4y, k4z) = deriv(x + dt * k3x, y + dt * k3y, z + dt * k3z);
            x += dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
            y += dt / 6.0 * (k1y + 2.0 * k2y + 2.0 * k3y + k4y);
            z += dt / 6.0 * (k1z + 2.0 * k2z + 2.0 * k3z + k4z);

            let th = f64::atan2(y, x);
            // R crossing: phase passes through 0 moving forward
            if prev_theta < 0.0 && th >= 0.0 && (th - prev_theta) < pi {
                r_peaks.push(i);
            }
            prev_theta = th;
            ecg.push(z * self.scale_mv);
        }
        Ok(EcgsynOutput {
            ecg_mv: ecg,
            r_peaks,
        })
    }
}

/// Wraps an angle into `(-π, π]`.
fn wrap(mut a: f64) -> f64 {
    let pi = std::f64::consts::PI;
    while a <= -pi {
        a += 2.0 * pi;
    }
    while a > pi {
        a -= 2.0 * pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heart::HeartModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    fn schedule(seed: u64) -> Vec<Beat> {
        HeartModel::default()
            .schedule(20.0, &mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn produces_one_r_per_scheduled_beat() {
        let sched = schedule(1);
        let n = (20.0 * FS) as usize;
        let out = EcgsynModel::default().render(&sched, n, FS).unwrap();
        // the limit cycle crosses θ=0 once per cycle
        assert!(
            out.r_peaks.len() as i64 - sched.len() as i64 <= 1
                && sched.len() as i64 - out.r_peaks.len() as i64 <= 1,
            "{} peaks vs {} beats",
            out.r_peaks.len(),
            sched.len()
        );
    }

    #[test]
    fn r_waves_are_dominant_positive_deflections() {
        let sched = schedule(2);
        let n = (20.0 * FS) as usize;
        let out = EcgsynModel::default().render(&sched, n, FS).unwrap();
        for &r in out.r_peaks.iter().skip(1) {
            if r + 5 >= n || r < 5 {
                continue;
            }
            let local_max = out.ecg_mv[r - 5..r + 5]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max);
            let global_max = out.ecg_mv.iter().cloned().fold(f64::MIN, f64::max);
            assert!(
                local_max > 0.5 * global_max,
                "R at {r} is not a dominant peak"
            );
        }
    }

    #[test]
    fn wave_sequence_is_pqrst() {
        // between two R peaks, the T wave (positive, after R) and the
        // next P wave (positive, before next R) must both be visible
        let sched = schedule(3);
        let n = (20.0 * FS) as usize;
        let out = EcgsynModel::default().render(&sched, n, FS).unwrap();
        let (r1, r2) = (out.r_peaks[2], out.r_peaks[3]);
        let seg = &out.ecg_mv[r1..r2];
        // T apex in the first half, after the S dip
        let t_region = &seg[(seg.len() / 8)..(seg.len() / 2)];
        let t_max = t_region.iter().cloned().fold(f64::MIN, f64::max);
        assert!(t_max > 0.02, "T wave missing: {t_max}");
        // S dip right after R
        let s_min = seg[1..seg.len() / 8]
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(s_min < -0.02, "S wave missing: {s_min}");
    }

    #[test]
    fn pan_tompkins_detects_ecgsyn_beats() {
        // the whole point: the detector must work on the richer morphology
        use cardiotouch_dsp::iir::Butterworth;
        let sched = schedule(4);
        let n = (20.0 * FS) as usize;
        let out = EcgsynModel::default().render(&sched, n, FS).unwrap();
        // quick inline QRS check without depending on the ecg crate
        // (crate dependency order): band-pass energy at R peaks must
        // dominate the record's energy elsewhere.
        let bp = Butterworth::bandpass(2, 5.0, 15.0, FS).unwrap();
        let y = bp.filter(&out.ecg_mv);
        let e: Vec<f64> = y.iter().map(|v| v * v).collect();
        let at_r: f64 = out
            .r_peaks
            .iter()
            .filter(|&&r| r > 10 && r + 10 < n)
            .map(|&r| e[r - 10..r + 10].iter().sum::<f64>() / 20.0)
            .sum::<f64>()
            / out.r_peaks.len() as f64;
        let overall = e.iter().sum::<f64>() / n as f64;
        // QRS-band energy near R is several times the record average —
        // (the average itself contains the QRS complexes, so the ratio is
        // bounded well below the per-sample peak ratio)
        assert!(at_r > 3.5 * overall, "QRS energy ratio {}", at_r / overall);
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = EcgsynModel::default();
        assert!(m.render(&[], 100, FS).is_err());
        let sched = schedule(5);
        assert!(m.render(&sched, 100, 0.0).is_err());
    }
}
