use std::fmt;

/// Error type for the physiology synthesizers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhysioError {
    /// A model parameter was outside its physiological/documented range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Value supplied.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// The requested recording is too short to contain a single beat.
    DurationTooShort {
        /// Requested duration in seconds.
        duration_s: f64,
        /// Minimum usable duration in seconds.
        min_s: f64,
    },
    /// An underlying DSP operation failed.
    Dsp(cardiotouch_dsp::DspError),
}

impl fmt::Display for PhysioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysioError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} is invalid: {constraint}"),
            PhysioError::DurationTooShort { duration_s, min_s } => {
                write!(
                    f,
                    "duration {duration_s} s is too short; need at least {min_s} s"
                )
            }
            PhysioError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for PhysioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhysioError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cardiotouch_dsp::DspError> for PhysioError {
    fn from(e: cardiotouch_dsp::DspError) -> Self {
        PhysioError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PhysioError::InvalidParameter {
            name: "hr",
            value: -3.0,
            constraint: "must be positive",
        };
        assert!(e.to_string().contains("hr"));

        let d = PhysioError::from(cardiotouch_dsp::DspError::InputTooShort { len: 0, min_len: 1 });
        assert!(std::error::Error::source(&d).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysioError>();
    }
}
