//! Deterministic fault injection for the touch-acquisition front end.
//!
//! The paper's whole premise is *opportunistic* acquisition — fingers
//! resting on a hand-held device — so the dominant real-world failure
//! modes are not Gaussian noise but structural: a finger lifts and the
//! measurement loop opens, the AFE saturates against a rail, the ADC
//! drops samples, an arm movement injects a broadband burst, the
//! electrode–skin interface steps in impedance, or the BLE uplink loses
//! notifications. This module turns that taxonomy into composable,
//! *reproducible* [`FaultScenario`]s: every fault is scheduled on
//! **absolute sample indices** (no wall clock anywhere), so a scenario
//! applied to a stream is a pure function of the signal and the schedule
//! — identical across chunk sizes, thread counts and reruns.
//!
//! A scenario can be built programmatically, parsed from a compact CLI
//! spec ([`FaultScenario::parse`]), or drawn from a seeded RNG
//! ([`FaultScenario::random`]) for chaos testing.
//!
//! # Example
//!
//! ```
//! use cardiotouch_physio::faults::{FaultChannel, FaultEvent, FaultKind, FaultScenario};
//!
//! let scenario = FaultScenario::new(250.0)
//!     .with_event(FaultEvent {
//!         start: 1000,
//!         duration: 250,
//!         channel: FaultChannel::Both,
//!         kind: FaultKind::Dropout,
//!     });
//! let mut ecg = vec![0.5; 2000];
//! let mut z = vec![430.0; 2000];
//! scenario.apply_chunk(0, &mut ecg, &mut z).unwrap();
//! assert!(ecg[1000].is_nan() && ecg[999].is_finite());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which channel(s) a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultChannel {
    /// ECG channel only.
    Ecg,
    /// Impedance channel only.
    Z,
    /// Both channels simultaneously (the common case: one finger lifts).
    Both,
}

impl fmt::Display for FaultChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultChannel::Ecg => "ecg",
            FaultChannel::Z => "z",
            FaultChannel::Both => "both",
        })
    }
}

impl FaultChannel {
    fn hits_ecg(self) -> bool {
        matches!(self, FaultChannel::Ecg | FaultChannel::Both)
    }

    fn hits_z(self) -> bool {
        matches!(self, FaultChannel::Z | FaultChannel::Both)
    }
}

/// The touch-device fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// Finger-lift contact loss: the channel rails to a constant level
    /// (open measurement loop — flatline at the amplifier rail).
    ContactLoss {
        /// The level the channel sticks at (ECG: rail mV; Z: open-loop Ω).
        level: f64,
    },
    /// AFE/ADC saturation: samples clip to `±limit` (the waveform is
    /// preserved where it fits, clipped where it does not).
    Saturation {
        /// Clipping magnitude.
        limit: f64,
    },
    /// Sample dropout: the ADC delivers non-finite samples (NaN).
    Dropout,
    /// Burst motion artifact: a large additive low-frequency oscillation,
    /// phase-locked to the absolute sample index so injection is
    /// chunk-size invariant.
    MotionBurst {
        /// Peak amplitude of the burst.
        amplitude: f64,
        /// Oscillation frequency, hertz.
        freq_hz: f64,
    },
    /// Electrode–skin impedance step: an additive offset for the fault's
    /// duration (a grip change), released when the event ends.
    ImpedanceStep {
        /// Offset added to the affected channel.
        delta: f64,
    },
    /// Hard front-end fault: the sample source errors out entirely
    /// (watchdog-reset territory). Surfaces as [`HardFault`] from
    /// [`FaultScenario::apply_chunk`] so schedulers can exercise their
    /// isolation and retry paths.
    HardFault,
}

/// One scheduled fault: `kind` applied to `channel` over the absolute
/// sample range `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultEvent {
    /// Absolute sample index where the fault begins.
    pub start: usize,
    /// Fault length in samples.
    pub duration: usize,
    /// Affected channel(s).
    pub channel: FaultChannel,
    /// What happens to the affected samples.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Absolute sample index one past the fault's end.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start.saturating_add(self.duration)
    }

    /// Whether the event overlaps the absolute range `[lo, hi)`.
    #[must_use]
    pub fn overlaps(&self, lo: usize, hi: usize) -> bool {
        self.start < hi && self.end() > lo
    }
}

impl fmt::Display for FaultEvent {
    /// Renders the event in the CLI grammar, losslessly: times as raw
    /// sample counts (suffix-free, so parsing cannot re-round them),
    /// parameters via `f64`'s shortest round-trip formatting, and the
    /// channel always explicit. `FaultScenario::parse(&ev.to_string(),
    /// fs)` reconstructs the event exactly (for finite parameters).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Dropout => write!(f, "drop")?,
            FaultKind::ContactLoss { level } => write!(f, "loss={level}")?,
            FaultKind::Saturation { limit } => write!(f, "sat={limit}")?,
            FaultKind::MotionBurst { amplitude, freq_hz } => {
                write!(f, "motion={amplitude}/{freq_hz}")?;
            }
            FaultKind::ImpedanceStep { delta } => write!(f, "step={delta}")?,
            FaultKind::HardFault => write!(f, "fail")?,
        }
        write!(f, "@{}+{}:{}", self.start, self.duration, self.channel)
    }
}

/// A hard front-end failure raised by [`FaultScenario::apply_chunk`] when
/// a [`FaultKind::HardFault`] event covers the chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardFault {
    /// Absolute sample index of the first faulted sample in the chunk.
    pub at: usize,
}

impl fmt::Display for HardFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hard front-end fault at sample {}", self.at)
    }
}

impl std::error::Error for HardFault {}

/// A malformed `--faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic, composable schedule of front-end faults.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultScenario {
    fs: f64,
    events: Vec<FaultEvent>,
}

impl fmt::Display for FaultScenario {
    /// Renders the schedule in the CLI grammar (`"none"` when empty);
    /// the inverse of [`FaultScenario::parse`] at the same sampling
    /// rate: `parse(&s.to_string(), s.fs()) == s` for every scenario
    /// with finite, positive-duration events.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("none");
        }
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

impl FaultScenario {
    /// An empty scenario at sampling rate `fs` (injection disabled —
    /// applying it is a no-op).
    #[must_use]
    pub fn new(fs: f64) -> Self {
        Self {
            fs,
            events: Vec::new(),
        }
    }

    /// Adds one event (builder style).
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Sampling rate the schedule's time-based specs were resolved at.
    #[must_use]
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// `true` when no fault is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Absolute sample index one past the last scheduled fault (0 when
    /// empty).
    #[must_use]
    pub fn end(&self) -> usize {
        self.events.iter().map(FaultEvent::end).max().unwrap_or(0)
    }

    /// Applies every scheduled fault to the chunk whose first sample has
    /// absolute index `base`. Pure in the schedule: the result depends
    /// only on `(base, chunk contents)`, never on prior calls, so any
    /// chunking of the same stream yields the same corrupted stream.
    ///
    /// # Errors
    ///
    /// Returns [`HardFault`] when a [`FaultKind::HardFault`] event
    /// overlaps the chunk (the channels are left partially mutated; a
    /// hard-faulted source has no meaningful output).
    pub fn apply_chunk(
        &self,
        base: usize,
        ecg: &mut [f64],
        z: &mut [f64],
    ) -> Result<(), HardFault> {
        debug_assert_eq!(ecg.len(), z.len());
        let hi = base + ecg.len();
        let mut hard: Option<usize> = None;
        for ev in &self.events {
            if !ev.overlaps(base, hi) {
                continue;
            }
            let lo = ev.start.max(base);
            let end = ev.end().min(hi);
            if matches!(ev.kind, FaultKind::HardFault) {
                hard = Some(hard.map_or(lo, |h| h.min(lo)));
                continue;
            }
            for abs in lo..end {
                let i = abs - base;
                if ev.channel.hits_ecg() {
                    ecg[i] = corrupt(ev.kind, ecg[i], abs, self.fs);
                }
                if ev.channel.hits_z() {
                    z[i] = corrupt(ev.kind, z[i], abs, self.fs);
                }
            }
        }
        match hard {
            Some(at) => Err(HardFault { at }),
            None => Ok(()),
        }
    }

    /// Draws a reproducible scenario for a stream of `samples` samples:
    /// 1–4 non-overlapping soft faults (no [`FaultKind::HardFault`]) with
    /// randomized kinds, channels, onsets and durations of 0.1–2 s.
    /// The same `(seed, samples, fs)` always yields the same schedule.
    #[must_use]
    pub fn random(seed: u64, samples: usize, fs: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let count = 1 + (rng.gen::<u32>() as usize) % 4;
        let min_dur = ((0.1 * fs) as usize).max(1);
        let max_dur = ((2.0 * fs) as usize).max(min_dur + 1);
        for _ in 0..count {
            if samples <= max_dur {
                break;
            }
            let duration = min_dur + (rng.gen::<u32>() as usize) % (max_dur - min_dur);
            let start = (rng.gen::<u32>() as usize) % (samples - duration);
            let channel = match rng.gen::<u32>() % 3 {
                0 => FaultChannel::Ecg,
                1 => FaultChannel::Z,
                _ => FaultChannel::Both,
            };
            let kind = match rng.gen::<u32>() % 5 {
                0 => FaultKind::ContactLoss {
                    level: if rng.gen_bool(0.5) { 0.0 } else { 5.0e3 },
                },
                1 => FaultKind::Saturation {
                    limit: 1.0 + rng.gen::<f64>() * 4.0,
                },
                2 => FaultKind::Dropout,
                3 => FaultKind::MotionBurst {
                    amplitude: 1.0 + rng.gen::<f64>() * 3.0,
                    freq_hz: 0.5 + rng.gen::<f64>() * 7.0,
                },
                _ => FaultKind::ImpedanceStep {
                    delta: 20.0 + rng.gen::<f64>() * 80.0,
                },
            };
            events.push(FaultEvent {
                start,
                duration,
                channel,
                kind,
            });
        }
        Self { fs, events }
    }

    /// Parses a compact fault spec at sampling rate `fs`.
    ///
    /// Grammar (whitespace-free, comma-separated events):
    ///
    /// ```text
    /// spec    := "none" | "rand:SEED" | event ("," event)*
    /// event   := kind "@" time "+" time [":" channel]
    /// kind    := "drop" | "loss" ["=" level] | "sat" ["=" limit]
    ///          | "motion" ["=" amp ["/" freq_hz]] | "step" ["=" delta]
    ///          | "fail"
    /// time    := NUMBER ("s" | "ms" | "")        -- "" means raw samples
    /// channel := "ecg" | "z" | "both"            -- default "both"
    /// ```
    ///
    /// Examples: `drop@5s+200ms`, `loss=0@10s+1.5s:ecg`,
    /// `sat=2.5@3s+500ms,motion@8s+2s:z`, `rand:42`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] with a user-facing message for any
    /// token the grammar does not admit.
    pub fn parse(spec: &str, fs: f64) -> Result<Self, FaultSpecError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(Self::new(fs));
        }
        if let Some(seed) = spec.strip_prefix("rand:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| FaultSpecError(format!("bad random seed `{seed}`")))?;
            // A random scenario needs a nominal stream length; 30 s is the
            // paper's session length and the serve-sim template length.
            return Ok(Self::random(seed, (30.0 * fs) as usize, fs));
        }
        let mut out = Self::new(fs);
        for part in spec.split(',') {
            out.events.push(parse_event(part, fs)?);
        }
        Ok(out)
    }
}

/// One corrupted sample: pure in `(kind, clean value, absolute index)`.
fn corrupt(kind: FaultKind, x: f64, abs: usize, fs: f64) -> f64 {
    match kind {
        FaultKind::ContactLoss { level } => level,
        FaultKind::Saturation { limit } => x.clamp(-limit, limit),
        FaultKind::Dropout => f64::NAN,
        FaultKind::MotionBurst { amplitude, freq_hz } => {
            let t = abs as f64 / fs;
            x + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t).sin()
        }
        FaultKind::ImpedanceStep { delta } => x + delta,
        FaultKind::HardFault => x,
    }
}

/// Parses `kind@start+dur[:channel]`.
fn parse_event(part: &str, fs: f64) -> Result<FaultEvent, FaultSpecError> {
    let err = |msg: String| FaultSpecError(format!("`{part}`: {msg}"));
    let (head, channel) = match part.rsplit_once(':') {
        Some((head, chan)) => {
            let channel = match chan {
                "ecg" => FaultChannel::Ecg,
                "z" => FaultChannel::Z,
                "both" => FaultChannel::Both,
                other => return Err(err(format!("unknown channel `{other}`"))),
            };
            (head, channel)
        }
        None => (part, FaultChannel::Both),
    };
    let (kind_str, times) = head
        .split_once('@')
        .ok_or_else(|| err("expected `kind@start+duration`".into()))?;
    let (start_str, dur_str) = times
        .split_once('+')
        .ok_or_else(|| err("expected `start+duration`".into()))?;
    let start = parse_time(start_str, fs).map_err(err)?;
    let duration = parse_time(dur_str, fs).map_err(err)?;
    if duration == 0 {
        return Err(err("duration must be positive".into()));
    }
    let (name, raw_value) = match kind_str.split_once('=') {
        Some((name, v)) => (name, Some(v)),
        None => (kind_str, None),
    };
    // `motion` takes a compound `amp/freq` value; every other kind a
    // plain number. Parse lazily so the error names the bad token.
    let scalar = |raw: Option<&str>, default: f64| -> Result<f64, FaultSpecError> {
        match raw {
            Some(v) => v.parse().map_err(|_| err(format!("bad parameter `{v}`"))),
            None => Ok(default),
        }
    };
    let kind = match name {
        "drop" => {
            if raw_value.is_some() {
                return Err(err("`drop` takes no parameter".into()));
            }
            FaultKind::Dropout
        }
        "loss" => FaultKind::ContactLoss {
            level: scalar(raw_value, 0.0)?,
        },
        "sat" => FaultKind::Saturation {
            limit: scalar(raw_value, 2.0)?,
        },
        "motion" => {
            let (amp, freq) = match raw_value.and_then(|v| v.split_once('/')) {
                Some((amp, freq)) => (Some(amp), Some(freq)),
                None => (raw_value, None),
            };
            FaultKind::MotionBurst {
                amplitude: scalar(amp, 2.0)?,
                freq_hz: scalar(freq, 4.0)?,
            }
        }
        "step" => FaultKind::ImpedanceStep {
            delta: scalar(raw_value, 50.0)?,
        },
        "fail" => {
            if raw_value.is_some() {
                return Err(err("`fail` takes no parameter".into()));
            }
            FaultKind::HardFault
        }
        other => return Err(err(format!("unknown fault kind `{other}`"))),
    };
    Ok(FaultEvent {
        start,
        duration,
        channel,
        kind,
    })
}

/// Parses `5s`, `200ms` or a raw sample count at sampling rate `fs`.
fn parse_time(s: &str, fs: f64) -> Result<usize, String> {
    let (num, scale) = if let Some(v) = s.strip_suffix("ms") {
        (v, fs / 1000.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, fs)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().map_err(|_| format!("bad time `{s}`"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("time `{s}` must be non-negative"));
    }
    Ok((v * scale).round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            (0..n).map(|i| (i as f64 * 0.1).sin()).collect(),
            (0..n).map(|i| 430.0 + (i as f64 * 0.03).cos()).collect(),
        )
    }

    #[test]
    fn empty_scenario_is_a_no_op() {
        let (mut ecg, mut z) = clean(500);
        let (e0, z0) = (ecg.clone(), z.clone());
        FaultScenario::new(250.0)
            .apply_chunk(0, &mut ecg, &mut z)
            .unwrap();
        assert_eq!(ecg, e0);
        assert_eq!(z, z0);
    }

    #[test]
    fn chunking_does_not_change_the_corruption() {
        let scenario =
            FaultScenario::parse("drop@100+50,sat=0.5@300+100:ecg,motion@0+2s:z", 250.0).unwrap();
        let (ecg, z) = clean(1000);
        let mut whole = (ecg.clone(), z.clone());
        scenario.apply_chunk(0, &mut whole.0, &mut whole.1).unwrap();
        let mut piecewise = (ecg, z);
        for at in (0..1000).step_by(33) {
            let hi = (at + 33).min(1000);
            scenario
                .apply_chunk(at, &mut piecewise.0[at..hi], &mut piecewise.1[at..hi])
                .unwrap();
        }
        // NaNs break Vec equality; compare bitwise.
        for (a, b) in whole.0.iter().zip(&piecewise.0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in whole.1.iter().zip(&piecewise.1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn each_kind_corrupts_as_documented() {
        let fs = 250.0;
        let n = 400;
        let mk = |kind| {
            FaultScenario::new(fs).with_event(FaultEvent {
                start: 100,
                duration: 100,
                channel: FaultChannel::Both,
                kind,
            })
        };

        let (mut e, mut z) = clean(n);
        mk(FaultKind::Dropout)
            .apply_chunk(0, &mut e, &mut z)
            .unwrap();
        assert!(e[100].is_nan() && z[150].is_nan() && e[99].is_finite() && e[200].is_finite());

        let (mut e, mut z) = clean(n);
        mk(FaultKind::ContactLoss { level: 7.0 })
            .apply_chunk(0, &mut e, &mut z)
            .unwrap();
        assert!(e[100..200].iter().all(|&v| v == 7.0));
        assert!(z[100..200].iter().all(|&v| v == 7.0));

        let (mut e, mut z) = clean(n);
        mk(FaultKind::Saturation { limit: 0.2 })
            .apply_chunk(0, &mut e, &mut z)
            .unwrap();
        assert!(e[100..200].iter().all(|&v| v.abs() <= 0.2));
        assert!(z[100..200].iter().all(|&v| v == 0.2), "z clips to +limit");

        let (mut e, mut z) = clean(n);
        let (e0, _) = clean(n);
        mk(FaultKind::ImpedanceStep { delta: 50.0 })
            .apply_chunk(0, &mut e, &mut z)
            .unwrap();
        assert!((e[150] - e0[150] - 50.0).abs() < 1e-12);
        assert!((e[250] - e0[250]).abs() < 1e-12, "step releases at end");
    }

    #[test]
    fn hard_fault_surfaces_as_error_with_first_index() {
        let scenario = FaultScenario::parse("fail@200+100", 250.0).unwrap();
        let (mut e, mut z) = clean(400);
        assert!(scenario
            .apply_chunk(0, &mut e[..100], &mut z[..100])
            .is_ok());
        let err = scenario
            .apply_chunk(150, &mut e[150..260], &mut z[150..260])
            .unwrap_err();
        assert_eq!(err.at, 200);
    }

    #[test]
    fn random_scenarios_are_reproducible_and_bounded() {
        let a = FaultScenario::random(9, 7500, 250.0);
        let b = FaultScenario::random(9, 7500, 250.0);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.events().len() <= 4);
        for ev in a.events() {
            assert!(ev.end() <= 7500);
            assert!(!matches!(ev.kind, FaultKind::HardFault));
        }
        assert_ne!(a, FaultScenario::random(10, 7500, 250.0));
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let s = FaultScenario::parse("drop@5s+200ms:ecg", 250.0).unwrap();
        assert_eq!(
            s.events(),
            &[FaultEvent {
                start: 1250,
                duration: 50,
                channel: FaultChannel::Ecg,
                kind: FaultKind::Dropout,
            }]
        );
        assert_eq!(
            FaultScenario::parse("none", 250.0).unwrap().events().len(),
            0
        );
        assert_eq!(FaultScenario::parse("", 250.0).unwrap().events().len(), 0);
        let r = FaultScenario::parse("rand:3", 250.0).unwrap();
        assert_eq!(r, FaultScenario::random(3, 7500, 250.0));

        for bad in [
            "bogus@1s+1s",
            "drop@1s",
            "drop@1s+0",
            "drop@1s+1s:noses",
            "sat=abc@1s+1s",
            "rand:xyz",
        ] {
            assert!(FaultScenario::parse(bad, 250.0).is_err(), "{bad}");
        }
    }

    #[test]
    fn display_renders_the_grammar_and_round_trips() {
        let scenario = FaultScenario::new(250.0)
            .with_event(FaultEvent {
                start: 1250,
                duration: 50,
                channel: FaultChannel::Ecg,
                kind: FaultKind::Dropout,
            })
            .with_event(FaultEvent {
                start: 500,
                duration: 750,
                channel: FaultChannel::Z,
                kind: FaultKind::MotionBurst {
                    amplitude: 1.5,
                    freq_hz: 6.25,
                },
            });
        let spec = scenario.to_string();
        assert_eq!(spec, "drop@1250+50:ecg,motion=1.5/6.25@500+750:z");
        assert_eq!(FaultScenario::parse(&spec, 250.0).unwrap(), scenario);
        assert_eq!(FaultScenario::new(250.0).to_string(), "none");
    }

    #[test]
    fn motion_freq_parses_and_bare_kinds_reject_parameters() {
        let s = FaultScenario::parse("motion=3/0.5@0+100", 250.0).unwrap();
        assert_eq!(
            s.events()[0].kind,
            FaultKind::MotionBurst {
                amplitude: 3.0,
                freq_hz: 0.5
            }
        );
        // default frequency stays 4 Hz when only the amplitude is given
        let s = FaultScenario::parse("motion=3@0+100", 250.0).unwrap();
        assert_eq!(
            s.events()[0].kind,
            FaultKind::MotionBurst {
                amplitude: 3.0,
                freq_hz: 4.0
            }
        );
        assert!(FaultScenario::parse("drop=1@0+100", 250.0).is_err());
        assert!(FaultScenario::parse("fail=1@0+100", 250.0).is_err());
        assert!(FaultScenario::parse("motion=3/x@0+100", 250.0).is_err());
    }

    #[test]
    fn scenario_end_covers_all_events() {
        let s = FaultScenario::parse("drop@1s+1s,step@20s+2s", 250.0).unwrap();
        assert_eq!(s.end(), (22.0 * 250.0) as usize);
        assert_eq!(FaultScenario::new(250.0).end(), 0);
    }
}
