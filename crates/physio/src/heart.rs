//! Cardiac timing: beat scheduling with heart-rate variability and
//! ground-truth systolic time intervals.
//!
//! The paper estimates PEP and LVET from the ICG; to *evaluate* such an
//! estimator we need beats whose true PEP/LVET are known. The regressions
//! of Weissler et al. (1968) tie the systolic time intervals to heart rate
//! in adult men:
//!
//! ```text
//! LVET [ms] = 413 − 1.7 · HR    PEP [ms] = 131 − 0.4 · HR
//! ```
//!
//! Each scheduled beat carries its own HR-dependent PEP/LVET (plus
//! per-subject offsets and per-beat jitter), which the ICG synthesizer
//! turns into waveform landmarks.

use crate::noise::Gaussian;
use crate::PhysioError;
use rand::Rng;

/// Ground truth for one cardiac cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Beat {
    /// Time of the R peak, seconds from recording start.
    pub t_r: f64,
    /// RR interval to the *next* beat, seconds.
    pub rr: f64,
    /// True pre-ejection period, seconds (R → B).
    pub pep: f64,
    /// True left-ventricular ejection time, seconds (B → X).
    pub lvet: f64,
    /// Per-beat amplitude scale (respiratory/stroke-volume modulation).
    pub amplitude: f64,
}

impl Beat {
    /// Time of aortic valve opening (the B point), seconds.
    #[must_use]
    pub fn t_b(&self) -> f64 {
        self.t_r + self.pep
    }

    /// Time of aortic valve closure (the X point), seconds.
    #[must_use]
    pub fn t_x(&self) -> f64 {
        self.t_r + self.pep + self.lvet
    }

    /// Instantaneous heart rate of this cycle, beats per minute.
    #[must_use]
    pub fn hr_bpm(&self) -> f64 {
        60.0 / self.rr
    }
}

/// Parameters of the beat scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeartModel {
    /// Mean heart rate, beats per minute.
    pub hr_mean_bpm: f64,
    /// Standard deviation of uncorrelated RR jitter, seconds.
    pub rr_jitter_s: f64,
    /// Peak respiratory sinus arrhythmia RR modulation, seconds.
    pub rsa_depth_s: f64,
    /// Respiration rate used for RSA, hertz.
    pub resp_rate_hz: f64,
    /// Additive subject offset on PEP, seconds.
    pub pep_offset_s: f64,
    /// Additive subject offset on LVET, seconds.
    pub lvet_offset_s: f64,
}

impl Default for HeartModel {
    fn default() -> Self {
        Self {
            hr_mean_bpm: 70.0,
            rr_jitter_s: 0.02,
            rsa_depth_s: 0.03,
            resp_rate_hz: 0.25,
            pep_offset_s: 0.0,
            lvet_offset_s: 0.0,
        }
    }
}

impl HeartModel {
    /// Weissler regression for LVET at heart rate `hr` bpm, seconds.
    #[must_use]
    pub fn lvet_at(&self, hr: f64) -> f64 {
        ((413.0 - 1.7 * hr) / 1000.0 + self.lvet_offset_s).max(0.15)
    }

    /// Weissler regression for PEP at heart rate `hr` bpm, seconds.
    #[must_use]
    pub fn pep_at(&self, hr: f64) -> f64 {
        ((131.0 - 0.4 * hr) / 1000.0 + self.pep_offset_s).max(0.04)
    }

    /// Generates the beat schedule covering `duration_s` seconds.
    ///
    /// # Errors
    ///
    /// * [`PhysioError::InvalidParameter`] for a non-physiological mean
    ///   heart rate (outside 20–240 bpm);
    /// * [`PhysioError::DurationTooShort`] when the duration cannot hold
    ///   one full cycle.
    pub fn schedule<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        rng: &mut R,
    ) -> Result<Vec<Beat>, PhysioError> {
        if !(20.0..=240.0).contains(&self.hr_mean_bpm) {
            return Err(PhysioError::InvalidParameter {
                name: "hr_mean_bpm",
                value: self.hr_mean_bpm,
                constraint: "must be within 20-240 bpm",
            });
        }
        let rr_mean = 60.0 / self.hr_mean_bpm;
        if duration_s < 2.0 * rr_mean {
            return Err(PhysioError::DurationTooShort {
                duration_s,
                min_s: 2.0 * rr_mean,
            });
        }
        let mut g = Gaussian::new();
        let mut beats = Vec::new();
        // Start the first beat a little into the recording so filters have
        // a run-in region.
        let mut t = 0.3 * rr_mean;
        while t < duration_s {
            let rsa = self.rsa_depth_s * (2.0 * std::f64::consts::PI * self.resp_rate_hz * t).sin();
            let rr = (rr_mean + rsa + self.rr_jitter_s * g.sample(rng))
                .clamp(0.5 * rr_mean, 1.5 * rr_mean);
            let hr = 60.0 / rr;
            let pep = self.pep_at(hr) + 0.002 * g.sample(rng);
            let lvet = self.lvet_at(hr) + 0.004 * g.sample(rng);
            let amplitude = 1.0
                + 0.08 * (2.0 * std::f64::consts::PI * self.resp_rate_hz * t).cos()
                + 0.02 * g.sample(rng);
            beats.push(Beat {
                t_r: t,
                rr,
                pep: pep.max(0.04),
                lvet: lvet.max(0.15),
                amplitude: amplitude.max(0.5),
            });
            t += rr;
        }
        Ok(beats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weissler_values_at_70bpm() {
        let m = HeartModel::default();
        assert!((m.lvet_at(70.0) - 0.294).abs() < 1e-9);
        assert!((m.pep_at(70.0) - 0.103).abs() < 1e-9);
    }

    #[test]
    fn lvet_decreases_with_hr() {
        let m = HeartModel::default();
        assert!(m.lvet_at(60.0) > m.lvet_at(90.0));
        assert!(m.pep_at(60.0) > m.pep_at(90.0));
    }

    #[test]
    fn schedule_covers_duration() {
        let m = HeartModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let beats = m.schedule(30.0, &mut rng).unwrap();
        // ~35 beats at 70 bpm in 30 s
        assert!(beats.len() >= 30 && beats.len() <= 40, "{}", beats.len());
        assert!(beats.last().unwrap().t_r < 30.0);
        assert!(beats[0].t_r > 0.0);
    }

    #[test]
    fn schedule_is_monotone_and_consistent() {
        let m = HeartModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let beats = m.schedule(60.0, &mut rng).unwrap();
        for w in beats.windows(2) {
            assert!(w[1].t_r > w[0].t_r);
            assert!((w[0].t_r + w[0].rr - w[1].t_r).abs() < 1e-12);
        }
        for b in &beats {
            assert!(
                b.pep > 0.0 && b.lvet > b.pep,
                "pep {} lvet {}",
                b.pep,
                b.lvet
            );
            assert!(b.t_b() < b.t_x());
            assert!(b.pep < 0.2, "pep out of physiological range");
            assert!(b.lvet > 0.15 && b.lvet < 0.45);
        }
    }

    #[test]
    fn mean_hr_matches_request() {
        let m = HeartModel {
            hr_mean_bpm: 85.0,
            ..HeartModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let beats = m.schedule(120.0, &mut rng).unwrap();
        let mean_rr = beats.iter().map(|b| b.rr).sum::<f64>() / beats.len() as f64;
        assert!((60.0 / mean_rr - 85.0).abs() < 2.0);
    }

    #[test]
    fn schedule_rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = HeartModel {
            hr_mean_bpm: 10.0,
            ..HeartModel::default()
        };
        assert!(m.schedule(30.0, &mut rng).is_err());
        let m2 = HeartModel::default();
        assert!(m2.schedule(0.5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let m = HeartModel::default();
        let a = m.schedule(10.0, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = m.schedule(10.0, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rsa_modulates_rr() {
        // With no jitter, RR should oscillate at the respiration rate.
        let m = HeartModel {
            rr_jitter_s: 0.0,
            rsa_depth_s: 0.05,
            ..HeartModel::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let beats = m.schedule(30.0, &mut rng).unwrap();
        let rrs: Vec<f64> = beats.iter().map(|b| b.rr).collect();
        let spread = rrs.iter().cloned().fold(f64::MIN, f64::max)
            - rrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 0.05,
            "RSA should spread RR by ~2×depth, got {spread}"
        );
    }
}
