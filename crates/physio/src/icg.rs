//! Synthetic ICG (dZ/dt) waveform generation with exact B/C/X ground
//! truth.
//!
//! The ICG is defined as `ICG = −dZ/dt` (paper, Section IV-B). Each beat is
//! rendered as a sum of the four canonical waves seen in real dZ/dt
//! recordings:
//!
//! * **A wave** — small negative deflection before ejection (atrial);
//! * **C wave** — the dominant positive wave; its onset is the **B point**
//!   (aortic valve opening) and its apex the **C point**;
//! * **X wave** — the negative trough at aortic valve closure (**X
//!   point**);
//! * **O wave** — small positive diastolic wave (mitral opening).
//!
//! Landmark times come from the beat schedule: B at `t_R + PEP`, X at
//! `t_R + PEP + LVET`, C between them — so the *true* systolic time
//! intervals behind every rendered sample are known exactly, which is what
//! lets the workspace score the paper's detection algorithm.
//!
//! A per-beat baseline-compensation lobe is spread over diastole so that
//! each cycle's dZ/dt integrates to zero (real ΔZ returns to baseline every
//! beat; without compensation the integrated ΔZ would drift without bound).

use crate::heart::Beat;

/// Ground-truth landmark sample indices for one beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeatLandmarks {
    /// R-peak sample index (from the ECG schedule).
    pub r: usize,
    /// B-point sample index (aortic valve opening).
    pub b: usize,
    /// C-point sample index (dZ/dt maximum).
    pub c: usize,
    /// X-point sample index (aortic valve closure).
    pub x: usize,
}

/// Shape parameters of the synthetic dZ/dt beat.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IcgMorphology {
    /// Peak of the C wave (dZ/dt max), Ω/s. Typical adults: 1–2 Ω/s.
    pub dzdt_max: f64,
    /// A-wave amplitude as a fraction of the C peak (applied negative).
    pub a_frac: f64,
    /// X-trough depth as a fraction of the C peak.
    pub x_frac: f64,
    /// O-wave amplitude as a fraction of the C peak.
    pub o_frac: f64,
    /// Position of the C apex within the ejection interval (0 = B, 1 = X).
    pub c_position: f64,
}

impl Default for IcgMorphology {
    fn default() -> Self {
        Self {
            dzdt_max: 1.4,
            a_frac: 0.12,
            x_frac: 0.62,
            o_frac: 0.18,
            c_position: 0.40,
        }
    }
}

impl IcgMorphology {
    /// Left-flank σ of the X notch, seconds (sharp valve-closure event).
    pub const X_NOTCH_SIGMA_S: f64 = 0.012;

    /// σ of the B notch, seconds — the small indentation at aortic valve
    /// opening that the detector's third-derivative rule keys on.
    pub const B_NOTCH_SIGMA_S: f64 = 0.008;

    /// Lag of the dZ/dt trough behind true aortic valve closure, seconds.
    /// The closure (the true X landmark, end of LVET) is the *onset* of
    /// the notch downslope; the trough follows ~2.33 notch-σ later. The
    /// third-derivative refinement of the detector keys on the onset, so
    /// detection and truth agree by construction.
    pub const X_TROUGH_LAG_S: f64 = 2.33 * Self::X_NOTCH_SIGMA_S;

    /// Renders the continuous dZ/dt signal (Ω/s) for `schedule` over `n`
    /// samples at rate `fs`.
    ///
    /// Shape rationale (kept aligned with the detection rules so that the
    /// detector's landmark conventions match the synthesis ground truth):
    ///
    /// * the C wave is an asymmetric Gaussian whose **rise σ** is sized so
    ///   the true B point sits 2.33 σ before the apex — exactly where the
    ///   "first third-derivative minimum left of B0" rule lands on a
    ///   Gaussian flank (the signal there is ~7 % of the C peak, a
    ///   realistic B amplitude);
    /// * the X wave has a **sharp left flank** (the valve-closure notch)
    ///   and a **slow right flank** that models early diastolic recovery
    ///   of ΔZ, absorbing most of the ejection area so the X trough stays
    ///   the deepest negative point of the beat (which the paper's global
    ///   X0 search requires);
    /// * any remaining per-beat area is returned through a late-diastolic
    ///   Hann lobe, amplitude-capped below half the X depth (so it can
    ///   never masquerade as X), with the residue spread uniformly —
    ///   keeping the integrated ΔZ drift-free beat over beat.
    #[must_use]
    pub fn render_dzdt(&self, schedule: &[Beat], n: usize, fs: f64) -> Vec<f64> {
        let mut x = vec![0.0; n];
        let sqrt_2pi = (2.0 * std::f64::consts::PI).sqrt();
        for beat in schedule {
            let amp = self.dzdt_max * beat.amplitude;
            let t_b = beat.t_b();
            let t_x = beat.t_x();
            let t_c = t_b + self.c_position * beat.lvet;
            let sigma_cl = (self.c_position * beat.lvet / 2.33).max(0.015);
            let sigma_cr = 0.6 * sigma_cl;
            let (sigma_xl, sigma_xr) = (Self::X_NOTCH_SIGMA_S, 0.085);
            let sigma_a = 0.030;
            let sigma_o = 0.035;
            let t_trough = t_x + Self::X_TROUGH_LAG_S;
            // (centre, sigma_left, sigma_right, amplitude). The A wave sits
            // 90 ms before B — far enough that its third-derivative tail
            // cannot shadow the B notch. The B notch itself is the small
            // sharp indentation real ICG beats show at valve opening; it
            // is what gives the third derivative a local minimum at B for
            // the detector's primary rule to find.
            let waves = [
                (t_b - 0.090, sigma_a, sigma_a, -self.a_frac * amp),
                (
                    t_b,
                    Self::B_NOTCH_SIGMA_S,
                    Self::B_NOTCH_SIGMA_S,
                    -0.06 * amp,
                ),
                (t_c, sigma_cl, sigma_cr, amp),
                (t_trough, sigma_xl, sigma_xr, -self.x_frac * amp),
                (t_trough + 0.15, sigma_o, sigma_o, self.o_frac * amp),
            ];
            let mut beat_integral = 0.0;
            for (centre, sl, sr, a) in waves {
                beat_integral += a * (sl + sr) / 2.0 * sqrt_2pi;
                add_gaussian_asym(&mut x, centre, sl, sr, a, fs);
            }
            // Return the remaining area during late diastole. The lobe
            // peak is capped below half the X depth; whatever it cannot
            // absorb is spread uniformly over the same window.
            let d_lo = t_trough + 0.12;
            let d_hi = beat.t_r + 0.97 * beat.rr;
            let width = d_hi - d_lo;
            if width > 0.05 {
                let area = -beat_integral;
                let cap = 0.45 * self.x_frac * amp;
                let lobe_area_max = cap * width / 2.0;
                let lobe_area = area.clamp(-lobe_area_max, lobe_area_max);
                add_hann_lobe(&mut x, d_lo, d_hi, lobe_area, fs);
                let residue = area - lobe_area;
                if residue.abs() > 0.0 {
                    add_uniform(&mut x, d_lo, d_hi, residue, fs);
                }
            }
        }
        x
    }

    /// Integrates dZ/dt into the impedance variation ΔZ(t) in ohms, with
    /// `ΔZ[0] = 0`. Note the sign: the paper defines `ICG = −dZ/dt`, and
    /// this renderer produces the ICG (positive C wave), so
    /// `dZ/dt = −render_dzdt(..)` and `ΔZ` *falls* during ejection.
    #[must_use]
    pub fn delta_z(icg: &[f64], fs: f64) -> Vec<f64> {
        let mut z = Vec::with_capacity(icg.len());
        let mut acc = 0.0;
        for &v in icg {
            z.push(acc);
            acc -= v / fs;
        }
        z
    }

    /// Ground-truth landmark indices for every beat of `schedule` that fits
    /// within `n` samples at rate `fs`.
    #[must_use]
    pub fn landmarks(&self, schedule: &[Beat], n: usize, fs: f64) -> Vec<BeatLandmarks> {
        schedule
            .iter()
            .filter_map(|beat| {
                let r = (beat.t_r * fs).round() as usize;
                let b = (beat.t_b() * fs).round() as usize;
                let c = ((beat.t_b() + self.c_position * beat.lvet) * fs).round() as usize;
                let x = (beat.t_x() * fs).round() as usize;
                if x < n && r < b && b < c && c < x {
                    Some(BeatLandmarks { r, b, c, x })
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Adds an asymmetric Gaussian to `x`: width `sigma_l` left of `centre`,
/// `sigma_r` right of it, rendered over ±5σ of the respective side.
fn add_gaussian_asym(x: &mut [f64], centre: f64, sigma_l: f64, sigma_r: f64, a: f64, fs: f64) {
    let n = x.len();
    let lo = ((centre - 5.0 * sigma_l) * fs).floor().max(0.0) as usize;
    let hi = (((centre + 5.0 * sigma_r) * fs).ceil() as usize).min(n);
    for (i, xi) in x.iter_mut().enumerate().take(hi).skip(lo) {
        let t = i as f64 / fs - centre;
        let sigma = if t < 0.0 { sigma_l } else { sigma_r };
        *xi += a * (-t * t / (2.0 * sigma * sigma)).exp();
    }
}

/// Adds a constant `area / width` over `[lo_s, hi_s]`.
fn add_uniform(x: &mut [f64], lo_s: f64, hi_s: f64, area: f64, fs: f64) {
    let n = x.len();
    let lo = (lo_s * fs).floor().max(0.0) as usize;
    let hi = ((hi_s * fs).ceil() as usize).min(n);
    if hi <= lo {
        return;
    }
    let level = area / ((hi - lo) as f64 / fs);
    for xi in x.iter_mut().take(hi).skip(lo) {
        *xi += level;
    }
}

/// Adds a Hann-shaped lobe over `[lo_s, hi_s]` whose integral is `area`.
fn add_hann_lobe(x: &mut [f64], lo_s: f64, hi_s: f64, area: f64, fs: f64) {
    let n = x.len();
    let lo = (lo_s * fs).floor().max(0.0) as usize;
    let hi = ((hi_s * fs).ceil() as usize).min(n);
    if hi <= lo + 1 {
        return;
    }
    let width_s = (hi - lo) as f64 / fs;
    // ∫ Hann over its support = width / 2 → peak = 2·area/width.
    let peak = 2.0 * area / width_s;
    for (k, xi) in x.iter_mut().enumerate().take(hi).skip(lo) {
        let phase = (k - lo) as f64 / (hi - lo) as f64;
        *xi += peak * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heart::HeartModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    fn schedule() -> Vec<Beat> {
        HeartModel::default()
            .schedule(12.0, &mut StdRng::seed_from_u64(1))
            .unwrap()
    }

    #[test]
    fn c_point_is_signal_maximum_near_truth() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        let x = m.render_dzdt(&sched, n, FS);
        for lm in m.landmarks(&sched, n, FS) {
            // within the beat, the max should be within 3 samples of c
            let lo = lm.r;
            let hi = (lm.x + 30).min(n);
            let (mut best, mut best_v) = (lo, f64::MIN);
            for (i, &v) in x.iter().enumerate().take(hi).skip(lo) {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            assert!(
                best.abs_diff(lm.c) <= 3,
                "beat max {best} vs truth C {}",
                lm.c
            );
        }
    }

    #[test]
    fn x_trough_lags_truth_by_the_documented_offset() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        let x = m.render_dzdt(&sched, n, FS);
        let lag = (IcgMorphology::X_TROUGH_LAG_S * FS).round() as usize;
        for lm in m.landmarks(&sched, n, FS) {
            let lo = lm.c;
            let hi = (lm.x + 30).min(n);
            let (mut best, mut best_v) = (lo, f64::MAX);
            for (i, &v) in x.iter().enumerate().take(hi).skip(lo) {
                if v < best_v {
                    best_v = v;
                    best = i;
                }
            }
            assert!(
                best.abs_diff(lm.x + lag) <= 3,
                "beat min {best} vs truth X {} + lag {lag}",
                lm.x
            );
            assert!(best_v < 0.0);
        }
    }

    #[test]
    fn signal_near_zero_at_b_point() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        let x = m.render_dzdt(&sched, n, FS);
        for lm in m.landmarks(&sched, n, FS) {
            assert!(x[lm.b].abs() < 0.18 * m.dzdt_max, "ICG at B = {}", x[lm.b]);
        }
    }

    #[test]
    fn per_beat_integral_compensated() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        let x = m.render_dzdt(&sched, n, FS);
        let z = IcgMorphology::delta_z(&x, FS);
        // ΔZ must not drift: its value at consecutive beat starts stays
        // bounded.
        let starts: Vec<usize> = sched
            .iter()
            .map(|b| (b.t_r * FS) as usize)
            .filter(|&i| i < n)
            .collect();
        for w in starts.windows(2) {
            assert!(
                (z[w[1]] - z[w[0]]).abs() < 0.05,
                "drift {} between beats",
                z[w[1]] - z[w[0]]
            );
        }
    }

    #[test]
    fn delta_z_falls_during_ejection() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        let x = m.render_dzdt(&sched, n, FS);
        let z = IcgMorphology::delta_z(&x, FS);
        for lm in m.landmarks(&sched, n, FS).iter().take(3) {
            assert!(z[lm.x] < z[lm.b], "ΔZ should fall from B to X");
        }
    }

    #[test]
    fn landmarks_ordering() {
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = (12.0 * FS) as usize;
        for lm in m.landmarks(&sched, n, FS) {
            assert!(lm.r < lm.b && lm.b < lm.c && lm.c < lm.x);
        }
    }

    #[test]
    fn amplitude_scales_with_dzdt_max() {
        let sched = schedule();
        let n = (12.0 * FS) as usize;
        let lo = IcgMorphology {
            dzdt_max: 1.0,
            ..IcgMorphology::default()
        };
        let hi = IcgMorphology {
            dzdt_max: 2.0,
            ..IcgMorphology::default()
        };
        let a = lo.render_dzdt(&sched, n, FS);
        let b = hi.render_dzdt(&sched, n, FS);
        let pa = a.iter().cloned().fold(f64::MIN, f64::max);
        let pb = b.iter().cloned().fold(f64::MIN, f64::max);
        assert!((pb / pa - 2.0).abs() < 0.05);
    }

    #[test]
    fn spectrum_is_below_20hz() {
        // the paper low-passes ICG at 20 Hz because the signal band is
        // 0.8–20 Hz; verify the synthetic signal respects that.
        let sched = schedule();
        let m = IcgMorphology::default();
        let n = 2048;
        let x = m.render_dzdt(&sched, n, FS);
        let frac = cardiotouch_dsp::spectrum::power_fraction_above(&x, 20.0, FS).unwrap();
        assert!(frac < 0.02, "fraction of power above 20 Hz: {frac}");
    }
}
