//! Synthetic physiology substrate for the `cardiotouch` workspace.
//!
//! The DATE 2016 paper evaluates its touch-based ICG/ECG device on five
//! human subjects. Humans are not available to a simulation, so this crate
//! provides the closest synthetic equivalent that exercises the same code
//! paths:
//!
//! * [`tissue`] — Cole–Cole dispersion models of body segments, giving the
//!   frequency-dependent bioimpedance the paper sweeps over
//!   {2, 10, 50, 100} kHz;
//! * [`heart`] — a beat scheduler with heart-rate variability and
//!   ground-truth systolic time intervals (PEP, LVET) from Weissler-style
//!   regressions;
//! * [`ecg`] and [`icg`] — per-beat waveform synthesis with *known* R, B,
//!   C and X landmark positions, so detector accuracy is measurable;
//! * [`resp`], [`motion`], [`noise`] — the artifact processes the paper
//!   names (respiration 0.04–2 Hz, motion 0.1–10 Hz, instrumentation
//!   noise);
//! * [`subject`] — the five-subject reference population;
//! * [`path`] — the traditional 4-electrode chest configuration versus the
//!   hand-to-hand touch configuration in arm Positions 1–3;
//! * [`scenario`] — paired 30-second recordings (traditional + device,
//!   simultaneously, sharing the same underlying hemodynamics) that drive
//!   the paper's position-study experiments.
//!
//! Everything is deterministic given an RNG seed, so experiments are
//! exactly reproducible.
//!
//! # Example
//!
//! ```
//! use cardiotouch_physio::scenario::{Protocol, PairedRecording};
//! use cardiotouch_physio::subject::Population;
//! use cardiotouch_physio::path::Position;
//!
//! # fn main() -> Result<(), cardiotouch_physio::PhysioError> {
//! let population = Population::reference_five();
//! let subject = &population.subjects()[0];
//! let protocol = Protocol::paper_default(); // 250 Hz, 30 s
//! let rec = PairedRecording::generate(subject, Position::One, 50_000.0, &protocol, 7)?;
//! assert_eq!(rec.device_ecg().len(), rec.device_z().len());
//! # Ok(())
//! # }
//! ```

pub mod corpus;
pub mod ecg;
pub mod ecgsyn;
pub mod faults;
pub mod heart;
pub mod icg;
pub mod motion;
pub mod noise;
pub mod path;
pub mod resp;
pub mod scenario;
pub mod subject;
pub mod tissue;

mod error;

pub use error::PhysioError;
