//! Motion artifact model.
//!
//! The paper's second named ICG artifact: motion, with frequency content in
//! 0.1–10 Hz. For a hand-held device the dominant sources are hand tremor
//! and grip-pressure variation, both of which change the skin–electrode
//! contact impedance. The model band-limits white noise to 0.1–10 Hz with
//! the workspace's own Butterworth designs and scales it by a level that
//! depends on the arm position (Positions 1–3 of the study differ mainly
//! in how well the arm is braced).

use crate::noise;
use crate::PhysioError;
use cardiotouch_dsp::iir::Butterworth;
use rand::Rng;

/// Parameters of the motion-artifact process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MotionModel {
    /// RMS artifact level, ohms.
    pub rms_ohm: f64,
    /// Lower band edge, hertz (paper: 0.1 Hz).
    pub band_lo_hz: f64,
    /// Upper band edge, hertz (paper: 10 Hz).
    pub band_hi_hz: f64,
}

impl Default for MotionModel {
    fn default() -> Self {
        Self {
            rms_ohm: 0.1,
            band_lo_hz: 0.1,
            band_hi_hz: 10.0,
        }
    }
}

impl MotionModel {
    /// Creates a model with the paper's 0.1–10 Hz band and the given RMS.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a negative RMS.
    pub fn with_rms(rms_ohm: f64) -> Result<Self, PhysioError> {
        if !(rms_ohm >= 0.0 && rms_ohm.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "rms_ohm",
                value: rms_ohm,
                constraint: "must be non-negative and finite",
            });
        }
        Ok(Self {
            rms_ohm,
            ..Self::default()
        })
    }

    /// Renders `n` samples of band-limited motion artifact at rate `fs`,
    /// in ohms.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] when the band is invalid
    /// for the sampling rate, or a wrapped DSP error.
    pub fn render<R: Rng + ?Sized>(
        &self,
        n: usize,
        fs: f64,
        rng: &mut R,
    ) -> Result<Vec<f64>, PhysioError> {
        if self.rms_ohm == 0.0 || n == 0 {
            return Ok(vec![0.0; n]);
        }
        if !(self.band_lo_hz > 0.0
            && self.band_hi_hz > self.band_lo_hz
            && self.band_hi_hz < fs / 2.0)
        {
            return Err(PhysioError::InvalidParameter {
                name: "band",
                value: self.band_hi_hz,
                constraint: "must satisfy 0 < lo < hi < fs/2",
            });
        }
        // Generate extra lead-in so the filter transient can be discarded.
        let lead = (2.0 * fs) as usize;
        let raw = noise::white(n + lead, 1.0, rng);
        let bp = Butterworth::bandpass(2, self.band_lo_hz, self.band_hi_hz, fs)?;
        let filtered = bp.filter(&raw);
        let body = &filtered[lead..];
        // Normalise to the requested RMS.
        let rms = (body.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
        let scale = if rms > 0.0 { self.rms_ohm / rms } else { 0.0 };
        Ok(body.iter().map(|v| v * scale).collect())
    }
}

/// Motion artifact of a *steady hold* (the study protocol: subjects stand
/// still in each position): the artifact RMS is dominated by slow
/// grip-pressure drift, with only a small physiological-tremor component
/// at higher frequency. The split matters downstream because the ICG is
/// `−dZ/dt` — differentiation amplifies a component at frequency `f` by
/// `2πf`, so flat-spectrum motion of the same RMS would swamp the
/// cardiac signal while this realistic tilt does not.
///
/// Total RMS is `rms_ohm`; ~99 % of the variance sits in 0.1–1.0 Hz
/// (grip-pressure drift) and ~1 % (amplitude 0.1×) in 1–8 Hz
/// (physiological tremor — milliohm-scale on a braced contact).
///
/// # Errors
///
/// Returns [`PhysioError::InvalidParameter`] for a negative RMS or an
/// unusable sampling rate.
pub fn render_hold_still<R: Rng + ?Sized>(
    n: usize,
    fs: f64,
    rms_ohm: f64,
    rng: &mut R,
) -> Result<Vec<f64>, PhysioError> {
    if rms_ohm == 0.0 || n == 0 {
        return Ok(vec![0.0; n]);
    }
    let drift = MotionModel {
        rms_ohm: 0.995 * rms_ohm,
        band_lo_hz: 0.1,
        band_hi_hz: 0.6,
    }
    .render(n, fs, rng)?;
    let tremor = MotionModel {
        rms_ohm: 0.1 * rms_ohm,
        band_lo_hz: 1.0,
        band_hi_hz: 8.0,
    }
    .render(n, fs, rng)?;
    Ok(drift.iter().zip(&tremor).map(|(a, b)| a + b).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 250.0;

    #[test]
    fn rms_is_normalised() {
        let m = MotionModel::with_rms(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = m.render(5000, FS, &mut rng).unwrap();
        let rms = (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        assert!((rms - 0.3).abs() < 1e-9);
    }

    #[test]
    fn band_limited_to_paper_band() {
        let m = MotionModel::with_rms(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x = m.render(4096, FS, &mut rng).unwrap();
        // most power below ~15 Hz (allowing the 2nd-order roll-off skirt)
        let frac_above =
            cardiotouch_dsp::spectrum::power_fraction_above(&x[..2048], 20.0, FS).unwrap();
        assert!(frac_above < 0.05, "{frac_above}");
    }

    #[test]
    fn zero_rms_silent() {
        let m = MotionModel::with_rms(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = m.render(100, FS, &mut rng).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_negative_rms_and_bad_band() {
        assert!(MotionModel::with_rms(-0.1).is_err());
        let m = MotionModel {
            rms_ohm: 1.0,
            band_lo_hz: 10.0,
            band_hi_hz: 5.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(m.render(100, FS, &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let m = MotionModel::with_rms(0.2).unwrap();
        let a = m.render(512, FS, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = m.render(512, FS, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }
}
