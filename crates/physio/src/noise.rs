//! Noise processes: white Gaussian, 50 Hz powerline, 1/f (pink) and burst
//! artifacts.
//!
//! These model the instrumentation and environment disturbances the
//! paper's filtering stages must remove. All generators are deterministic
//! given the caller's RNG.

use rand::Rng;

/// Standard-normal sampler (Box–Muller), kept local so the workspace does
/// not need `rand_distr`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with no cached spare value.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller on (0,1] uniforms.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// `n` samples of white Gaussian noise with standard deviation `sigma`.
#[must_use]
pub fn white<R: Rng + ?Sized>(n: usize, sigma: f64, rng: &mut R) -> Vec<f64> {
    let mut g = Gaussian::new();
    (0..n).map(|_| sigma * g.sample(rng)).collect()
}

/// `n` samples of a powerline interference tone: `amp · sin(2π f t + φ)`
/// with slow ±2 % amplitude flutter, at sampling rate `fs`.
#[must_use]
pub fn powerline<R: Rng + ?Sized>(n: usize, f_hz: f64, amp: f64, fs: f64, rng: &mut R) -> Vec<f64> {
    let phase: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
    let flutter_phase: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            let flutter = 1.0 + 0.02 * (2.0 * std::f64::consts::PI * 0.1 * t + flutter_phase).sin();
            amp * flutter * (2.0 * std::f64::consts::PI * f_hz * t + phase).sin()
        })
        .collect()
}

/// `n` samples of approximately 1/f ("pink") noise via the Voss–McCartney
/// multi-rate summation with `octaves` rows, scaled to standard deviation
/// `sigma`.
#[must_use]
pub fn pink<R: Rng + ?Sized>(n: usize, sigma: f64, octaves: usize, rng: &mut R) -> Vec<f64> {
    let octaves = octaves.max(1);
    let mut g = Gaussian::new();
    let mut rows: Vec<f64> = (0..octaves).map(|_| g.sample(rng)).collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        for (k, row) in rows.iter_mut().enumerate() {
            // row k updates every 2^k samples
            if i % (1usize << k.min(30)) == 0 {
                *row = g.sample(rng);
            }
        }
        out.push(rows.iter().sum::<f64>());
    }
    // normalise to the requested sigma
    let m = out.iter().sum::<f64>() / n.max(1) as f64;
    let var = out.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n.max(1) as f64;
    let scale = if var > 0.0 { sigma / var.sqrt() } else { 0.0 };
    for v in out.iter_mut() {
        *v = (*v - m) * scale;
    }
    out
}

/// Adds sparse burst artifacts to `x`: on average `rate_per_s` bursts per
/// second, each a half-sine bump of `burst_s` seconds and amplitude
/// `amp` (random sign). Models momentary grip/contact disturbances.
pub fn add_bursts<R: Rng + ?Sized>(
    x: &mut [f64],
    rate_per_s: f64,
    burst_s: f64,
    amp: f64,
    fs: f64,
    rng: &mut R,
) {
    if x.is_empty() || rate_per_s <= 0.0 {
        return;
    }
    let p_per_sample = rate_per_s / fs;
    let burst_len = (burst_s * fs).max(1.0) as usize;
    let mut i = 0;
    while i < x.len() {
        if rng.gen::<f64>() < p_per_sample {
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            for k in 0..burst_len.min(x.len() - i) {
                let w = (std::f64::consts::PI * k as f64 / burst_len as f64).sin();
                x[i + k] += sign * amp * w;
            }
            i += burst_len;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Gaussian::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn white_noise_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = white(50_000, 0.5, &mut rng);
        let var = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn white_noise_deterministic_for_seed() {
        let a = white(100, 1.0, &mut StdRng::seed_from_u64(3));
        let b = white(100, 1.0, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn powerline_is_narrowband() {
        let fs = 250.0;
        let mut rng = StdRng::seed_from_u64(4);
        let x = powerline(1000, 50.0, 1.0, fs, &mut rng);
        let b50 = cardiotouch_dsp::spectrum::goertzel(&x, 50.0, fs).unwrap();
        let b20 = cardiotouch_dsp::spectrum::goertzel(&x, 20.0, fs).unwrap();
        assert!(b50.magnitude() > 50.0 * b20.magnitude());
    }

    #[test]
    fn pink_noise_low_frequencies_dominate() {
        let fs = 250.0;
        let mut rng = StdRng::seed_from_u64(5);
        let x = pink(8192, 1.0, 8, &mut rng);
        let spec = cardiotouch_dsp::spectrum::amplitude_spectrum(&x[..2048], fs).unwrap();
        let low: f64 = spec
            .iter()
            .filter(|(f, _)| *f > 0.0 && *f < 5.0)
            .map(|(_, a)| a * a)
            .sum();
        let high: f64 = spec
            .iter()
            .filter(|(f, _)| *f > 60.0)
            .map(|(_, a)| a * a)
            .sum();
        assert!(low > 3.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn pink_noise_sigma_normalised() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = pink(20_000, 0.7, 8, &mut rng);
        let m = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64;
        assert!((var.sqrt() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn bursts_inject_energy_at_expected_rate() {
        let fs = 250.0;
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = vec![0.0; (60.0 * fs) as usize];
        add_bursts(&mut x, 1.0, 0.1, 2.0, fs, &mut rng);
        let hit = x.iter().filter(|v| v.abs() > 0.1).count();
        // ~60 bursts of ~25 samples each → ~1500 affected samples; allow wide margin
        assert!(hit > 200 && hit < 5000, "hit {hit}");
    }

    #[test]
    fn bursts_zero_rate_is_noop() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = vec![0.0; 100];
        add_bursts(&mut x, 0.0, 0.1, 2.0, 250.0, &mut rng);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
