//! Measurement paths: traditional 4-electrode chest setup versus the
//! hand-to-hand touch configuration in the study's three arm positions.
//!
//! The paper's experiment (Section V) compares the device against the
//! traditional setup in three standing positions:
//!
//! * **Position 1** — device held up to the chest (arms bent, braced);
//! * **Position 2** — arms stretched out in front, parallel to the floor;
//! * **Position 3** — arms slowly lowered to the sides.
//!
//! The positions differ physically in three ways this module parameterises:
//!
//! 1. **mean path impedance** — arm muscle contraction and joint angle
//!    change the arm segment impedance (stretched arms read the highest,
//!    which is why the paper's e21 error is the largest);
//! 2. **cardiac coupling** — how much of the thoracic ΔZ survives at the
//!    hands;
//! 3. **motion level** — an unbraced, lowered arm shakes more (why
//!    Position 3 shows the lowest correlation in Table IV).

/// Arm position of the touch measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Position {
    /// Device held up to the chest.
    One,
    /// Arms stretched out in front, parallel to the floor.
    Two,
    /// Arms down by the sides.
    Three,
}

impl Position {
    /// All positions in study order.
    pub const ALL: [Position; 3] = [Position::One, Position::Two, Position::Three];

    /// 1-based index used in the paper's tables and equations.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Position::One => 1,
            Position::Two => 2,
            Position::Three => 3,
        }
    }

    /// Multiplier on the arm-segment impedance relative to Position 1.
    /// Stretched arms (Position 2) read ~15 % higher; lowered arms
    /// (Position 3) a few per cent higher.
    #[must_use]
    pub fn arm_impedance_factor(&self) -> f64 {
        match self {
            Position::One => 1.00,
            Position::Two => 1.15,
            Position::Three => 1.03,
        }
    }

    /// Fraction of the thoracic cardiac ΔZ visible at the hands.
    #[must_use]
    pub fn cardiac_coupling(&self) -> f64 {
        match self {
            Position::One => 0.72,
            Position::Two => 0.66,
            Position::Three => 0.58,
        }
    }

    /// Multiplier on the subject's base motion-artifact RMS. Position 1 is
    /// braced against the chest; Position 3 hangs free.
    #[must_use]
    pub fn motion_factor(&self) -> f64 {
        match self {
            Position::One => 1.0,
            Position::Two => 1.4,
            Position::Three => 1.75,
        }
    }

    /// Fraction of the thoracic respiration ΔZ visible at the hands.
    #[must_use]
    pub fn respiration_coupling(&self) -> f64 {
        match self {
            Position::One => 0.55,
            Position::Two => 0.45,
            Position::Three => 0.40,
        }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Position {}", self.index())
    }
}

/// Which electrode configuration a recording uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MeasurementPath {
    /// Four electrodes on the chest and thorax (Fig 1 of the paper).
    Traditional,
    /// Finger contact on the hand-held device (Fig 2), in a given arm
    /// position.
    Touch(Position),
}

impl std::fmt::Display for MeasurementPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasurementPath::Traditional => write!(f, "traditional electrodes"),
            MeasurementPath::Touch(p) => write!(f, "touch, {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_paper_numbering() {
        assert_eq!(Position::One.index(), 1);
        assert_eq!(Position::Two.index(), 2);
        assert_eq!(Position::Three.index(), 3);
    }

    #[test]
    fn position2_has_highest_impedance() {
        // the paper's e21 (pos 2 vs pos 1) is the largest error, which
        // requires Position 2 to differ most from Position 1 in mean Z
        let f1 = Position::One.arm_impedance_factor();
        let f2 = Position::Two.arm_impedance_factor();
        let f3 = Position::Three.arm_impedance_factor();
        assert!(f2 > f3 && f3 > f1);
        // e31 smallest → positions 3 and 1 closest
        assert!((f3 - f1).abs() < (f2 - f1).abs());
        assert!((f3 - f1).abs() < (f2 - f3).abs());
    }

    #[test]
    fn position3_shakes_most() {
        assert!(Position::Three.motion_factor() > Position::Two.motion_factor());
        assert!(Position::Two.motion_factor() > Position::One.motion_factor());
    }

    #[test]
    fn coupling_weakens_down_the_positions() {
        assert!(Position::One.cardiac_coupling() > Position::Two.cardiac_coupling());
        assert!(Position::Two.cardiac_coupling() > Position::Three.cardiac_coupling());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Position::Two.to_string(), "Position 2");
        assert_eq!(
            MeasurementPath::Touch(Position::Three).to_string(),
            "touch, Position 3"
        );
        assert_eq!(
            MeasurementPath::Traditional.to_string(),
            "traditional electrodes"
        );
    }
}
