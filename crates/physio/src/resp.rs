//! Respiration artifact model.
//!
//! Breathing modulates thoracic impedance far more strongly than the
//! cardiac component does (that is how impedance pneumography works), and
//! the paper lists it as the first of the two main ICG artifacts, with
//! frequency content in 0.04–2 Hz. The model is a slightly non-sinusoidal
//! oscillation (fundamental plus a second harmonic, as real airflow is
//! asymmetric between inspiration and expiration) with slow amplitude and
//! rate wander.

use crate::PhysioError;
use rand::Rng;

/// Parameters of the respiration process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RespirationModel {
    /// Breathing rate, hertz (typical resting adult: 0.2–0.3 Hz).
    pub rate_hz: f64,
    /// Peak impedance excursion, ohms (thoracic: 0.1–1 Ω; the hand-to-hand
    /// path sees an attenuated version).
    pub depth_ohm: f64,
    /// Second-harmonic fraction (waveform asymmetry), 0–0.5.
    pub harmonic: f64,
}

impl Default for RespirationModel {
    fn default() -> Self {
        Self {
            rate_hz: 0.25,
            depth_ohm: 0.5,
            harmonic: 0.25,
        }
    }
}

impl RespirationModel {
    /// Renders `n` samples of the respiration impedance component at rate
    /// `fs`, in ohms. The random phase and slow wander come from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] when the rate is outside
    /// the paper's stated respiration band (0.04–2 Hz) or the depth is
    /// negative.
    pub fn render<R: Rng + ?Sized>(
        &self,
        n: usize,
        fs: f64,
        rng: &mut R,
    ) -> Result<Vec<f64>, PhysioError> {
        if !(0.04..=2.0).contains(&self.rate_hz) {
            return Err(PhysioError::InvalidParameter {
                name: "rate_hz",
                value: self.rate_hz,
                constraint: "must be within the 0.04-2 Hz respiration band",
            });
        }
        if self.depth_ohm < 0.0 {
            return Err(PhysioError::InvalidParameter {
                name: "depth_ohm",
                value: self.depth_ohm,
                constraint: "must be non-negative",
            });
        }
        let phase0: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        let wander_phase: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        // The instantaneous rate wanders ±10 % at 0.02 Hz; the phase is
        // the *integral* of the instantaneous rate (computing
        // `rate(t)·t` instead would make the effective frequency drift
        // far beyond the wander envelope as t grows).
        let mut ph = phase0;
        Ok((0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let inst_rate = self.rate_hz
                    * (1.0 + 0.1 * (2.0 * std::f64::consts::PI * 0.02 * t + wander_phase).sin());
                ph += 2.0 * std::f64::consts::PI * inst_rate / fs;
                self.depth_ohm * (ph.sin() + self.harmonic * (2.0 * ph).sin())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn render_length_and_bound() {
        let m = RespirationModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let x = m.render(1000, 250.0, &mut rng).unwrap();
        assert_eq!(x.len(), 1000);
        let bound = m.depth_ohm * (1.0 + m.harmonic);
        assert!(x.iter().all(|v| v.abs() <= bound + 1e-9));
    }

    #[test]
    fn energy_concentrated_in_respiration_band() {
        let fs = 50.0; // enough for a 0.25 Hz signal, keeps the DFT small
        let m = RespirationModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let x = m.render(4000, fs, &mut rng).unwrap();
        let frac_above_2hz = cardiotouch_dsp::spectrum::power_fraction_above(&x, 2.0, fs).unwrap();
        assert!(frac_above_2hz < 0.01, "{frac_above_2hz}");
    }

    #[test]
    fn rejects_out_of_band_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = RespirationModel {
            rate_hz: 3.0,
            ..RespirationModel::default()
        };
        assert!(m.render(100, 250.0, &mut rng).is_err());
        let m2 = RespirationModel {
            depth_ohm: -1.0,
            ..RespirationModel::default()
        };
        assert!(m2.render(100, 250.0, &mut rng).is_err());
    }

    #[test]
    fn zero_depth_is_silent() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = RespirationModel {
            depth_ohm: 0.0,
            ..RespirationModel::default()
        };
        let x = m.render(100, 250.0, &mut rng).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = RespirationModel::default();
        let a = m.render(256, 250.0, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = m.render(256, 250.0, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }
}
