//! Paired recording generation — the synthetic stand-in for the paper's
//! data-collection sessions.
//!
//! The paper records every subject for 30 s in each arm position at each of
//! the four injection frequencies, plus a traditional-electrode reference.
//! [`PairedRecording::generate`] produces both channels *simultaneously*,
//! sharing the same underlying cardiac and respiratory processes (which is
//! what makes the correlation analysis of Tables II–IV meaningful) while
//! motion and instrumentation noise are independent per channel.
//!
//! The generated impedance channels are the *true* physical Z(t) at the
//! electrodes; the device front-end (AC coupling, demodulation, ADC
//! quantization) lives in `cardiotouch-device` and is applied downstream.

use crate::ecg::EcgMorphology;
use crate::heart::Beat;
use crate::icg::{BeatLandmarks, IcgMorphology};
use crate::motion;
use crate::noise;
use crate::path::Position;
use crate::subject::Subject;
use crate::PhysioError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Acquisition protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Protocol {
    /// Sampling rate of the physiological channels, hertz.
    pub fs: f64,
    /// Recording duration, seconds.
    pub duration_s: f64,
    /// Powerline interference frequency, hertz (Europe: 50 Hz).
    pub powerline_hz: f64,
    /// Powerline amplitude on the ECG channel, millivolts.
    pub powerline_mv: f64,
    /// Baseline-wander amplitude on the ECG channel, millivolts.
    pub baseline_wander_mv: f64,
    /// White-noise RMS on the ECG channel, millivolts.
    pub ecg_noise_mv: f64,
}

impl Protocol {
    /// The paper's protocol: fs = 250 Hz, 30 s recordings, 50 Hz mains.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            fs: 250.0,
            duration_s: 30.0,
            powerline_hz: 50.0,
            powerline_mv: 0.05,
            baseline_wander_mv: 0.20,
            ecg_noise_mv: 0.02,
        }
    }

    /// Number of samples in one recording.
    #[must_use]
    pub fn samples(&self) -> usize {
        (self.duration_s * self.fs).round() as usize
    }
}

impl Default for Protocol {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Ground-truth annotations carried by a recording.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Truth {
    /// Per-beat cardiac ground truth.
    pub beats: Vec<Beat>,
    /// Landmark sample indices for beats fully inside the recording.
    pub landmarks: Vec<BeatLandmarks>,
    /// Exact R-peak sample indices.
    pub r_peaks: Vec<usize>,
}

/// One simulated session: traditional-electrode and touch-device channels
/// recorded simultaneously from the same subject.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PairedRecording {
    fs: f64,
    injection_freq_hz: f64,
    position: Position,
    traditional_z: Vec<f64>,
    device_z: Vec<f64>,
    device_ecg: Vec<f64>,
    traditional_z0: f64,
    device_z0: f64,
    truth: Truth,
}

impl PairedRecording {
    /// Simulates one session of `subject` holding the device in
    /// `position`, with injection frequency `injection_freq_hz`, under
    /// `protocol`. `seed` selects the random realisation; the same
    /// arguments always produce the same recording.
    ///
    /// # Errors
    ///
    /// Propagates parameter errors from the underlying physiological
    /// models (heart rate out of range, duration too short, invalid
    /// artifact bands).
    pub fn generate(
        subject: &Subject,
        position: Position,
        injection_freq_hz: f64,
        protocol: &Protocol,
        seed: u64,
    ) -> Result<Self, PhysioError> {
        if !(injection_freq_hz > 0.0 && injection_freq_hz.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "injection_freq_hz",
                value: injection_freq_hz,
                constraint: "must be positive and finite",
            });
        }
        let n = protocol.samples();
        let fs = protocol.fs;

        // Derive disjoint RNG streams so e.g. changing the motion model
        // does not perturb the beat schedule.
        let mix = |salt: u64| -> StdRng {
            let s = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(subject.id()) << 32)
                .wrapping_add((position.index() as u64) << 16)
                .wrapping_add(injection_freq_hz as u64)
                .wrapping_add(salt);
            StdRng::seed_from_u64(s)
        };

        // --- shared physiology -----------------------------------------
        let beats = subject.heart().schedule(protocol.duration_s, &mut mix(1))?;
        let icg_clean = subject.icg().render_dzdt(&beats, n, fs);
        let delta_z_cardiac = IcgMorphology::delta_z(&icg_clean, fs);
        let resp_thorax = subject.resp().render(n, fs, &mut mix(2))?;

        // --- traditional channel ----------------------------------------
        let traditional_z0 = subject.traditional_path().magnitude_at(injection_freq_hz);
        let chest_motion =
            motion::render_hold_still(n, fs, subject.chest_motion_rms_ohm(), &mut mix(3))?;
        let chest_noise = noise::white(n, subject.sensor_noise_rms_ohm(), &mut mix(4));
        let traditional_z: Vec<f64> = (0..n)
            .map(|i| {
                traditional_z0
                    + delta_z_cardiac[i]
                    + resp_thorax[i]
                    + chest_motion[i]
                    + chest_noise[i]
            })
            .collect();

        // --- touch channel ----------------------------------------------
        let device_z0 = subject
            .touch_path(position.arm_impedance_factor())
            .magnitude_at(injection_freq_hz);
        let coupling = position.cardiac_coupling();
        let resp_coupling = position.respiration_coupling();
        let touch_motion_rms = subject.touch_motion_rms_ohm() * position.motion_factor();
        let mut touch_motion = motion::render_hold_still(n, fs, touch_motion_rms, &mut mix(5))?;
        // occasional grip-pressure bursts, heavier in the free-hanging
        // positions
        noise::add_bursts(
            &mut touch_motion,
            0.05 * position.motion_factor(),
            0.3,
            3.0 * touch_motion_rms,
            fs,
            &mut mix(6),
        );
        let touch_noise = noise::white(n, 1.5 * subject.sensor_noise_rms_ohm(), &mut mix(7));
        let device_z: Vec<f64> = (0..n)
            .map(|i| {
                device_z0
                    + coupling * delta_z_cardiac[i]
                    + resp_coupling * resp_thorax[i]
                    + touch_motion[i]
                    + touch_noise[i]
            })
            .collect();

        // --- device ECG channel -----------------------------------------
        let mut device_ecg = subject.ecg().render(&beats, n, fs);
        let wander_scale = if subject.resp().depth_ohm > 0.0 {
            protocol.baseline_wander_mv / subject.resp().depth_ohm
        } else {
            0.0
        };
        let mains = noise::powerline(
            n,
            protocol.powerline_hz,
            protocol.powerline_mv,
            fs,
            &mut mix(8),
        );
        let ecg_noise = noise::white(n, protocol.ecg_noise_mv, &mut mix(9));
        for i in 0..n {
            device_ecg[i] += wander_scale * resp_thorax[i] + mains[i] + ecg_noise[i];
        }

        let landmarks = subject.icg().landmarks(&beats, n, fs);
        let r_peaks = EcgMorphology::r_peak_indices(&beats, n, fs);

        Ok(Self {
            fs,
            injection_freq_hz,
            position,
            traditional_z,
            device_z,
            device_ecg,
            traditional_z0,
            device_z0,
            truth: Truth {
                beats,
                landmarks,
                r_peaks,
            },
        })
    }

    /// Sampling rate, hertz.
    #[must_use]
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Injection frequency of this session, hertz.
    #[must_use]
    pub fn injection_freq_hz(&self) -> f64 {
        self.injection_freq_hz
    }

    /// Arm position of this session.
    #[must_use]
    pub fn position(&self) -> Position {
        self.position
    }

    /// The impedance channel seen by the traditional chest electrodes,
    /// ohms.
    #[must_use]
    pub fn traditional_z(&self) -> &[f64] {
        &self.traditional_z
    }

    /// The impedance channel seen by the touch device, ohms.
    #[must_use]
    pub fn device_z(&self) -> &[f64] {
        &self.device_z
    }

    /// The ECG channel acquired by the touch device, millivolts.
    #[must_use]
    pub fn device_ecg(&self) -> &[f64] {
        &self.device_ecg
    }

    /// True mean bioimpedance of the traditional path at this frequency,
    /// ohms.
    #[must_use]
    pub fn traditional_z0(&self) -> f64 {
        self.traditional_z0
    }

    /// True mean bioimpedance of the touch path at this frequency, ohms.
    #[must_use]
    pub fn device_z0(&self) -> f64 {
        self.device_z0
    }

    /// Ground-truth annotations.
    #[must_use]
    pub fn truth(&self) -> &Truth {
        &self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::Population;
    use cardiotouch_dsp::stats;

    fn subject() -> Subject {
        Population::reference_five().subjects()[0].clone()
    }

    #[test]
    fn channels_have_protocol_length() {
        let p = Protocol::paper_default();
        let r = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 1).unwrap();
        assert_eq!(r.traditional_z().len(), p.samples());
        assert_eq!(r.device_z().len(), p.samples());
        assert_eq!(r.device_ecg().len(), p.samples());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Protocol::paper_default();
        let a = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 42).unwrap();
        let b = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 42).unwrap();
        assert_eq!(a, b);
        let c = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 43).unwrap();
        assert_ne!(a.device_z()[..10], c.device_z()[..10]);
    }

    #[test]
    fn mean_levels_near_z0() {
        let p = Protocol::paper_default();
        let r = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 2).unwrap();
        let mean_trad = stats::mean(r.traditional_z()).unwrap();
        let mean_dev = stats::mean(r.device_z()).unwrap();
        assert!((mean_trad - r.traditional_z0()).abs() < 0.5);
        assert!((mean_dev - r.device_z0()).abs() < 1.0);
        assert!(r.device_z0() > 5.0 * r.traditional_z0());
    }

    #[test]
    fn channels_correlate_strongly_in_position_one() {
        let p = Protocol::paper_default();
        let r = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 3).unwrap();
        let r_coef = stats::pearson(r.traditional_z(), r.device_z()).unwrap();
        assert!(r_coef > 0.8, "correlation {r_coef}");
    }

    #[test]
    fn position_three_correlates_worse_than_one() {
        let p = Protocol::paper_default();
        // average over several seeds to avoid single-draw luck
        let avg = |pos: Position| -> f64 {
            (0..4)
                .map(|s| {
                    let r =
                        PairedRecording::generate(&subject(), pos, 50_000.0, &p, 100 + s).unwrap();
                    stats::pearson(r.traditional_z(), r.device_z()).unwrap()
                })
                .sum::<f64>()
                / 4.0
        };
        let r1 = avg(Position::One);
        let r3 = avg(Position::Three);
        assert!(r1 > r3, "pos1 {r1} vs pos3 {r3}");
    }

    #[test]
    fn truth_annotations_consistent() {
        let p = Protocol::paper_default();
        let r = PairedRecording::generate(&subject(), Position::Two, 10_000.0, &p, 4).unwrap();
        let t = r.truth();
        assert!(!t.beats.is_empty());
        assert!(!t.landmarks.is_empty());
        assert_eq!(t.r_peaks.len(), t.beats.len());
        for lm in &t.landmarks {
            assert!(lm.r < lm.b && lm.b < lm.c && lm.c < lm.x);
            assert!(lm.x < p.samples());
        }
    }

    #[test]
    fn rejects_bad_injection_frequency() {
        let p = Protocol::paper_default();
        assert!(PairedRecording::generate(&subject(), Position::One, 0.0, &p, 1).is_err());
        assert!(PairedRecording::generate(&subject(), Position::One, f64::NAN, &p, 1).is_err());
    }

    #[test]
    fn ecg_contains_mains_interference_before_filtering() {
        let p = Protocol::paper_default();
        let r = PairedRecording::generate(&subject(), Position::One, 50_000.0, &p, 5).unwrap();
        let b50 = cardiotouch_dsp::spectrum::goertzel(&r.device_ecg()[..2048], 50.0, p.fs)
            .unwrap()
            .magnitude();
        let b45 = cardiotouch_dsp::spectrum::goertzel(&r.device_ecg()[..2048], 44.6, p.fs)
            .unwrap()
            .magnitude();
        assert!(b50 > 2.0 * b45, "50 Hz {b50} vs 44.6 Hz {b45}");
    }

    #[test]
    fn injection_frequency_changes_z0() {
        let p = Protocol::paper_default();
        let lo = PairedRecording::generate(&subject(), Position::One, 2_000.0, &p, 6).unwrap();
        let hi = PairedRecording::generate(&subject(), Position::One, 100_000.0, &p, 6).unwrap();
        // true tissue impedance decreases with frequency
        assert!(lo.device_z0() > hi.device_z0());
        assert!(lo.traditional_z0() > hi.traditional_z0());
    }
}
