//! The study population.
//!
//! The paper evaluates on five male subjects. This module defines the
//! per-subject parameter bundle ([`Subject`]) and a deterministic
//! five-subject reference population ([`Population::reference_five`])
//! whose spread of tissue impedance, heart rate and contact quality is
//! chosen to span the variability visible in the paper's Tables II–IV
//! (correlation coefficients from 0.69 to 0.99).

use crate::ecg::EcgMorphology;
use crate::heart::HeartModel;
use crate::icg::IcgMorphology;
use crate::resp::RespirationModel;
use crate::tissue::{BodyPath, ColeCole, ElectrodePolarization};
use crate::PhysioError;

/// All physiological and contact parameters of one synthetic subject.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Subject {
    id: u32,
    name: String,
    thorax: ColeCole,
    arm: ColeCole,
    chest_electrode: ElectrodePolarization,
    finger_electrode: ElectrodePolarization,
    heart: HeartModel,
    ecg: EcgMorphology,
    icg: IcgMorphology,
    resp: RespirationModel,
    /// Base motion-artifact RMS at the hands, ohms (before the position
    /// multiplier).
    touch_motion_rms_ohm: f64,
    /// Motion-artifact RMS of the strapped chest electrodes, ohms.
    chest_motion_rms_ohm: f64,
    /// Instrumentation white-noise RMS, ohms.
    sensor_noise_rms_ohm: f64,
}

impl Subject {
    /// Builder-style constructor used by the reference population; exposed
    /// so downstream users can define their own cohorts.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a non-positive noise
    /// or motion level.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        name: impl Into<String>,
        thorax: ColeCole,
        arm: ColeCole,
        finger_electrode: ElectrodePolarization,
        heart: HeartModel,
        icg: IcgMorphology,
        resp: RespirationModel,
        touch_motion_rms_ohm: f64,
        sensor_noise_rms_ohm: f64,
    ) -> Result<Self, PhysioError> {
        for (pname, v) in [
            ("touch_motion_rms_ohm", touch_motion_rms_ohm),
            ("sensor_noise_rms_ohm", sensor_noise_rms_ohm),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(PhysioError::InvalidParameter {
                    name: pname,
                    value: v,
                    constraint: "must be non-negative and finite",
                });
            }
        }
        Ok(Self {
            id,
            name: name.into(),
            thorax,
            arm,
            chest_electrode: ElectrodePolarization::new(2e3, 0.75)
                .expect("catalogue parameters are valid"),
            finger_electrode,
            heart,
            ecg: EcgMorphology::default(),
            icg,
            resp,
            touch_motion_rms_ohm,
            chest_motion_rms_ohm: 0.2 * touch_motion_rms_ohm,
            sensor_noise_rms_ohm,
        })
    }

    /// Numeric subject id (1-based in the reference population).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Human-readable label, e.g. `"Subject 1"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The subject's cardiac timing model.
    #[must_use]
    pub fn heart(&self) -> &HeartModel {
        &self.heart
    }

    /// The subject's ECG morphology.
    #[must_use]
    pub fn ecg(&self) -> &EcgMorphology {
        &self.ecg
    }

    /// The subject's ICG morphology.
    #[must_use]
    pub fn icg(&self) -> &IcgMorphology {
        &self.icg
    }

    /// The subject's respiration model.
    #[must_use]
    pub fn resp(&self) -> &RespirationModel {
        &self.resp
    }

    /// Base motion RMS at the hands, ohms.
    #[must_use]
    pub fn touch_motion_rms_ohm(&self) -> f64 {
        self.touch_motion_rms_ohm
    }

    /// Motion RMS of the strapped chest electrodes, ohms.
    #[must_use]
    pub fn chest_motion_rms_ohm(&self) -> f64 {
        self.chest_motion_rms_ohm
    }

    /// Instrumentation white-noise RMS, ohms.
    #[must_use]
    pub fn sensor_noise_rms_ohm(&self) -> f64 {
        self.sensor_noise_rms_ohm
    }

    /// Returns a copy of this subject with thoracic fluid accumulation:
    /// `excess_fluid_fraction = 0.1` lowers the thoracic impedance by
    /// ~10 % (fluid is conductive), which is the decompensation signature
    /// the paper's CHF use case watches for. Cardiac timing and the arms
    /// are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a fraction outside
    /// `[0, 0.5]`.
    pub fn with_fluid_overload(&self, excess_fluid_fraction: f64) -> Result<Self, PhysioError> {
        if !(0.0..=0.5).contains(&excess_fluid_fraction) {
            return Err(PhysioError::InvalidParameter {
                name: "excess_fluid_fraction",
                value: excess_fluid_fraction,
                constraint: "must be within [0, 0.5]",
            });
        }
        let mut out = self.clone();
        out.thorax = self.thorax.scaled(1.0 - excess_fluid_fraction)?;
        Ok(out)
    }

    /// The body path seen by the traditional chest configuration.
    #[must_use]
    pub fn traditional_path(&self) -> BodyPath {
        BodyPath::new(vec![self.thorax], self.chest_electrode)
    }

    /// The body path seen by the touch configuration with the arm segments
    /// scaled by `arm_factor` (see
    /// [`crate::path::Position::arm_impedance_factor`]).
    ///
    /// # Panics
    ///
    /// Never panics for `arm_factor > 0`: the scaled parameters stay in
    /// the valid Cole–Cole domain.
    #[must_use]
    pub fn touch_path(&self, arm_factor: f64) -> BodyPath {
        let scaled = ColeCole::new(
            self.arm.r0() * arm_factor,
            self.arm.r_inf() * arm_factor,
            1.0 / (2.0 * std::f64::consts::PI * 40_000.0),
            0.7,
        )
        .expect("scaling preserves validity for positive factors");
        BodyPath::new(vec![scaled, self.thorax, scaled], self.finger_electrode)
    }
}

/// A cohort of subjects.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Population {
    subjects: Vec<Subject>,
}

impl Population {
    /// Wraps an arbitrary cohort.
    #[must_use]
    pub fn new(subjects: Vec<Subject>) -> Self {
        Self { subjects }
    }

    /// The five-subject reference cohort mirroring the paper's study
    /// group: resting adult men with a spread of body composition, heart
    /// rate and — crucially for Table IV — skin/contact quality (Subject 5
    /// has dry skin and a loose grip, which is what drags his Position 3
    /// correlation down to ~0.69 in the paper).
    #[must_use]
    pub fn reference_five() -> Self {
        let mk = |id: u32,
                  thorax_scale: f64,
                  arm_scale: f64,
                  finger_k: f64,
                  hr: f64,
                  dzdt: f64,
                  resp_rate: f64,
                  motion: f64,
                  noise: f64|
         -> Subject {
            let thorax = ColeCole::new(
                32.0 * thorax_scale,
                22.0 * thorax_scale,
                1.0 / (2.0 * std::f64::consts::PI * 30_000.0),
                0.65,
            )
            .expect("valid");
            let arm = ColeCole::new(
                230.0 * arm_scale,
                140.0 * arm_scale,
                1.0 / (2.0 * std::f64::consts::PI * 40_000.0),
                0.7,
            )
            .expect("valid");
            let finger = ElectrodePolarization::new(finger_k, 0.8).expect("valid");
            let heart = HeartModel {
                hr_mean_bpm: hr,
                ..HeartModel::default()
            };
            let icg = IcgMorphology {
                dzdt_max: dzdt,
                ..IcgMorphology::default()
            };
            let resp = RespirationModel {
                rate_hz: resp_rate,
                depth_ohm: 0.45,
                harmonic: 0.25,
            };
            Subject::new(
                id,
                format!("Subject {id}"),
                thorax,
                arm,
                finger,
                heart,
                icg,
                resp,
                motion,
                noise,
            )
            .expect("catalogue parameters are valid")
        };

        // id, thorax, arm, finger K, HR, dZ/dt max, resp, motion RMS, noise RMS
        Self::new(vec![
            // The sensor-noise column is the *demodulated, in-band* white
            // noise of the lock-in impedance front-end. It must stay in
            // the low-milliohm range: the pipeline differentiates Z(t), so
            // noise at frequency f is amplified by 2πf, and values above
            // ~3 mΩ would bury the coupled dZ/dt at the hands.
            mk(1, 1.00, 1.00, 4.0e4, 68.0, 1.45, 0.24, 0.040, 0.0014),
            mk(2, 0.93, 1.08, 3.5e4, 74.0, 1.30, 0.27, 0.035, 0.0012),
            mk(3, 1.06, 0.95, 3.0e4, 62.0, 1.60, 0.22, 0.022, 0.0010),
            mk(4, 0.88, 1.15, 5.0e4, 79.0, 1.15, 0.30, 0.060, 0.0017),
            mk(5, 1.12, 1.22, 6.5e4, 71.0, 1.25, 0.26, 0.080, 0.0020),
        ])
    }

    /// Borrow the cohort.
    #[must_use]
    pub fn subjects(&self) -> &[Subject] {
        &self.subjects
    }

    /// Number of subjects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// `true` when the cohort is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }
}

impl Default for Population {
    fn default() -> Self {
        Self::reference_five()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Position;

    #[test]
    fn reference_population_has_five_subjects() {
        let p = Population::reference_five();
        assert_eq!(p.len(), 5);
        for (i, s) in p.subjects().iter().enumerate() {
            assert_eq!(s.id() as usize, i + 1);
            assert_eq!(s.name(), format!("Subject {}", i + 1));
        }
    }

    #[test]
    fn touch_path_dominated_by_arms() {
        let p = Population::reference_five();
        let s = &p.subjects()[0];
        let trad = s.traditional_path().magnitude_at(50_000.0);
        let touch = s.touch_path(1.0).magnitude_at(50_000.0);
        assert!(touch > 5.0 * trad, "touch {touch} vs traditional {trad}");
    }

    #[test]
    fn arm_factor_raises_touch_impedance() {
        let p = Population::reference_five();
        let s = &p.subjects()[0];
        let z1 = s.touch_path(Position::One.arm_impedance_factor());
        let z2 = s.touch_path(Position::Two.arm_impedance_factor());
        assert!(z2.magnitude_at(50_000.0) > z1.magnitude_at(50_000.0));
    }

    #[test]
    fn subject5_is_the_noisiest() {
        let p = Population::reference_five();
        let m: Vec<f64> = p
            .subjects()
            .iter()
            .map(Subject::touch_motion_rms_ohm)
            .collect();
        let max = m.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(m[4], max);
    }

    #[test]
    fn subjects_differ_in_heart_rate() {
        let p = Population::reference_five();
        let hrs: Vec<f64> = p.subjects().iter().map(|s| s.heart().hr_mean_bpm).collect();
        let spread = hrs.iter().cloned().fold(f64::MIN, f64::max)
            - hrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 10.0);
    }

    #[test]
    fn new_rejects_negative_levels() {
        let p = Population::reference_five();
        let s = &p.subjects()[0];
        let bad = Subject::new(
            9,
            "bad",
            s.traditional_path().segments()[0],
            s.traditional_path().segments()[0],
            ElectrodePolarization::ideal(),
            HeartModel::default(),
            IcgMorphology::default(),
            RespirationModel::default(),
            -1.0,
            0.0,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn chest_motion_smaller_than_touch_motion() {
        for s in Population::reference_five().subjects() {
            assert!(s.chest_motion_rms_ohm() < s.touch_motion_rms_ohm());
        }
    }
}
