//! Cole–Cole tissue impedance models.
//!
//! The paper's Section V sweeps the injection frequency over
//! {2, 10, 50, 100} kHz because tissue impedance is dispersive: at low
//! frequency current flows only through extracellular fluid (higher
//! impedance), at high frequency it also penetrates cell membranes (lower
//! impedance) \[27\], \[30\]. The standard phenomenological model for this is
//! the Cole–Cole equation
//!
//! ```text
//! Z(f) = R∞ + (R0 − R∞) / (1 + (j·2πf·τ)^α)
//! ```
//!
//! with `R0` the zero-frequency resistance, `R∞` the infinite-frequency
//! resistance, `τ` the characteristic time constant and `α ∈ (0, 1]` the
//! dispersion broadening exponent.
//!
//! Body measurement paths are series compositions of segments
//! ([`BodyPath`]): the traditional chest setup sees essentially the thorax;
//! the hand-to-hand touch path sees arm–thorax–arm in series plus the
//! skin–electrode polarization interface ([`ElectrodePolarization`]).

use crate::PhysioError;

/// A single Cole–Cole dispersion element.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ColeCole {
    r0: f64,
    r_inf: f64,
    tau_s: f64,
    alpha: f64,
}

impl ColeCole {
    /// Creates a Cole–Cole element.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] unless
    /// `r0 > r_inf > 0`, `tau_s > 0` and `0 < alpha <= 1`.
    pub fn new(r0: f64, r_inf: f64, tau_s: f64, alpha: f64) -> Result<Self, PhysioError> {
        if !(r_inf > 0.0 && r0 > r_inf) {
            return Err(PhysioError::InvalidParameter {
                name: "r0/r_inf",
                value: r0,
                constraint: "must satisfy r0 > r_inf > 0",
            });
        }
        if !(tau_s > 0.0 && tau_s.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "tau_s",
                value: tau_s,
                constraint: "must be positive and finite",
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(PhysioError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Self {
            r0,
            r_inf,
            tau_s,
            alpha,
        })
    }

    /// Zero-frequency resistance `R0` in ohms.
    #[must_use]
    pub fn r0(&self) -> f64 {
        self.r0
    }

    /// Infinite-frequency resistance `R∞` in ohms.
    #[must_use]
    pub fn r_inf(&self) -> f64 {
        self.r_inf
    }

    /// Characteristic time constant τ in seconds.
    #[must_use]
    pub fn tau_s(&self) -> f64 {
        self.tau_s
    }

    /// Dispersion broadening exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// A copy with both resistances scaled by `factor` (same dispersion).
    /// Scaling down models fluid accumulation (more conductive tissue),
    /// scaling up dehydration.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] for a non-positive
    /// factor.
    pub fn scaled(&self, factor: f64) -> Result<Self, PhysioError> {
        if !(factor > 0.0 && factor.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "factor",
                value: factor,
                constraint: "must be positive and finite",
            });
        }
        Self::new(
            self.r0 * factor,
            self.r_inf * factor,
            self.tau_s,
            self.alpha,
        )
    }

    /// Complex impedance at frequency `f` hertz, as `(re, im)` ohms.
    #[must_use]
    pub fn impedance_at(&self, f: f64) -> (f64, f64) {
        if f <= 0.0 {
            return (self.r0, 0.0);
        }
        // (jωτ)^α = (ωτ)^α · e^{jαπ/2}
        let wt = (2.0 * std::f64::consts::PI * f * self.tau_s).powf(self.alpha);
        let phi = self.alpha * std::f64::consts::FRAC_PI_2;
        let (dre, dim) = (1.0 + wt * phi.cos(), wt * phi.sin());
        let den = dre * dre + dim * dim;
        let delta = self.r0 - self.r_inf;
        (self.r_inf + delta * dre / den, -delta * dim / den)
    }

    /// Impedance magnitude at frequency `f` hertz, in ohms.
    #[must_use]
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let (re, im) = self.impedance_at(f);
        (re * re + im * im).sqrt()
    }
}

/// Skin–electrode polarization interface, modelled as a constant-phase
/// element `Z_ep(f) = K / (2πf)^β` in magnitude. Finger contact (dry skin,
/// small area) has a much larger `K` than gelled chest electrodes, which is
/// one of the two reasons the touch measurement differs from the
/// traditional one.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ElectrodePolarization {
    k: f64,
    beta: f64,
}

impl ElectrodePolarization {
    /// Creates a constant-phase polarization element.
    ///
    /// # Errors
    ///
    /// Returns [`PhysioError::InvalidParameter`] unless `k >= 0` and
    /// `0 < beta < 1`.
    pub fn new(k: f64, beta: f64) -> Result<Self, PhysioError> {
        if !(k >= 0.0 && k.is_finite()) {
            return Err(PhysioError::InvalidParameter {
                name: "k",
                value: k,
                constraint: "must be non-negative and finite",
            });
        }
        if !(beta > 0.0 && beta < 1.0) {
            return Err(PhysioError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be in (0, 1)",
            });
        }
        Ok(Self { k, beta })
    }

    /// A zero-impedance (ideal) interface.
    #[must_use]
    pub fn ideal() -> Self {
        Self { k: 0.0, beta: 0.5 }
    }

    /// Interface magnitude at frequency `f` hertz, in ohms.
    #[must_use]
    pub fn magnitude_at(&self, f: f64) -> f64 {
        if self.k == 0.0 || f <= 0.0 {
            return if f <= 0.0 && self.k > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.k / (2.0 * std::f64::consts::PI * f).powf(self.beta)
    }
}

/// A series composition of tissue segments and one electrode interface —
/// the total impedance a measurement path sees.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BodyPath {
    segments: Vec<ColeCole>,
    interface: ElectrodePolarization,
}

impl BodyPath {
    /// Builds a path from tissue `segments` in series with an electrode
    /// `interface`.
    #[must_use]
    pub fn new(segments: Vec<ColeCole>, interface: ElectrodePolarization) -> Self {
        Self {
            segments,
            interface,
        }
    }

    /// Borrow the tissue segments.
    #[must_use]
    pub fn segments(&self) -> &[ColeCole] {
        &self.segments
    }

    /// Total path magnitude at frequency `f` hertz: series sum of segment
    /// magnitudes plus the interface. (Segment phase angles in the β
    /// dispersion are small, so the magnitude-sum approximation errs below
    /// 2 % over 2–100 kHz — adequate for the Z0-level analysis the paper
    /// performs.)
    #[must_use]
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let tissue: f64 = self.segments.iter().map(|s| s.magnitude_at(f)).sum();
        tissue + self.interface.magnitude_at(f)
    }

    /// The paper's four injection frequencies, in hertz.
    pub const PAPER_FREQUENCIES_HZ: [f64; 4] = [2_000.0, 10_000.0, 50_000.0, 100_000.0];

    /// Path magnitude sampled at the paper's four injection frequencies.
    #[must_use]
    pub fn paper_frequency_profile(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (o, f) in out.iter_mut().zip(Self::PAPER_FREQUENCIES_HZ) {
            *o = self.magnitude_at(f);
        }
        out
    }
}

/// Catalogue of representative segment parameter sets (population means;
/// per-subject values are scaled from these in [`crate::subject`]).
pub mod segments {
    use super::ColeCole;

    /// Thorax as seen by a tetrapolar chest band: R0 ≈ 32 Ω, R∞ ≈ 22 Ω,
    /// fc ≈ 30 kHz.
    #[must_use]
    pub fn thorax() -> ColeCole {
        ColeCole::new(
            32.0,
            22.0,
            1.0 / (2.0 * std::f64::consts::PI * 30_000.0),
            0.65,
        )
        .expect("catalogue parameters are valid")
    }

    /// One arm, wrist-to-shoulder: R0 ≈ 230 Ω, R∞ ≈ 140 Ω, fc ≈ 40 kHz.
    #[must_use]
    pub fn arm() -> ColeCole {
        ColeCole::new(
            230.0,
            140.0,
            1.0 / (2.0 * std::f64::consts::PI * 40_000.0),
            0.7,
        )
        .expect("catalogue parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thorax() -> ColeCole {
        segments::thorax()
    }

    #[test]
    fn cole_cole_limits() {
        let c = thorax();
        assert!((c.magnitude_at(0.0) - c.r0()).abs() < 1e-12);
        // far above the dispersion, magnitude approaches R∞
        assert!((c.magnitude_at(1e9) - c.r_inf()).abs() < 0.5);
    }

    #[test]
    fn cole_cole_monotone_decreasing() {
        let c = thorax();
        let mut prev = c.magnitude_at(100.0);
        for k in 1..60 {
            let f = 100.0 * 1.3f64.powi(k);
            let m = c.magnitude_at(f);
            assert!(m <= prev + 1e-9, "increase at {f} Hz");
            prev = m;
        }
    }

    #[test]
    fn cole_cole_reactance_negative() {
        let c = thorax();
        let (_, im) = c.impedance_at(30_000.0);
        assert!(im < 0.0, "tissue is capacitive, X must be negative");
    }

    #[test]
    fn cole_cole_rejects_bad_params() {
        assert!(ColeCole::new(10.0, 20.0, 1e-6, 0.7).is_err()); // r0 < r_inf
        assert!(ColeCole::new(20.0, 10.0, -1.0, 0.7).is_err());
        assert!(ColeCole::new(20.0, 10.0, 1e-6, 0.0).is_err());
        assert!(ColeCole::new(20.0, 10.0, 1e-6, 1.5).is_err());
    }

    #[test]
    fn polarization_decreases_with_frequency() {
        let ep = ElectrodePolarization::new(5e4, 0.8).unwrap();
        assert!(ep.magnitude_at(2_000.0) > ep.magnitude_at(10_000.0));
        assert!(ep.magnitude_at(10_000.0) > ep.magnitude_at(100_000.0));
    }

    #[test]
    fn ideal_polarization_is_zero() {
        assert_eq!(ElectrodePolarization::ideal().magnitude_at(1_000.0), 0.0);
    }

    #[test]
    fn polarization_rejects_bad_params() {
        assert!(ElectrodePolarization::new(-1.0, 0.5).is_err());
        assert!(ElectrodePolarization::new(1.0, 0.0).is_err());
        assert!(ElectrodePolarization::new(1.0, 1.0).is_err());
    }

    #[test]
    fn body_path_series_sum() {
        let p = BodyPath::new(
            vec![segments::arm(), thorax(), segments::arm()],
            ElectrodePolarization::ideal(),
        );
        let f = 50_000.0;
        let expect = 2.0 * segments::arm().magnitude_at(f) + thorax().magnitude_at(f);
        assert!((p.magnitude_at(f) - expect).abs() < 1e-9);
    }

    #[test]
    fn touch_path_much_larger_than_thorax() {
        let touch = BodyPath::new(
            vec![segments::arm(), thorax(), segments::arm()],
            ElectrodePolarization::new(5e4, 0.8).unwrap(),
        );
        let chest = BodyPath::new(vec![thorax()], ElectrodePolarization::ideal());
        // hand-to-hand impedance is an order of magnitude above the thorax
        assert!(touch.magnitude_at(50_000.0) > 8.0 * chest.magnitude_at(50_000.0));
    }

    #[test]
    fn paper_frequency_profile_is_decreasing_for_pure_tissue() {
        // Without the device front-end, tissue impedance decreases
        // monotonically over the paper's frequency sweep. (The measured
        // rise to 10 kHz in Fig 6/7 is an instrumentation effect modelled
        // in cardiotouch-device.)
        let p = BodyPath::new(vec![thorax()], ElectrodePolarization::ideal());
        let prof = p.paper_frequency_profile();
        assert!(prof[0] > prof[1]);
        assert!(prof[1] > prof[2]);
        assert!(prof[2] > prof[3]);
    }
}
