//! Round-trip property for the fault CLI grammar: rendering any
//! [`FaultScenario`] with `Display` and re-parsing the spec at the same
//! sampling rate reconstructs the scenario exactly —
//! `parse(render(scenario)) == scenario`.
//!
//! Scenarios are drawn from a seeded generator that covers the whole
//! taxonomy (every kind including `HardFault`, every channel, 0–6
//! events, arbitrary sample-indexed schedules and full-precision float
//! parameters), i.e. strictly more than [`FaultScenario::random`]
//! produces.

use cardiotouch_physio::faults::{FaultChannel, FaultEvent, FaultKind, FaultScenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FS: f64 = 250.0;

/// Draws one scenario covering the full fault taxonomy. Parameters are
/// arbitrary finite floats (ratios of raw 53-bit mantissas, so most
/// have long decimal expansions — exercising the shortest-round-trip
/// float formatting, not just pretty values).
fn arbitrary_scenario(seed: u64) -> FaultScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario = FaultScenario::new(FS);
    let count = (rng.gen::<u32>() % 7) as usize;
    for _ in 0..count {
        let param = |rng: &mut StdRng| {
            let v = (rng.gen::<f64>() - 0.5) * 2.0e4;
            // keep parameters finite; the grammar cannot express NaN/inf
            if v.is_finite() {
                v
            } else {
                0.0
            }
        };
        let kind = match rng.gen::<u32>() % 6 {
            0 => FaultKind::Dropout,
            1 => FaultKind::ContactLoss {
                level: param(&mut rng),
            },
            2 => FaultKind::Saturation {
                limit: param(&mut rng),
            },
            3 => FaultKind::MotionBurst {
                amplitude: param(&mut rng),
                freq_hz: rng.gen::<f64>() * 40.0,
            },
            4 => FaultKind::ImpedanceStep {
                delta: param(&mut rng),
            },
            _ => FaultKind::HardFault,
        };
        let channel = match rng.gen::<u32>() % 3 {
            0 => FaultChannel::Ecg,
            1 => FaultChannel::Z,
            _ => FaultChannel::Both,
        };
        scenario = scenario.with_event(FaultEvent {
            start: (rng.gen::<u32>() as usize) % 100_000,
            // the grammar rejects zero durations, so never generate one
            duration: 1 + (rng.gen::<u32>() as usize) % 10_000,
            channel,
            kind,
        });
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_round_trips_arbitrary_scenarios(seed in any::<u64>()) {
        let scenario = arbitrary_scenario(seed);
        let spec = scenario.to_string();
        let reparsed = FaultScenario::parse(&spec, FS)
            .unwrap_or_else(|e| panic!("render produced an unparsable spec `{spec}`: {e}"));
        prop_assert_eq!(reparsed, scenario);
    }

    #[test]
    fn random_scenarios_also_round_trip(seed in any::<u16>()) {
        let scenario = FaultScenario::random(u64::from(seed), 7500, FS);
        let spec = scenario.to_string();
        prop_assert_eq!(FaultScenario::parse(&spec, FS).unwrap(), scenario);
    }
}

#[test]
fn empty_scenario_renders_as_none_and_round_trips() {
    let empty = FaultScenario::new(FS);
    assert_eq!(empty.to_string(), "none");
    assert_eq!(FaultScenario::parse(&empty.to_string(), FS).unwrap(), empty);
}
