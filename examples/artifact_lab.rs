//! Artifact laboratory: demonstrates each noise-cancellation stage of
//! Section IV-A doing its job. Builds an ECG drowned in baseline wander,
//! powerline hum and white noise, and an ICG buried under respiration and
//! motion, then shows signal quality before and after every stage — and
//! what detection accuracy each stage buys.
//!
//! ```text
//! cargo run --release --example artifact_lab
//! ```

use cardiotouch_dsp::spectrum;
use cardiotouch_ecg::filter::EcgConditioner;
use cardiotouch_ecg::pan_tompkins::PanTompkins;
use cardiotouch_icg::filter::IcgConditioner;
use cardiotouch_icg::points::{PointDetector, XSearch};
use cardiotouch_physio::ecg::EcgMorphology;
use cardiotouch_physio::heart::HeartModel;
use cardiotouch_physio::icg::IcgMorphology;
use cardiotouch_physio::noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FS: f64 = 250.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let beats = HeartModel::default().schedule(30.0, &mut StdRng::seed_from_u64(5))?;
    let n = (30.0 * FS) as usize;
    let truth_r = EcgMorphology::r_peak_indices(&beats, n, FS);

    // --- ECG chain ------------------------------------------------------
    let mut ecg = EcgMorphology::default().render(&beats, n, FS);
    let mut rng = StdRng::seed_from_u64(6);
    for (i, v) in ecg.iter_mut().enumerate() {
        let t = i as f64 / FS;
        *v += 0.8 * (2.0 * std::f64::consts::PI * 0.22 * t).sin(); // wander
    }
    let mains = noise::powerline(n, 50.0, 0.15, FS, &mut rng);
    let white = noise::white(n, 0.03, &mut rng);
    for i in 0..n {
        ecg[i] += mains[i] + white[i];
    }

    let pt = PanTompkins::new(FS)?;
    let score = |signal: &[f64]| -> (usize, usize) {
        let det = pt.detect(signal).unwrap_or_default();
        let hits = truth_r
            .iter()
            .filter(|&&t| det.iter().any(|&d| d.abs_diff(t) <= 5))
            .count();
        (hits, det.len().saturating_sub(hits))
    };

    println!("ECG chain (truth: {} beats)", truth_r.len());
    let (hits, fps) = score(&ecg);
    println!("  raw + artifacts:          {hits} hits, {fps} false positives");
    let conditioned = EcgConditioner::paper_default(FS)?.condition(&ecg)?;
    let (hits, fps) = score(&conditioned);
    println!("  after full conditioning:  {hits} hits, {fps} false positives");
    let g50_before = spectrum::goertzel(&ecg[..4096], 50.0, FS)?.magnitude();
    let g50_after = spectrum::goertzel(&conditioned[..4096], 50.0, FS)?.magnitude();
    println!(
        "  50 Hz mains suppression:  {:.1} dB",
        20.0 * (g50_before / g50_after).log10()
    );

    // --- ICG chain ------------------------------------------------------
    let morph = IcgMorphology::default();
    let mut icg = morph.render_dzdt(&beats, n, FS);
    let lms = morph.landmarks(&beats, n, FS);
    // respiration-derivative baseline + high-frequency hash
    for (i, v) in icg.iter_mut().enumerate() {
        let t = i as f64 / FS;
        *v += 0.35 * (2.0 * std::f64::consts::PI * 0.25 * t).cos();
    }
    let hf = noise::white(n, 0.10, &mut rng);
    for i in 0..n {
        icg[i] += hf[i];
    }

    println!("\nICG chain ({} beats with ground-truth B/C/X)", lms.len());
    let detector = PointDetector::new(FS, XSearch::GlobalMinimum)?;
    let bcx_score = |signal: &[f64]| -> (usize, f64) {
        let mut ok = 0;
        let mut lvet_mae = 0.0;
        let mut counted = 0;
        for w in lms.windows(2) {
            let seg = &signal[w[0].r..w[1].r];
            if let Ok(p) = detector.detect(seg) {
                let b_err = (p.b + w[0].r).abs_diff(w[0].b);
                let x_err = (p.x + w[0].r).abs_diff(w[0].x);
                if b_err <= 10 && x_err <= 8 {
                    ok += 1;
                }
                let truth_lvet = (w[0].x - w[0].b) as f64 / FS;
                lvet_mae += ((p.x - p.b) as f64 / FS - truth_lvet).abs();
                counted += 1;
            }
        }
        (ok, lvet_mae / counted.max(1) as f64 * 1e3)
    };
    let (ok, mae) = bcx_score(&icg);
    println!(
        "  raw + artifacts:          {ok}/{} beats ok, LVET MAE {mae:.1} ms",
        lms.len() - 1
    );
    let lp_only = IcgConditioner::lowpass_only(FS)?.condition(&icg)?;
    let (ok, mae) = bcx_score(&lp_only);
    println!(
        "  20 Hz low-pass only:      {ok}/{} beats ok, LVET MAE {mae:.1} ms",
        lms.len() - 1
    );
    let full = IcgConditioner::paper_default(FS)?.condition(&icg)?;
    let (ok, mae) = bcx_score(&full);
    println!(
        "  + baseline high-pass:     {ok}/{} beats ok, LVET MAE {mae:.1} ms",
        lms.len() - 1
    );
    // the related-work baseline: wavelet respiratory cancellation [16][17]
    use cardiotouch_icg::artifact::{suppress_artifacts, SuppressionMethod};
    let wav = suppress_artifacts(&icg, FS, SuppressionMethod::wavelet_default())?;
    let (ok, mae) = bcx_score(&wav);
    println!(
        "  wavelet baseline [16,17]: {ok}/{} beats ok, LVET MAE {mae:.1} ms",
        lms.len() - 1
    );
    Ok(())
}
