//! Battery-life planning: the PMU trade-off of Fig 4. Sweeps the MCU and
//! radio duty cycles over their feasible ranges and prints the
//! operating-time map, the paper's two reference points, and the
//! processing-on-device versus raw-streaming comparison.
//!
//! ```text
//! cargo run --example battery_planner
//! ```

use cardiotouch_device::mcu::CycleBudget;
use cardiotouch_device::power::{DutyCycle, PowerBudget};
use cardiotouch_device::radio::BleLink;

fn main() {
    let budget = PowerBudget::paper_table_i();
    let battery_mah = 710.0;

    println!("battery life [h] on {battery_mah} mAh vs duty cycles\n");
    print!("{:>10}", "mcu\\radio");
    let radio_points = [0.001, 0.01, 0.05, 0.10, 0.20, 0.35];
    for r in radio_points {
        print!("{:>9.1}%", r * 100.0);
    }
    println!();
    for mcu_pct in (10..=100).step_by(10) {
        let mcu = mcu_pct as f64 / 100.0;
        print!("{:>9}%", mcu_pct);
        for r in radio_points {
            let duty = DutyCycle {
                mcu,
                radio: r,
                sensors_on: true,
                imu: false,
            };
            print!("{:>10.1}", budget.battery_life_hours(battery_mah, &duty));
        }
        println!();
    }

    // Where does the actual pipeline land on this map?
    let cycles = CycleBudget::paper_pipeline();
    let link = BleLink::nrf8001_like();
    let mcu = cycles.duty_cycle(250.0, 70.0);
    let radio = link
        .duty_cycle(BleLink::parameter_uplink_bytes_per_s(70.0))
        .expect("valid link");
    let operating = DutyCycle {
        mcu,
        radio,
        sensors_on: true,
        imu: false,
    };
    println!(
        "\nmeasured pipeline point: MCU {:.1} %, radio {:.3} % -> {:.1} h",
        mcu * 100.0,
        radio * 100.0,
        budget.battery_life_hours(battery_mah, &operating)
    );
    println!(
        "paper worst case (MCU 50 %, radio 1 %): {:.1} h — \"over four days\"",
        budget.battery_life_hours(battery_mah, &DutyCycle::paper_worst_case())
    );
    println!(
        "raw streaming instead of on-device processing: {:.1} h",
        budget.battery_life_hours(battery_mah, &DutyCycle::raw_streaming())
    );
}
