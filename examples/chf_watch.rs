//! CHF decompensation watch: the clinical loop the paper motivates.
//!
//! A patient performs one 30-second touch measurement per day. The fluid
//! trend monitor learns a personal thoracic-fluid baseline during the
//! first week; from day 8 the simulated patient accumulates thoracic
//! fluid (the pre-decompensation signature), and the monitor escalates
//! Stable → Watch → Alert days before a hospitalisation-grade event.
//! The PMU meanwhile confirms that this daily-spot-check duty pattern
//! runs for months on the 710 mAh battery.
//!
//! ```text
//! cargo run --release --example chf_watch
//! ```

use cardiotouch::config::PipelineConfig;
use cardiotouch::fluid::{FluidStatus, TrendConfig, TrendMonitor};
use cardiotouch::pipeline::Pipeline;
use cardiotouch_device::pmu::{OperatingMode, Pmu};
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::reference_five();
    let subject = &population.subjects()[2];
    let protocol = Protocol::paper_default();
    let pipeline = Pipeline::new(PipelineConfig::paper_default(protocol.fs))?;
    let mut monitor = TrendMonitor::new(TrendConfig {
        baseline_measurements: 5,
        elevation_threshold: 0.04,
        persistence: 3,
    })?;

    // How long does this usage pattern run on one charge?
    let pmu = Pmu::paper_device();
    let mode = OperatingMode::SpotCheck {
        measurement_s: 30.0,
        interval_s: 86_400.0,
    };
    println!(
        "duty pattern: one 30 s measurement per day -> {:.0} days on one charge\n",
        pmu.endurance_hours(mode, 1.0)? / 24.0
    );

    println!(
        "{:>4} {:>10} {:>10} {:>9} {:>8}  status",
        "day", "Z0 [ohm]", "TFC[1/kΩ]", "LVET[ms]", "HR[bpm]"
    );
    for day in 0..16u64 {
        // thoracic fluid starts accumulating on day 8, 3 %/day
        let overload = if day >= 8 {
            (0.03 * (day - 7) as f64).min(0.3)
        } else {
            0.0
        };
        let today = subject.with_fluid_overload(overload)?;
        let rec =
            PairedRecording::generate(&today, Position::One, 50_000.0, &protocol, 2_000 + day)?;
        // daily spot check through the chest strap the patient wears for
        // the measurement (thoracic fluid is a thorax-local signal)
        let analysis = pipeline.analyze(rec.device_ecg(), rec.traditional_z())?;
        let status = monitor.ingest(analysis.z0_ohm())?;
        let label = match status {
            FluidStatus::Learning { remaining } => format!("learning baseline ({remaining} to go)"),
            FluidStatus::Stable { deviation } => format!("stable ({:+.1} %)", deviation * 100.0),
            FluidStatus::Watch { deviation, streak } => {
                format!("WATCH ({:+.1} %, day {streak} elevated)", deviation * 100.0)
            }
            FluidStatus::Alert { deviation } => {
                format!("ALERT — notify physician ({:+.1} %)", deviation * 100.0)
            }
        };
        println!(
            "{:>4} {:>10.2} {:>10.2} {:>9.0} {:>8.1}  {label}",
            day,
            analysis.z0_ohm(),
            analysis.tfc()?,
            analysis.intervals()?.lvet_mean_s * 1e3,
            analysis.mean_hr_bpm()?,
        );
    }
    Ok(())
}
