//! Full point-of-care report from one touch session: the outpatient
//! workflow the paper's conclusion sketches ("managing complex patients
//! in outpatient settings"). One 30-second measurement yields
//! hemodynamics (HR/PEP/LVET/SV/CO), heart-rate variability, the fitted
//! Cole–Cole tissue parameters from the four-frequency sweep, signal
//! quality, and the smoothed trend values the uplink would transmit.
//!
//! ```text
//! cargo run --release --example clinic_report
//! ```

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::Pipeline;
use cardiotouch::spectroscopy::{fit_cole, undo_front_end};
use cardiotouch_device::afe::ImpedanceFrontEnd;
use cardiotouch_ecg::hr::RrSeries;
use cardiotouch_ecg::hrv::{analyze as hrv_analyze, HrvBands};
use cardiotouch_icg::beat::segment_beats;
use cardiotouch_icg::quality::{QualityReport, DEFAULT_SQI_THRESHOLD};
use cardiotouch_icg::trending::ParameterTrend;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = Population::reference_five();
    let subject = &population.subjects()[0];
    let protocol = Protocol::paper_default();
    let pipeline = Pipeline::new(
        PipelineConfig::paper_default(protocol.fs)
            .with_hemo_z0(28.0)
            .with_sqi_gate(DEFAULT_SQI_THRESHOLD),
    )?;

    println!("POINT-OF-CARE REPORT — {}\n", subject.name());

    // --- hemodynamics from the 50 kHz session ---------------------------
    let rec = PairedRecording::generate(subject, Position::One, 50_000.0, &protocol, 21)?;
    let analysis = pipeline.analyze(rec.device_ecg(), rec.device_z())?;
    let st = analysis.intervals()?;
    println!("hemodynamics (50 kHz, Position 1, 30 s)");
    println!("  HR    {:6.1} bpm", analysis.mean_hr_bpm()?);
    println!(
        "  PEP   {:6.1} ± {:.1} ms",
        st.pep_mean_s * 1e3,
        st.pep_sd_s * 1e3
    );
    println!(
        "  LVET  {:6.1} ± {:.1} ms",
        st.lvet_mean_s * 1e3,
        st.lvet_sd_s * 1e3
    );
    if let (Some(sv), Some(co)) = (analysis.mean_sv_kubicek_ml(), analysis.mean_co_l_per_min()) {
        println!("  SV    {sv:6.1} ml    CO {co:5.2} l/min");
    }
    println!(
        "  Z0    {:6.1} ohm   TFC {:.2} 1/kohm",
        analysis.z0_ohm(),
        analysis.tfc()?
    );

    // --- smoothed display trend -----------------------------------------
    let mut lvet_trend = ParameterTrend::display_default();
    let mut last = 0.0;
    for b in analysis.valid_beats() {
        last = lvet_trend.ingest(b.lvet_s * 1e3)?;
    }
    println!(
        "  LVET display trend after {} beats: {last:.0} ms",
        lvet_trend.beats_seen()
    );

    // --- signal quality ---------------------------------------------------
    let windows = segment_beats(
        analysis.r_peaks(),
        analysis.conditioned_icg().len(),
        protocol.fs,
        0.3,
        2.0,
    )?;
    let quality = QualityReport::assess(analysis.conditioned_icg(), &windows)?;
    println!(
        "\nsignal quality: median SQI {:.2}, {:.0} % of beats accepted",
        quality.median_sqi(),
        quality.acceptance_rate(DEFAULT_SQI_THRESHOLD) * 100.0
    );

    // --- respiration (impedance pneumography, free from the Z channel) -----
    let resp = cardiotouch::respiration::estimate_respiration_rate(rec.device_z(), protocol.fs)?;
    println!(
        "\nrespiration: {:.1} breaths/min (confidence {:.2})",
        resp.rate_brpm, resp.confidence
    );

    // --- HRV ---------------------------------------------------------------
    let rr = RrSeries::from_peaks(analysis.r_peaks(), protocol.fs)?;
    let hrv = hrv_analyze(&rr, &HrvBands::default())?;
    println!("\nheart-rate variability");
    println!(
        "  SDNN {:5.1} ms   RMSSD {:5.1} ms   pNN50 {:4.1} %",
        hrv.sdnn_ms,
        hrv.rmssd_ms,
        hrv.pnn50 * 100.0
    );
    println!("  LF/HF ratio {:.2}", hrv.lf_hf_ratio);

    // --- bioimpedance spectroscopy over the 4-frequency sweep --------------
    let freqs = [2_000.0, 10_000.0, 50_000.0, 100_000.0];
    let mut measured = Vec::new();
    for &f in &freqs {
        let r = PairedRecording::generate(subject, Position::One, f, &protocol, 21)?;
        let z0 = r.device_z().iter().sum::<f64>() / r.device_z().len() as f64;
        measured.push(ImpedanceFrontEnd::reference_design().measured_z0(z0, f));
    }
    let restored = undo_front_end(&freqs, &measured, &ImpedanceFrontEnd::reference_design())?;
    let fit = fit_cole(&freqs, &restored)?;
    println!("\nbioimpedance spectroscopy (Cole-Cole fit over 2/10/50/100 kHz)");
    println!(
        "  R0 {:6.1} ohm   Rinf {:6.1} ohm   fc {:5.1} kHz   alpha {:.2}   (rmse {:.2} ohm)",
        fit.model.r0(),
        fit.model.r_inf(),
        1.0 / (2.0 * std::f64::consts::PI * fit.model.tau_s()) / 1e3,
        fit.model.alpha(),
        fit.rmse_ohm
    );
    println!("  (R0 tracks extracellular fluid — the CHF decompensation signal)");
    Ok(())
}
