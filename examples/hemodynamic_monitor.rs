//! Live beat-to-beat monitoring: the firmware scenario of Fig 3. Samples
//! arrive chunk by chunk (as from the ADC), and each completed beat's
//! parameters print as the device would stream them over BLE — including
//! the IMU position check that tags the session.
//!
//! ```text
//! cargo run --release --example hemodynamic_monitor
//! ```

use cardiotouch::config::PipelineConfig;
use cardiotouch::stream::BeatStream;
use cardiotouch::CoreError;
use cardiotouch_device::imu;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), CoreError> {
    let population = Population::reference_five();
    let subject = &population.subjects()[1];
    let protocol = Protocol::paper_default();
    let recording = PairedRecording::generate(subject, Position::One, 50_000.0, &protocol, 11)?;

    // The IMU registers how the device is held before the measurement.
    let mut rng = StdRng::seed_from_u64(3);
    let window = imu::synthesize(imu::DevicePosition::AtChest, 200, 100.0, &mut rng);
    let (position, similarity) = imu::classify(&window)?;
    println!(
        "IMU: device held {position:?} (gravity similarity {similarity:.2}) — starting monitor\n"
    );

    println!(
        "{:>6} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "t [s]", "HR", "PEP [ms]", "LVET[ms]", "SV [ml]", "CO [l/m]"
    );
    let mut stream =
        BeatStream::new(PipelineConfig::paper_default(protocol.fs).with_hemo_z0(30.0))?;
    // quarter-second ADC chunks, exactly as a DMA buffer would deliver them
    for (ecg, z) in recording
        .device_ecg()
        .chunks(64)
        .zip(recording.device_z().chunks(64))
    {
        for beat in stream.push(ecg, z)? {
            println!(
                "{:>6.1} {:>8.1} {:>9.0} {:>9.0} {:>9.1} {:>9.2}",
                beat.r as f64 / protocol.fs,
                beat.hr_bpm,
                beat.pep_s * 1e3,
                beat.lvet_s * 1e3,
                beat.sv_kubicek_ml,
                beat.co_l_per_min,
            );
        }
    }
    Ok(())
}
