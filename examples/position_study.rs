//! Reruns the paper's whole evaluation protocol (Section V) and prints
//! every table and figure: Tables II-IV, Figs 6-9, and the conclusion's
//! aggregate claims.
//!
//! ```text
//! cargo run --release --example position_study
//! ```

use cardiotouch::experiment::{run_position_study, StudyConfig};
use cardiotouch::report;
use cardiotouch::CoreError;
use cardiotouch_physio::subject::Population;

fn main() -> Result<(), CoreError> {
    let population = Population::reference_five();
    let config = StudyConfig::paper_default();
    println!(
        "running: {} subjects x 3 positions x {} frequencies x {} s sessions…\n",
        population.len(),
        config.frequencies_hz.len(),
        config.protocol.duration_s
    );
    let outcome = run_position_study(&population, &config)?;

    for table in &outcome.correlation_tables {
        println!("{}", report::correlation_table(table));
    }
    println!("{}", report::bioimpedance_profiles(&outcome.profiles));
    println!("{}", report::relative_errors(&outcome.errors));
    println!("{}", report::hemodynamics(&outcome.hemodynamics));
    print!("{}", report::summary(&outcome.summary));
    Ok(())
}
