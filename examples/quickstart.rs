//! Quickstart: simulate one touch measurement and read out the
//! hemodynamic parameters — the 60-second tour of the public API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::Pipeline;
use cardiotouch::CoreError;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

fn main() -> Result<(), CoreError> {
    // 1. A synthetic subject holds the device to the chest for 30 s while
    //    it injects 50 kHz current through the fingers.
    let population = Population::reference_five();
    let subject = &population.subjects()[0];
    let protocol = Protocol::paper_default(); // 250 Hz, 30 s
    let recording = PairedRecording::generate(subject, Position::One, 50_000.0, &protocol, 7)?;

    // 2. Run the device pipeline: conditioning, R peaks, B/C/X points,
    //    systolic time intervals, stroke volume. The SV formulas expect a
    //    chest-band Z0, so the touch session supplies the subject's
    //    thoracic calibration value.
    let pipeline = Pipeline::new(PipelineConfig::paper_default(protocol.fs).with_hemo_z0(28.0))?;
    let analysis = pipeline.analyze(recording.device_ecg(), recording.device_z())?;

    // 3. Read out what the device would stream over BLE.
    let intervals = analysis.intervals()?;
    println!("{} — touch measurement, Position 1, 50 kHz", subject.name());
    println!("  beats analysed : {}", analysis.beats().len());
    println!("  HR             : {:6.1} bpm", analysis.mean_hr_bpm()?);
    println!("  Z0             : {:6.1} ohm", analysis.z0_ohm());
    println!(
        "  PEP            : {:6.1} ± {:.1} ms",
        intervals.pep_mean_s * 1e3,
        intervals.pep_sd_s * 1e3
    );
    println!(
        "  LVET           : {:6.1} ± {:.1} ms",
        intervals.lvet_mean_s * 1e3,
        intervals.lvet_sd_s * 1e3
    );
    if let (Some(sv), Some(co)) = (analysis.mean_sv_kubicek_ml(), analysis.mean_co_l_per_min()) {
        println!("  SV (Kubicek)   : {sv:6.1} ml   CO: {co:.2} l/min");
    }
    println!("  TFC            : {:6.2} 1/kohm", analysis.tfc()?);

    // 4. Compare against the recording's ground truth.
    let truth = recording.truth();
    let truth_pep = truth.beats.iter().map(|b| b.pep).sum::<f64>() / truth.beats.len() as f64;
    let truth_lvet = truth.beats.iter().map(|b| b.lvet).sum::<f64>() / truth.beats.len() as f64;
    println!(
        "\nground truth   : PEP {:.1} ms, LVET {:.1} ms",
        truth_pep * 1e3,
        truth_lvet * 1e3
    );
    Ok(())
}
