//! Hand-computed fixtures for the method-agreement statistics:
//! [`BlandAltman`] bias/SD/limits-of-agreement and the study's
//! [`CorrelationTable`] aggregation, including the empty-table
//! `mean() -> None` path.
//!
//! Every expected value below is derived by hand from the definition
//! (sample SD with the n−1 divisor, LoA = bias ± 1.96·SD) and asserted
//! within `EPS` — never exact-float — so the fixtures stay valid across
//! platforms and summation-order changes.

use cardiotouch::agreement::BlandAltman;
use cardiotouch::experiment::CorrelationTable;
use cardiotouch_physio::path::Position;

/// Slack for hand-computed expectations: ~4 ulp at the magnitudes used
/// here, generous enough for any reassociation of the sums.
const EPS: f64 = 1e-12;

#[test]
fn bland_altman_matches_hand_computed_fixture() {
    // diffs = [10, 12, 14, 16]  →  bias = 13
    // centered = [-3, -1, 1, 3] →  SD = sqrt((9+1+1+9)/3) = sqrt(20/3)
    let a = [20.0, 24.0, 28.0, 32.0];
    let b = [10.0, 12.0, 14.0, 16.0];
    let ba = BlandAltman::from_pairs(&a, &b).unwrap();
    let sd = (20.0f64 / 3.0).sqrt();
    assert_eq!(ba.n, 4);
    assert!((ba.bias - 13.0).abs() < EPS, "bias {}", ba.bias);
    assert!((ba.sd - sd).abs() < EPS, "sd {}", ba.sd);
    assert!((ba.loa_lower - (13.0 - 1.96 * sd)).abs() < EPS);
    assert!((ba.loa_upper - (13.0 + 1.96 * sd)).abs() < EPS);
    // the limits straddle the bias symmetrically
    assert!(((ba.loa_upper + ba.loa_lower) / 2.0 - ba.bias).abs() < EPS);
    // bias − 1.96·SD ≈ 7.94 > 0: systematic disagreement
    assert!(!ba.zero_within_loa());
}

#[test]
fn bland_altman_zero_within_loa_for_unbiased_methods() {
    // diffs = [-1, 1] → bias = 0, SD = sqrt(2), LoA = ∓1.96·sqrt(2)
    let ba = BlandAltman::from_pairs(&[1.0, 3.0], &[2.0, 2.0]).unwrap();
    assert!(ba.bias.abs() < EPS);
    assert!((ba.sd - 2.0f64.sqrt()).abs() < EPS);
    assert!(ba.zero_within_loa());
    assert!((ba.loa_lower + 1.96 * 2.0f64.sqrt()).abs() < EPS);
}

#[test]
fn bland_altman_rejects_degenerate_inputs() {
    assert!(BlandAltman::from_pairs(&[1.0, 2.0], &[1.0]).is_err());
    assert!(BlandAltman::from_pairs(&[], &[]).is_err());
    assert!(BlandAltman::from_pairs(&[1.0], &[1.0]).is_err());
}

#[test]
fn correlation_table_mean_and_min_match_hand_computed_rows() {
    let table = CorrelationTable {
        position: Position::Two,
        rows: vec![
            ("Subject 1".into(), 0.9),
            ("Subject 2".into(), 0.8),
            ("Subject 3".into(), 0.7),
        ],
    };
    let mean = table.mean().expect("non-empty table has a mean");
    assert!((mean - 0.8).abs() < EPS, "mean {mean}");
    assert!((table.min() - 0.7).abs() < EPS);
}

#[test]
fn correlation_table_mean_is_none_and_min_is_infinite_when_empty() {
    let empty = CorrelationTable {
        position: Position::Three,
        rows: Vec::new(),
    };
    assert_eq!(empty.mean(), None);
    // the fold identity: no rows → positive infinity, by definition
    assert_eq!(empty.min(), f64::INFINITY);
}

#[test]
fn single_pair_is_rejected_but_two_identical_pairs_collapse_the_limits() {
    assert!(BlandAltman::from_pairs(&[5.0], &[4.0]).is_err());
    let ba = BlandAltman::from_pairs(&[5.0, 5.0], &[4.0, 4.0]).unwrap();
    assert!((ba.bias - 1.0).abs() < EPS);
    assert!(ba.sd.abs() < EPS);
    // zero-width limits collapse onto the bias
    assert!((ba.loa_lower - 1.0).abs() < EPS && (ba.loa_upper - 1.0).abs() < EPS);
}
