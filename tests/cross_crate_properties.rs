//! Property-based tests that span crate boundaries: whatever the
//! (reasonable) subject physiology and acquisition parameters, the
//! pipeline's invariants must hold.

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::Pipeline;
use cardiotouch_physio::heart::HeartModel;
use cardiotouch_physio::icg::IcgMorphology;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;
use proptest::prelude::*;

const FS: f64 = 250.0;

fn any_position() -> impl Strategy<Value = Position> {
    prop_oneof![
        Just(Position::One),
        Just(Position::Two),
        Just(Position::Three)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_hold_for_any_session(
        subject_idx in 0usize..5,
        pos in any_position(),
        freq in prop_oneof![Just(2_000.0f64), Just(10_000.0), Just(50_000.0), Just(100_000.0)],
        seed in 0u64..1000,
    ) {
        let population = Population::reference_five();
        let protocol = Protocol { duration_s: 15.0, ..Protocol::paper_default() };
        let rec = PairedRecording::generate(
            &population.subjects()[subject_idx], pos, freq, &protocol, seed,
        ).expect("valid session");
        let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
        let analysis = match pipeline.analyze(rec.device_ecg(), rec.device_z()) {
            Ok(a) => a,
            // heavy-motion draws may legitimately yield too few beats
            Err(cardiotouch::CoreError::NotEnoughBeats { .. }) => return Ok(()),
            Err(e) => panic!("unexpected error: {e}"),
        };
        // hard invariants on every analysed beat: ordering and positivity
        for b in analysis.beats() {
            prop_assert!(b.r < b.b && b.b < b.c && b.c < b.x);
            prop_assert!(b.pep_s > 0.0 && b.lvet_s > 0.0);
            prop_assert!(b.dzdt_max > 0.0);
        }
        // physiological bounds on the beats that pass the outlier gate
        for b in analysis.valid_beats() {
            prop_assert!((0.05..=0.25).contains(&b.pep_s));
            prop_assert!((0.12..=0.50).contains(&b.lvet_s));
        }
        prop_assert!(analysis.z0_ohm() > 0.0);
        // R peaks strictly ascending
        for w in analysis.r_peaks().windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn synthetic_beats_always_detectable_clean(
        hr in 50.0f64..110.0,
        dzdt in 0.8f64..2.0,
        seed in 0u64..500,
    ) {
        use cardiotouch_icg::points::{PointDetector, XSearch};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let model = HeartModel { hr_mean_bpm: hr, ..HeartModel::default() };
        let beats = model.schedule(10.0, &mut StdRng::seed_from_u64(seed)).expect("valid model");
        let n = (10.0 * FS) as usize;
        let morph = IcgMorphology { dzdt_max: dzdt, ..IcgMorphology::default() };
        let icg = morph.render_dzdt(&beats, n, FS);
        let lms = morph.landmarks(&beats, n, FS);
        let det = PointDetector::new(FS, XSearch::GlobalMinimum).expect("valid fs");
        for w in lms.windows(2) {
            let seg = &icg[w[0].r..w[1].r];
            let pts = det.detect(seg).expect("clean beats always detect");
            prop_assert!(pts.b < pts.c && pts.c < pts.x);
            // C exact within 3 samples on clean beats
            prop_assert!((pts.c + w[0].r).abs_diff(w[0].c) <= 3);
        }
    }

    #[test]
    fn recordings_are_reproducible(
        subject_idx in 0usize..5,
        pos in any_position(),
        seed in 0u64..100,
    ) {
        let population = Population::reference_five();
        let protocol = Protocol { duration_s: 5.0, ..Protocol::paper_default() };
        let a = PairedRecording::generate(
            &population.subjects()[subject_idx], pos, 50_000.0, &protocol, seed,
        ).expect("valid");
        let b = PairedRecording::generate(
            &population.subjects()[subject_idx], pos, 50_000.0, &protocol, seed,
        ).expect("valid");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn battery_life_monotone_in_duty(mcu1 in 0.0f64..1.0, mcu2 in 0.0f64..1.0) {
        use cardiotouch_device::power::{DutyCycle, PowerBudget};
        let (lo, hi) = if mcu1 <= mcu2 { (mcu1, mcu2) } else { (mcu2, mcu1) };
        let b = PowerBudget::paper_table_i();
        let mk = |mcu: f64| DutyCycle { mcu, radio: 0.01, sensors_on: true, imu: false };
        prop_assert!(b.battery_life_hours(710.0, &mk(lo)) >= b.battery_life_hours(710.0, &mk(hi)));
    }
}
