//! End-to-end "device loop" integration: the streaming pipeline's beat
//! reports are packed into the 20-byte BLE uplink records, shipped over
//! the modelled link, decoded on the receiving side, and the implied
//! radio duty cycle is checked against the paper's ~0.1 % claim.

use cardiotouch::config::PipelineConfig;
use cardiotouch::stream::BeatStream;
use cardiotouch_device::radio::BleLink;
use cardiotouch_device::uplink::{decode_stream, encode_stream, ParameterRecord, RECORD_LEN};
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

#[test]
fn beat_stream_to_uplink_round_trip_and_radio_budget() {
    let population = Population::reference_five();
    let protocol = Protocol::paper_default();
    let rec = PairedRecording::generate(
        &population.subjects()[1],
        Position::One,
        50_000.0,
        &protocol,
        42,
    )
    .expect("deterministic generation");

    // firmware side: stream samples, build one record per emitted beat
    let mut stream =
        BeatStream::new(PipelineConfig::paper_default(protocol.fs)).expect("valid config");
    let mut records = Vec::new();
    let z0 = rec.device_z().iter().sum::<f64>() / rec.device_z().len() as f64;
    for (e, z) in rec.device_ecg().chunks(125).zip(rec.device_z().chunks(125)) {
        for beat in stream.push(e, z).expect("valid chunk") {
            records.push(ParameterRecord {
                sequence: records.len() as u16,
                z0_ohm: z0 as f32,
                lvet_ms: (beat.lvet_s * 1e3) as f32,
                pep_ms: (beat.pep_s * 1e3) as f32,
                hr_bpm: beat.hr_bpm as f32,
                valid: beat.physiological,
            });
        }
    }
    assert!(records.len() > 20, "only {} beats streamed", records.len());

    // air side: encode, "transmit", decode
    let bytes = encode_stream(&records);
    assert_eq!(bytes.len(), records.len() * RECORD_LEN);
    let (decoded, consumed) = decode_stream(&bytes);
    assert_eq!(consumed, bytes.len());
    assert_eq!(decoded, records);

    // receiving side: reconstruct the LVET series exactly (f32 precision)
    for (r, d) in records.iter().zip(&decoded) {
        assert!((f64::from(r.lvet_ms) - f64::from(d.lvet_ms)).abs() < 1e-6);
    }

    // radio budget: this payload over 30 s must stay at parameter-uplink
    // duty (~0.1 %), far below 1 %
    let link = BleLink::nrf8001_like();
    let bytes_per_s = bytes.len() as f64 / protocol.duration_s;
    let duty = link.duty_cycle(bytes_per_s).expect("valid link");
    assert!(duty < 0.005, "radio duty {duty}");
    assert!(duty > 1e-5, "implausibly low duty {duty}");
}

#[test]
fn corrupted_air_bytes_degrade_gracefully() {
    // a corrupt record mid-stream stops the batch decode at that point;
    // everything before it is preserved intact
    let records: Vec<ParameterRecord> = (0..30)
        .map(|i| ParameterRecord {
            sequence: i,
            z0_ohm: 431.0,
            lvet_ms: 294.0,
            pep_ms: 104.0,
            hr_bpm: 68.0,
            valid: true,
        })
        .collect();
    let mut bytes = encode_stream(&records);
    bytes[10 * RECORD_LEN + 7] ^= 0x40;
    let (decoded, consumed) = decode_stream(&bytes);
    assert_eq!(decoded.len(), 10);
    assert_eq!(consumed, 10 * RECORD_LEN);
    assert_eq!(decoded, records[..10]);
}
