//! Shape checks on the regenerated evaluation: the qualitative findings
//! of the paper's Section V must hold in the simulated study — who wins,
//! in which order, and within which bounds.

use cardiotouch::experiment::{
    run_position_study, BioimpedanceProfiles, RelativeErrors, StudyConfig, StudyOutcome,
};
use cardiotouch_physio::scenario::Protocol;
use cardiotouch_physio::subject::Population;
use std::sync::OnceLock;

/// One shared study run for all shape checks (the study is deterministic,
/// so sharing it is sound and keeps the test binary fast).
fn outcome() -> &'static StudyOutcome {
    static OUTCOME: OnceLock<StudyOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        let config = StudyConfig {
            protocol: Protocol {
                duration_s: 15.0,
                ..Protocol::paper_default()
            },
            ..StudyConfig::paper_default()
        };
        run_position_study(&Population::reference_five(), &config)
            .expect("the study is deterministic")
    })
}

#[test]
fn tables_2_to_4_within_paper_band() {
    // Paper values span 0.69-0.99; require every simulated coefficient in
    // a slightly widened band and the mean comfortably high.
    for table in &outcome().correlation_tables {
        for (name, r) in &table.rows {
            assert!(
                (0.55..=0.999).contains(r),
                "{} {name}: r = {r}",
                table.position
            );
        }
    }
    assert!(outcome().summary.mean_correlation > 0.80);
}

#[test]
fn position_3_is_the_worst_table() {
    let [t1, t2, t3] = &outcome().correlation_tables;
    assert!(t3.mean() < t1.mean() && t3.mean() < t2.mean());
    assert!(t3.min() <= t1.min() && t3.min() <= t2.min());
}

#[test]
fn subject_5_is_the_weakest_in_position_3() {
    // The paper's Table IV bottoms out at Subject 5 (0.6919).
    let t3 = &outcome().correlation_tables[2];
    let min_row = t3
        .rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    assert_eq!(min_row.0, "Subject 5");
}

#[test]
fn figure_6_and_7_peak_at_10khz() {
    let p = &outcome().profiles;
    assert_eq!(BioimpedanceProfiles::peak_index(&p.traditional), Some(1));
    for d in &p.device {
        assert_eq!(BioimpedanceProfiles::peak_index(d), Some(1));
    }
    // and the fall continues monotonically after the peak
    for profile in [&p.traditional, &p.device[0], &p.device[1], &p.device[2]] {
        assert!(profile[1] > profile[2] && profile[2] > profile[3]);
    }
}

#[test]
fn figure_8_error_ordering_and_bound() {
    let e = &outcome().errors;
    let m21 = RelativeErrors::mean_abs(&e.e21);
    let m23 = RelativeErrors::mean_abs(&e.e23);
    let m31 = RelativeErrors::mean_abs(&e.e31);
    assert!(m21 > m23 && m23 > m31, "e21 {m21}, e23 {m23}, e31 {m31}");
    assert!(e.worst_abs() < 0.20, "worst error {}", e.worst_abs());
}

#[test]
fn figure_9_values_follow_weissler_trend() {
    // Faster hearts must show shorter ejection: correlation between HR
    // and LVET across subjects must be strongly negative.
    let rows = &outcome().hemodynamics.position1;
    let hr: Vec<f64> = rows.iter().map(|r| r.hr_bpm).collect();
    let lvet: Vec<f64> = rows.iter().map(|r| r.lvet_ms).collect();
    let r = cardiotouch_dsp::stats::pearson(&hr, &lvet).expect("varied subjects");
    assert!(r < -0.7, "HR-LVET correlation {r}");
}

#[test]
fn conclusion_claims() {
    let s = &outcome().summary;
    assert!(s.mean_correlation > 0.80, "mean r {}", s.mean_correlation);
    assert!(s.worst_error < 0.20, "worst error {}", s.worst_error);
}

#[test]
fn device_reads_higher_impedance_than_chest() {
    // Hand-to-hand path dominates: every device profile sits far above
    // the thoracic one.
    let p = &outcome().profiles;
    for (fi, &t) in p.traditional.iter().enumerate() {
        for d in &p.device {
            assert!(d[fi] > 5.0 * t, "device {} vs chest {t}", d[fi]);
        }
    }
}
