//! Chaos suite: the streaming stack under seeded, deterministic fault
//! injection (ISSUE 4 acceptance criteria).
//!
//! Properties, over arbitrary generated fault scenarios:
//!
//! * the pipeline never panics and never emits a non-finite
//!   hemodynamic parameter;
//! * sustained contact loss drives both channels to `Lost` within the
//!   holdover cap, and beat emission resumes shortly after contact
//!   returns;
//! * an *empty* scenario (fault injection disabled) is bit-identical
//!   to the clean path;
//! * a hard front-end fault quarantines one session without failing
//!   the scheduler tick or starving the healthy fleet.
//!
//! Every case derives from a deterministic seed (the vendored proptest
//! reports the failing case index, which reproduces it exactly).

use std::sync::{Arc, OnceLock};

use cardiotouch::config::{DelineationStrategy, PipelineConfig};
use cardiotouch::scheduler::{SessionFeed, SessionScheduler};
use cardiotouch::stream::{BeatStream, QualifiedBeat, SignalState};
use cardiotouch_physio::faults::FaultScenario;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;
use proptest::prelude::*;

const FS: f64 = 250.0;

/// One clean 30 s template session, generated once and shared by every
/// case (generation dominates the cost of a case otherwise).
fn template() -> &'static (Vec<f64>, Vec<f64>) {
    static REC: OnceLock<(Vec<f64>, Vec<f64>)> = OnceLock::new();
    REC.get_or_init(|| {
        let population = Population::reference_five();
        let rec = PairedRecording::generate(
            &population.subjects()[0],
            Position::One,
            50_000.0,
            &Protocol::paper_default(),
            41,
        )
        .expect("valid template session");
        (rec.device_ecg().to_vec(), rec.device_z().to_vec())
    })
}

fn assert_finite(beats: &[QualifiedBeat]) -> Result<(), proptest::test_runner::TestCaseError> {
    for qb in beats {
        let r = &qb.report;
        for (name, v) in [
            ("pep_s", r.pep_s),
            ("lvet_s", r.lvet_s),
            ("hr_bpm", r.hr_bpm),
            ("dzdt_max", r.dzdt_max),
            ("sv_kubicek_ml", r.sv_kubicek_ml),
            ("sv_sramek_ml", r.sv_sramek_ml),
            ("co_l_per_min", r.co_l_per_min),
        ] {
            prop_assert!(v.is_finite(), "non-finite {name} = {v} at beat r={}", r.r);
        }
        if let Some(s) = qb.sqi {
            prop_assert!(s.is_finite(), "non-finite SQI at beat r={}", r.r);
        }
        prop_assert!(
            qb.state != SignalState::Lost,
            "beat emitted from a Lost window at r={}",
            r.r
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_scenarios_never_panic_or_emit_non_finite(
        seed in any::<u16>(),
        chunk in 16usize..400,
        strategy_idx in 0usize..DelineationStrategy::ALL.len(),
    ) {
        let (ecg, z) = template();
        let scenario = FaultScenario::random(u64::from(seed), ecg.len(), FS);
        let mut e = ecg.clone();
        let mut zz = z.clone();
        scenario
            .apply_chunk(0, &mut e, &mut zz)
            .expect("random scenarios contain no hard faults");
        // Every delineation strategy must hold the no-panic/finite
        // contract under chaos — the weighted-window prior in
        // particular carries cross-beat state that corruption must
        // never poison.
        let config = PipelineConfig::paper_default(FS)
            .with_delineation(DelineationStrategy::ALL[strategy_idx]);
        let mut stream = BeatStream::new(config).unwrap();
        let mut beats = Vec::new();
        for (ce, cz) in e.chunks(chunk).zip(zz.chunks(chunk)) {
            beats.extend(stream.push_qualified(ce, cz).expect("soft faults never error"));
        }
        assert_finite(&beats)?;
    }

    #[test]
    fn sustained_contact_loss_hits_lost_within_cap_then_recovers(
        gap_start_s in 8.0f64..14.0,
        gap_len_s in 0.5f64..3.0,
        chunk in 16usize..300,
    ) {
        let (ecg, z) = template();
        let gap_start = (gap_start_s * FS) as usize;
        let gap_len = (gap_len_s * FS) as usize;
        let gap_end = gap_start + gap_len;
        let scenario =
            FaultScenario::parse(&format!("drop@{gap_start}+{gap_len}"), FS).unwrap();
        let mut e = ecg.clone();
        let mut zz = z.clone();
        scenario.apply_chunk(0, &mut e, &mut zz).unwrap();

        let config = PipelineConfig::paper_default(FS);
        let cap = (config.holdover_cap_s * FS) as usize;
        let mut stream = BeatStream::new(config).unwrap();
        let mut beats = Vec::new();
        // feed until just past the holdover cap inside the gap …
        let probe = gap_start + cap + 2;
        let mut fed = 0;
        while fed < probe {
            let n = chunk.min(probe - fed);
            beats.extend(stream.push_qualified(&e[fed..fed + n], &zz[fed..fed + n]).unwrap());
            fed += n;
        }
        let (ecg_state, z_state) = stream.channel_states();
        prop_assert!(ecg_state == SignalState::Lost, "ECG not Lost at cap + 2 samples");
        prop_assert!(z_state == SignalState::Lost, "Z not Lost at cap + 2 samples");

        // … then the rest of the record: contact returns, state re-locks
        while fed < e.len() {
            let n = chunk.min(e.len() - fed);
            beats.extend(stream.push_qualified(&e[fed..fed + n], &zz[fed..fed + n]).unwrap());
            fed += n;
        }
        let (ecg_state, z_state) = stream.channel_states();
        prop_assert!(ecg_state == SignalState::Good, "ECG did not recover to Good");
        prop_assert!(z_state == SignalState::Good, "Z did not recover to Good");
        assert_finite(&beats)?;
        // no emitted beat overlaps the gap, and emission resumes within
        // the re-lock budget (2 s warm-restart) plus a few beats
        let resume_deadline = gap_end + (6.0 * FS) as usize;
        prop_assert!(
            beats.iter().any(|qb| qb.report.r > gap_end && qb.report.r < resume_deadline),
            "no beat within 6 s of contact restoration (gap end {gap_end})"
        );
    }

    #[test]
    fn empty_scenario_is_bit_identical_to_the_clean_path(chunk in 32usize..500) {
        let (ecg, z) = template();
        let scenario = FaultScenario::new(FS);
        let mut e = ecg.clone();
        let mut zz = z.clone();
        scenario.apply_chunk(0, &mut e, &mut zz).unwrap();
        prop_assert!(&e == ecg, "an empty scenario must not touch the ECG buffer");
        prop_assert!(&zz == z, "an empty scenario must not touch the Z buffer");

        let mut direct = BeatStream::new(PipelineConfig::paper_default(FS)).unwrap();
        let mut faultless = BeatStream::new(PipelineConfig::paper_default(FS)).unwrap();
        for (ce, cz) in e.chunks(chunk).zip(zz.chunks(chunk)) {
            let a = direct.push(ce, cz).unwrap();
            let b: Vec<_> = faultless
                .push_qualified(ce, cz)
                .unwrap()
                .into_iter()
                .map(|qb| qb.report)
                .collect();
            prop_assert!(a == b, "qualified path diverged from the plain path");
        }
    }
}

/// The committed chaos-replay corpus: every seed that ever mattered.
/// A seed the randomized properties catch failing gets appended to the
/// file (with a dated comment) and is then replayed by
/// [`pinned_seed_corpus_replays_clean`] on every test run.
const SEED_CORPUS: &str = include_str!("../conformance/fault_seed_corpus.txt");

#[test]
fn pinned_seed_corpus_replays_clean() {
    let mut replayed = 0usize;
    let mut strategies_seen = [false; DelineationStrategy::ALL.len()];
    for line in SEED_CORPUS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let seed: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed seed-corpus line `{line}`"));
        let chunk: usize = parts.next().map_or(125, |c| {
            c.parse()
                .unwrap_or_else(|_| panic!("malformed chunk in `{line}`"))
        });
        assert!(chunk > 0, "chunk must be positive in `{line}`");
        let strategy = parts.next().map_or_else(DelineationStrategy::default, |s| {
            DelineationStrategy::parse(s).unwrap_or_else(|| panic!("unknown strategy in `{line}`"))
        });
        strategies_seen[DelineationStrategy::ALL
            .iter()
            .position(|v| *v == strategy)
            .expect("strategy is one of ALL")] = true;

        // Same body as `random_scenarios_never_panic_or_emit_non_finite`,
        // pinned to the corpus seed instead of a generated one.
        let (ecg, z) = template();
        let scenario = FaultScenario::random(seed, ecg.len(), FS);
        let mut e = ecg.clone();
        let mut zz = z.clone();
        scenario
            .apply_chunk(0, &mut e, &mut zz)
            .expect("random scenarios contain no hard faults");
        let config = PipelineConfig::paper_default(FS).with_delineation(strategy);
        let mut stream = BeatStream::new(config).unwrap();
        let mut beats = Vec::new();
        for (ce, cz) in e.chunks(chunk).zip(zz.chunks(chunk)) {
            beats.extend(
                stream
                    .push_qualified(ce, cz)
                    .expect("soft faults never error"),
            );
        }
        assert_finite(&beats)
            .unwrap_or_else(|err| panic!("seed {seed} chunk {chunk} strategy {strategy}: {err:?}"));
        replayed += 1;
    }
    assert!(
        replayed >= 10,
        "seed corpus lost entries ({replayed} replayed)"
    );
    assert!(
        strategies_seen.iter().all(|s| *s),
        "the pinned corpus must replay every delineation strategy \
         (covered: {strategies_seen:?})"
    );
}

proptest! {
    // scheduler cases drive 3 sessions × 20 hops each — keep the count low
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hard_faults_quarantine_without_failing_the_tick(
        seed in any::<u16>(),
        fail_at_s in 3usize..8,
    ) {
        let (ecg, z) = template();
        let ecg = Arc::new(ecg.clone());
        let z = Arc::new(z.clone());
        let chaos = Arc::new(FaultScenario::random(u64::from(seed), ecg.len(), FS));
        let hard = Arc::new(FaultScenario::parse(&format!("fail@{fail_at_s}s+1s"), FS).unwrap());
        let feeds = vec![
            SessionFeed::clean(Arc::clone(&ecg), Arc::clone(&z), 0).with_faults(hard),
            SessionFeed::clean(Arc::clone(&ecg), Arc::clone(&z), 977).with_faults(chaos),
            SessionFeed::clean(Arc::clone(&ecg), Arc::clone(&z), 1954),
        ];
        let mut sched = SessionScheduler::new(PipelineConfig::paper_default(FS), feeds).unwrap();
        let report = sched.run(20).expect("a faulted session must never fail the tick");
        prop_assert!(report.ticks == 20, "the fleet must keep advancing");
        prop_assert!(report.session_errors >= 1, "the hard fault was never hit");
        prop_assert!(report.session_recoveries >= 1, "the quarantined session never recovered");
        prop_assert!(report.beats > 0, "healthy sessions starved");
    }
}
