//! The deepest integration test in the workspace: the *entire* analog
//! acquisition chain is simulated at carrier rate — injection current,
//! body-impedance modulation, synchronous demodulation, decimation to the
//! physiological rate — and the recovered Z(t) is fed to the standard
//! pipeline. The hemodynamic parameters must match those obtained from
//! the directly generated impedance channel.

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::Pipeline;
use cardiotouch_device::demod::Demodulator;
use cardiotouch_device::injector::CurrentInjector;
use cardiotouch_dsp::resample;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

#[test]
fn carrier_level_simulation_matches_direct_channel() {
    let fs_phys = 250.0;
    let fs_sim = 20_000.0; // carrier simulation rate
    let carrier_hz = 2_000.0;
    let duration_s = 15.0;

    // 1. Ground-truth physiology and direct impedance channel.
    let population = Population::reference_five();
    let subject = &population.subjects()[0];
    let protocol = Protocol {
        duration_s,
        ..Protocol::paper_default()
    };
    let rec = PairedRecording::generate(subject, Position::One, carrier_hz, &protocol, 55)
        .expect("generation is deterministic");

    // 2. Upsample Z(t) to the carrier simulation rate and modulate it
    //    onto the injection current.
    let z_hi = resample::resample(rec.device_z(), fs_phys, fs_sim).expect("valid rates");
    let injector = CurrentInjector::new(carrier_hz, 0.2).expect("within the safety envelope");
    let v = injector.modulate(&z_hi, fs_sim).expect("valid carrier");

    // 3. Lock-in demodulation back to Z(t) at the physiological rate.
    let demod = Demodulator::new(carrier_hz, injector.amplitude_ma(), fs_sim, 60.0)
        .expect("valid demodulator");
    let mut z_rec = demod
        .demodulate_to_rate(&v, fs_phys)
        .expect("valid demodulation");
    z_rec.truncate(rec.device_z().len());
    assert!(
        z_rec.len() >= rec.device_z().len() - 1,
        "length after round trip: {} vs {}",
        z_rec.len(),
        rec.device_z().len()
    );

    // 4. The recovered channel must match the direct channel sample-wise
    //    once the demodulator's start-up transient has passed.
    let settle = (1.0 * fs_phys) as usize;
    let mut worst = 0.0f64;
    for (a, b) in z_rec[settle..].iter().zip(&rec.device_z()[settle..]) {
        worst = worst.max((a - b).abs());
    }
    assert!(worst < 1.0, "worst Z reconstruction error {worst} ohm");

    // 5. And the pipeline must produce the same hemodynamics from it.
    let ecg = &rec.device_ecg()[..z_rec.len()];
    let pipeline = Pipeline::new(PipelineConfig::paper_default(fs_phys)).expect("valid config");
    let direct = pipeline
        .analyze(rec.device_ecg(), rec.device_z())
        .expect("direct channel analyses");
    let via_carrier = pipeline
        .analyze(ecg, &z_rec)
        .expect("carrier channel analyses");

    let d = direct.intervals().expect("beats");
    let c = via_carrier.intervals().expect("beats");
    // The demodulator's start-up second perturbs the earliest beats and a
    // borderline beat or two may resolve differently, so the aggregate
    // tolerance is a couple of samples rather than exact.
    assert!(
        (d.lvet_mean_s - c.lvet_mean_s).abs() < 0.025,
        "LVET {} vs {}",
        d.lvet_mean_s,
        c.lvet_mean_s
    );
    assert!(
        (d.pep_mean_s - c.pep_mean_s).abs() < 0.025,
        "PEP {} vs {}",
        d.pep_mean_s,
        c.pep_mean_s
    );
    assert!(
        (direct.z0_ohm() - via_carrier.z0_ohm()).abs() < 2.0,
        "Z0 {} vs {}",
        direct.z0_ohm(),
        via_carrier.z0_ohm()
    );
}

#[test]
fn injection_respects_safety_envelope_across_study_frequencies() {
    // Every study frequency must admit a usable amplitude: enough current
    // that a 1 µV-noise front-end sees the cardiac ΔZ (~50 mΩ at the
    // hands) well above its floor.
    for f in CurrentInjector::STUDY_FREQUENCIES_HZ {
        let limit = CurrentInjector::safety_limit_ma(f);
        let injector = CurrentInjector::new(f, limit).expect("limit itself is admissible");
        // ΔZ of 50 mΩ at the chosen amplitude, in microvolts:
        let signal_uv = injector.amplitude_ma() * 0.05 * 1_000.0;
        assert!(
            signal_uv > 5.0,
            "at {f} Hz the safety-limited signal is only {signal_uv} µV"
        );
    }
}
