//! End-to-end checks of the observability subsystem wired through the
//! streaming stack: running a fleet must populate the process-wide
//! registry with per-hop latency quantiles and beat counters, and
//! snapshots must round-trip through the JSON exporter into the
//! dependency-free parser. (The enable gate is covered by scoped
//! registries in the `obs` crate's own tests — toggling the *global*
//! gate would race the concurrently running tests here.)
//!
//! All metrics here are process-wide, and the test binary runs its
//! tests concurrently — so every assertion is a *delta* or a `>=`
//! against a snapshot taken inside the test, never an exact global
//! value.

use std::sync::Arc;

use cardiotouch::config::PipelineConfig;
use cardiotouch::scheduler::{SessionFeed, SessionScheduler};
use cardiotouch::stream::BeatStream;
use cardiotouch_obs as obs;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

const FS: f64 = 250.0;

fn recording(seed: u64) -> PairedRecording {
    let population = Population::reference_five();
    PairedRecording::generate(
        &population.subjects()[0],
        Position::One,
        50_000.0,
        &Protocol {
            duration_s: 20.0,
            ..Protocol::paper_default()
        },
        seed,
    )
    .expect("valid session")
}

fn feeds(count: usize, rec: &PairedRecording) -> Vec<SessionFeed> {
    let ecg = Arc::new(rec.device_ecg().to_vec());
    let z = Arc::new(rec.device_z().to_vec());
    (0..count)
        .map(|i| SessionFeed::clean(Arc::clone(&ecg), Arc::clone(&z), (i * 977) % ecg.len()))
        .collect()
}

#[test]
fn scheduler_run_populates_hop_quantiles_and_beat_counters() {
    let before = obs::snapshot();
    let rec = recording(1);
    let mut sched =
        SessionScheduler::new(PipelineConfig::paper_default(FS), feeds(4, &rec)).unwrap();
    let report = sched.run(8).unwrap();
    assert!(report.beats > 0);

    let snap = obs::snapshot();
    let hops = |s: &obs::Snapshot| s.histogram("core.scheduler.hop_us").map_or(0, |h| h.count);
    let first_hops = |s: &obs::Snapshot| {
        s.histogram("core.scheduler.first_hop_us")
            .map_or(0, |h| h.count)
    };
    // 4 sessions × 8 ticks = 32 hop latency samples, de-skewed: the
    // warmup-skewed first tick (4 samples) lands in `first_hop_us`, the
    // 7 steady-state ticks (28 samples) in `hop_us`.
    assert!(hops(&snap) >= hops(&before) + 28, "hop histogram not fed");
    assert!(
        first_hops(&snap) >= first_hops(&before) + 4,
        "first-tick hop histogram not fed"
    );
    let hop = snap.histogram("core.scheduler.hop_us").unwrap();
    assert!(hop.p50 > 0.0 && hop.p99 >= hop.p50 && hop.p999 >= hop.p99);

    let delta =
        |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).map_or(0, |v| v);
    assert!(delta("core.scheduler.ticks") >= 8);
    assert!(
        delta("core.scheduler.beats") >= report.beats as u64,
        "scheduler beat counter lags its own report"
    );
    assert!(
        delta("core.stream.beats_emitted") >= report.beats as u64,
        "stream-level beat counter lags the scheduler total"
    );
    assert!(delta("ecg.online.beats_detected") > 0);
    assert!(delta("icg.online.beats_delineated") > 0);
    // The gauge is process-wide and last-writer-wins: our 4 sessions
    // are still alive at snapshot time, but a concurrently running
    // test could have written after us — so `>=`, never exact.
    assert!(
        snap.gauge("core.scheduler.sessions_active")
            .is_some_and(|v| v >= 4),
        "sessions_active gauge below our own fleet size"
    );
    // the per-hop span must have fed the stream hop histogram too
    let stream_hops = |s: &obs::Snapshot| s.histogram("core.stream.hop_us").map_or(0, |h| h.count);
    assert!(stream_hops(&snap) >= stream_hops(&before) + 32);
}

#[test]
fn sanitizer_counters_count_bursts_not_samples() {
    let before = obs::snapshot();
    let mut stream = BeatStream::new(PipelineConfig::paper_default(FS)).unwrap();
    let mut ecg = vec![0.0; 500];
    let z = vec![500.0; 500];
    // two separate NaN bursts: 30 + 20 glitched samples
    ecg[100..130].fill(f64::NAN);
    ecg[300..320].fill(f64::INFINITY);
    stream.push(&ecg, &z).unwrap();
    let snap = obs::snapshot();
    let delta =
        |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).map_or(0, |v| v);
    assert!(delta("core.stream.samples_sanitized") >= 50);
    assert!(delta("core.stream.holdover_events") >= 2);
}

#[test]
fn snapshot_round_trips_through_jsonl_exporter_and_parser() {
    // make sure at least one of each metric kind exists
    obs::counter("test.obs.events").add(7);
    obs::gauge("test.obs.level").set(-3);
    obs::histogram("test.obs.lat_us").record(1234);

    let mut exporter = obs::JsonlExporter::new(Vec::new());
    exporter.export(&obs::snapshot()).unwrap();
    exporter.export(&obs::snapshot()).unwrap();
    assert_eq!(exporter.lines(), 2);
    let bytes = exporter.into_inner();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        let doc = obs::json::parse(line).expect("exporter emits valid JSON");
        let counters = doc.get("counters").and_then(|v| v.as_obj()).unwrap();
        assert!(counters
            .get("test.obs.events")
            .and_then(|v| v.as_f64())
            .is_some_and(|v| v >= 7.0));
        let gauges = doc.get("gauges").and_then(|v| v.as_obj()).unwrap();
        // Tolerance-based, never exact-float: the value survives a
        // format-then-parse round trip, so allow representation noise.
        let level = gauges
            .get("test.obs.level")
            .and_then(|v| v.as_f64())
            .expect("gauge present");
        assert!((level - (-3.0)).abs() < 1e-9, "gauge level {level}");
        let hist = doc
            .get("histograms")
            .and_then(|v| v.get("test.obs.lat_us"))
            .expect("histogram present");
        // The histogram is log-linear with 32 sub-buckets per octave:
        // worst-case bucket relative width is 1/32 ≈ 3.1%, so any
        // reported quantile sits within ~1.6% of the recorded value.
        // Assert p50 ≈ 1234 within a documented 2% relative epsilon
        // instead of the old `> 0.0` (too weak) or an exact match
        // (flaky by construction).
        let p50 = hist.get("p50").and_then(|v| v.as_f64()).unwrap();
        assert!(
            (p50 - 1234.0).abs() <= 0.02 * 1234.0,
            "p50 {p50} outside 2% of the single recorded value 1234"
        );
        assert!(hist.get("count").and_then(|v| v.as_f64()).unwrap() >= 1.0);
    }
}
