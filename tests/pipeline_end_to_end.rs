//! Integration tests spanning the whole workspace: synthetic subject →
//! device channels → pipeline → hemodynamic parameters, checked against
//! the generator's ground truth.

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::Pipeline;
use cardiotouch::stream::BeatStream;
use cardiotouch_icg::points::XSearch;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;

const FS: f64 = 250.0;

fn record(subject_idx: usize, position: Position, seed: u64) -> PairedRecording {
    let population = Population::reference_five();
    PairedRecording::generate(
        &population.subjects()[subject_idx],
        position,
        50_000.0,
        &Protocol::paper_default(),
        seed,
    )
    .expect("generation is deterministic")
}

#[test]
fn every_subject_analyses_in_position_one() {
    let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    for si in 0..5 {
        let rec = record(si, Position::One, 100 + si as u64);
        let analysis = pipeline
            .analyze(rec.device_ecg(), rec.device_z())
            .unwrap_or_else(|e| panic!("subject {si} failed: {e}"));
        assert!(
            analysis.beats().len() >= 20,
            "subject {si}: only {} beats",
            analysis.beats().len()
        );
    }
}

#[test]
fn hr_matches_truth_for_all_subjects_and_positions() {
    let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    for si in 0..5 {
        for pos in Position::ALL {
            let rec = record(si, pos, 7);
            let analysis = pipeline
                .analyze(rec.device_ecg(), rec.device_z())
                .expect("analysis succeeds");
            let truth = rec.truth();
            let truth_hr =
                60.0 / (truth.beats.iter().map(|b| b.rr).sum::<f64>() / truth.beats.len() as f64);
            let hr = analysis.mean_hr_bpm().expect("enough beats");
            assert!(
                (hr - truth_hr).abs() < 3.0,
                "subject {si} {pos}: HR {hr} vs truth {truth_hr}"
            );
        }
    }
}

#[test]
fn intervals_track_truth_across_subjects() {
    let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    for si in 0..5 {
        let rec = record(si, Position::One, 21);
        let analysis = pipeline
            .analyze(rec.device_ecg(), rec.device_z())
            .expect("analysis succeeds");
        let st = analysis.intervals().expect("has valid beats");
        let truth = rec.truth();
        let truth_pep = truth.beats.iter().map(|b| b.pep).sum::<f64>() / truth.beats.len() as f64;
        let truth_lvet = truth.beats.iter().map(|b| b.lvet).sum::<f64>() / truth.beats.len() as f64;
        // Subjects 4 and 5 carry deliberately heavy touch-motion levels;
        // their PEP runs high because the outlier gate truncates only the
        // too-short side, so the tolerance is wider than for a clean
        // chest measurement.
        assert!(
            (st.pep_mean_s - truth_pep).abs() < 0.045,
            "subject {si}: PEP {} vs {}",
            st.pep_mean_s,
            truth_pep
        );
        assert!(
            (st.lvet_mean_s - truth_lvet).abs() < 0.045,
            "subject {si}: LVET {} vs {}",
            st.lvet_mean_s,
            truth_lvet
        );
    }
}

#[test]
fn r_peak_detection_matches_truth_indices() {
    let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    let rec = record(2, Position::One, 5);
    let analysis = pipeline
        .analyze(rec.device_ecg(), rec.device_z())
        .expect("analysis succeeds");
    let truth = &rec.truth().r_peaks;
    let hits = truth
        .iter()
        .filter(|&&t| analysis.r_peaks().iter().any(|&d| d.abs_diff(t) <= 5))
        .count();
    assert!(
        hits >= truth.len() - 1,
        "{hits}/{} truth R peaks found",
        truth.len()
    );
}

#[test]
fn both_x_variants_agree_on_clean_subject() {
    let rec = record(2, Position::One, 9);
    let global = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    let rt = Pipeline::new(
        PipelineConfig::paper_default(FS).with_x_search(XSearch::RtWindow { rt_s: 0.32 }),
    )
    .expect("valid config");
    let a = global
        .analyze(rec.device_ecg(), rec.device_z())
        .expect("analysis succeeds");
    let b = rt
        .analyze(rec.device_ecg(), rec.device_z())
        .expect("analysis succeeds");
    let la = a.intervals().expect("beats").lvet_mean_s;
    let lb = b.intervals().expect("beats").lvet_mean_s;
    assert!((la - lb).abs() < 0.025, "LVET {la} vs {lb}");
}

#[test]
fn streaming_and_batch_agree_on_aggregates() {
    let rec = record(0, Position::One, 31);
    let cfg = PipelineConfig::paper_default(FS);
    let batch = Pipeline::new(cfg)
        .expect("valid config")
        .analyze(rec.device_ecg(), rec.device_z())
        .expect("analysis succeeds");
    let mut stream = BeatStream::new(cfg).expect("valid config");
    let mut beats = Vec::new();
    for (e, z) in rec.device_ecg().chunks(125).zip(rec.device_z().chunks(125)) {
        beats.extend(stream.push(e, z).expect("valid chunk"));
    }
    assert!(!beats.is_empty());
    let s_lvet = beats.iter().map(|b| b.lvet_s).sum::<f64>() / beats.len() as f64;
    let b_lvet = batch.intervals().expect("beats").lvet_mean_s;
    assert!(
        (s_lvet - b_lvet).abs() < 0.03,
        "stream LVET {s_lvet} vs batch {b_lvet}"
    );
}

#[test]
fn quantized_channels_still_analyse() {
    // Run the device ADC model over both channels before analysis: the
    // pipeline must survive 12-bit quantization (the STM32L151's ADC).
    use cardiotouch_device::adc::Adc;
    let rec = record(0, Position::One, 13);
    // ECG spans ~±2 mV; Z sits near 450 Ω with ±1 Ω variation, so remove
    // the mean before quantizing (as the AC-coupled front-end would).
    let ecg_adc = Adc::paper_default(4.0).expect("valid adc");
    let z_adc = Adc::paper_default(8.0).expect("valid adc");
    let z0 = rec.device_z().iter().sum::<f64>() / rec.device_z().len() as f64;
    let ecg_q = ecg_adc.digitize(rec.device_ecg());
    let z_q: Vec<f64> = rec
        .device_z()
        .iter()
        .map(|v| z0 + z_adc.quantize(v - z0))
        .collect();
    let pipeline = Pipeline::new(PipelineConfig::paper_default(FS)).expect("valid config");
    let analysis = pipeline.analyze(&ecg_q, &z_q).expect("analysis succeeds");
    assert!(analysis.beats().len() >= 20);
    let st = analysis.intervals().expect("beats");
    assert!((0.2..0.4).contains(&st.lvet_mean_s));
}
