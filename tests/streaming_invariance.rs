//! Property-based tests for the incremental streaming engine: the
//! sequence of emitted beats is a function of the *signal*, never of the
//! chunking the transport happened to deliver — including degenerate
//! one-sample chunks and chunks far larger than any internal buffer —
//! and non-finite input samples can never poison the engine.

use cardiotouch::config::PipelineConfig;
use cardiotouch::pipeline::BeatReport;
use cardiotouch::stream::BeatStream;
use cardiotouch_physio::path::Position;
use cardiotouch_physio::scenario::{PairedRecording, Protocol};
use cardiotouch_physio::subject::Population;
use proptest::prelude::*;

const FS: f64 = 250.0;

fn recording(seed: u64) -> PairedRecording {
    let population = Population::reference_five();
    PairedRecording::generate(
        &population.subjects()[(seed % 5) as usize],
        Position::One,
        50_000.0,
        &Protocol {
            duration_s: 20.0,
            ..Protocol::paper_default()
        },
        seed,
    )
    .expect("valid session")
}

/// Streams a recording through a fresh engine in chunks whose sizes
/// cycle through `sizes`, returning every emission.
fn run_chunked(ecg: &[f64], z: &[f64], sizes: &[usize]) -> Vec<BeatReport> {
    let mut stream = BeatStream::new(PipelineConfig::paper_default(FS)).expect("valid config");
    let mut out = Vec::new();
    let mut at = 0;
    let mut k = 0;
    while at < ecg.len() {
        let take = sizes[k % sizes.len()].min(ecg.len() - at);
        k += 1;
        out.extend(
            stream
                .push(&ecg[at..at + take], &z[at..at + take])
                .expect("push"),
        );
        at += take;
    }
    out
}

/// Two emission sequences are identical in every field.
fn assert_same(a: &[BeatReport], b: &[BeatReport]) {
    assert_eq!(a.len(), b.len(), "emission counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.r, x.b, x.c, x.x), (y.r, y.b, y.c, y.x));
        assert_eq!(x.pep_s.to_bits(), y.pep_s.to_bits());
        assert_eq!(x.lvet_s.to_bits(), y.lvet_s.to_bits());
        assert_eq!(x.sv_kubicek_ml.to_bits(), y.sv_kubicek_ml.to_bits());
        assert_eq!(x.co_l_per_min.to_bits(), y.co_l_per_min.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any chunking — one-sample trickle, odd primes, or one chunk far
    /// larger than the engine's internal buffers — yields bitwise
    /// identical emissions for the same signal.
    #[test]
    fn emissions_are_chunk_size_invariant(
        seed in 0u64..200,
        sizes in prop::collection::vec(1usize..1200, 1..4),
    ) {
        let rec = recording(seed);
        let reference = run_chunked(rec.device_ecg(), rec.device_z(), &[250]);
        let chunked = run_chunked(rec.device_ecg(), rec.device_z(), &sizes);
        assert_same(&reference, &chunked);
    }

    /// One chunk spanning the *whole* recording (far beyond the windowed
    /// engine's old 20 s buffer) equals a sample-rate-paced feed.
    #[test]
    fn single_giant_chunk_matches_paced_feed(seed in 0u64..200) {
        let rec = recording(seed);
        let paced = run_chunked(rec.device_ecg(), rec.device_z(), &[250]);
        let giant = run_chunked(rec.device_ecg(), rec.device_z(), &[usize::MAX >> 1]);
        assert_same(&paced, &giant);
    }

    /// Non-finite and saturated samples anywhere in the stream never
    /// panic the engine, never halt emission permanently, and every
    /// emitted report stays finite and ordered.
    #[test]
    fn corrupted_samples_never_poison_the_engine(
        seed in 0u64..200,
        burst_at in 1000usize..3000,
        burst_len in 1usize..120,
        kind in 0u8..3,
    ) {
        let rec = recording(seed);
        let mut ecg = rec.device_ecg().to_vec();
        let mut z = rec.device_z().to_vec();
        let bad = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => 1.0e9, // rail-saturated ADC
        };
        for i in burst_at..(burst_at + burst_len).min(ecg.len()) {
            ecg[i] = bad;
            z[i] = bad;
        }
        let beats = run_chunked(&ecg, &z, &[125]);
        for b in &beats {
            prop_assert!(b.r < b.b && b.b < b.c && b.c < b.x);
            prop_assert!(b.pep_s.is_finite() && b.lvet_s.is_finite());
            prop_assert!(b.hr_bpm.is_finite() && b.hr_bpm > 0.0);
            prop_assert!(b.sv_kubicek_ml.is_finite());
            prop_assert!(b.sv_sramek_ml.is_finite());
            prop_assert!(b.co_l_per_min.is_finite());
        }
    }
}
