//! The position study must be **bit-identical at any thread count**: every
//! (subject, position, frequency) session derives its own RNG streams from
//! the study seed, so parallel evaluation order cannot leak into results.
//! This is the contract that makes `--threads` a pure wall-clock knob.

use cardiotouch::experiment::{run_position_study, StudyConfig, StudyOutcome};
use cardiotouch_physio::scenario::Protocol;
use cardiotouch_physio::subject::Population;
use rayon::ThreadPoolBuilder;

fn quick_config() -> StudyConfig {
    // 12 s sessions keep the test fast while preserving ≥ 12 beats.
    StudyConfig {
        protocol: Protocol {
            duration_s: 12.0,
            ..Protocol::paper_default()
        },
        ..StudyConfig::paper_default()
    }
}

fn run_with_threads(n: usize, population: &Population, config: &StudyConfig) -> StudyOutcome {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(|| run_position_study(population, config))
        .expect("study run")
}

#[test]
fn study_is_bit_identical_across_thread_counts() {
    let population = Population::reference_five();
    let config = quick_config();
    let serial = run_with_threads(1, &population, &config);
    for n in [2, 4, 8] {
        let parallel = run_with_threads(n, &population, &config);
        // StudyOutcome's PartialEq compares every f64 exactly, so this is
        // bitwise equality of all tables, profiles, errors and rows (no
        // value is NaN — the serial run's assertions below guard that).
        assert_eq!(serial, parallel, "{n} threads changed the study outcome");
    }
    assert!(serial.summary.mean_correlation.is_finite());
    assert!(serial.summary.worst_error.is_finite());
}

#[test]
fn same_seed_reproduces_the_same_outcome() {
    let population = Population::reference_five();
    let config = quick_config();
    let a = run_with_threads(2, &population, &config);
    let b = run_with_threads(2, &population, &config);
    assert_eq!(a, b, "same seed and thread count must reproduce exactly");
}

#[test]
fn different_seed_changes_the_outcome() {
    let population = Population::reference_five();
    let config = quick_config();
    let other = StudyConfig {
        seed: config.seed + 1,
        ..config.clone()
    };
    let a = run_with_threads(2, &population, &config);
    let b = run_with_threads(2, &population, &other);
    assert_ne!(a, b, "the seed must actually drive the session RNG");
}
