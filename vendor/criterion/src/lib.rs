//! Offline vendored stand-in for `criterion`.
//!
//! The build container has no access to crates.io, so the real criterion
//! crate can never resolve. This stand-in implements the subset of its API
//! that the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with throughput/sample-size knobs,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timing loop.
//!
//! It reports median iteration time and derived throughput per benchmark
//! on stdout. It intentionally performs no statistical outlier analysis,
//! no warm-up tuning, no HTML reports and no baseline storage; the
//! workspace's regression tracking lives in the `perf_bench` binary
//! instead, which emits machine-readable JSON.
//!
//! Measurements use [`std::hint::black_box`] to keep the optimizer from
//! deleting benchmarked work, same as upstream.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark unless overridden with
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Target wall-clock time for one sample; the per-sample iteration count
/// is calibrated so a sample takes roughly this long.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// Units processed per iteration, used to derive throughput figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements (e.g. samples).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A set of related benchmarks sharing throughput and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rate figures.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.throughput, self.sample_size, f);
        self
    }

    /// Times a closure over a borrowed input under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_benchmark(&name, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (Upstream finalizes reports here; the stand-in
    /// prints per-benchmark lines eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count, collects samples and prints the median.
fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the batch until one batch reaches the target time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        // Aim directly for the target using the observed per-iter time.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64
        } else {
            iters * 2
        };
        iters = needed.clamp(iters + 1, iters * 10);
    }

    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s", n as f64 / median * 1e3),
        Throughput::Bytes(n) => format!(" ({:.3} MB/s", n as f64 / median * 1e3),
    });
    println!(
        "{name:<55} time: {}{}",
        format_ns(median),
        rate.map(|r| r + ")").unwrap_or_default()
    );
}

/// Formats a nanosecond figure with an appropriate unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_batch() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0, "routine must have been invoked");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(512.0), "512.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
    }
}
