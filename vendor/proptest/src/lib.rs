//! Offline vendored stand-in for `proptest`.
//!
//! The build container has no access to crates.io, so this crate
//! reimplements the subset of the `proptest` API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`];
//! * [`strategy::Strategy`] for numeric ranges, [`strategy::Just`],
//!   [`arbitrary::any`] and [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   deterministic seed, which reproduces it exactly.
//! * **Deterministic by default.** Case seeds derive from the test name
//!   and case index, so runs are reproducible without a persistence file
//!   (`.proptest-regressions` files are ignored).
//! * Case count defaults to 256 and can be overridden globally with the
//!   `PROPTEST_CASES` environment variable or per-block with
//!   `ProptestConfig::with_cases`.

pub mod test_runner {
    //! Deterministic case scheduling and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-block runner configuration.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is skipped.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }

    /// Deterministic RNG for one `(test, case)` pair.
    #[must_use]
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = (rng.gen::<u64>() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[must_use]
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let u: $t = rng.gen();
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let u: $t = rng.gen();
                    self.start() + u * (self.end() - self.start())
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.gen::<u64>() % width) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start() <= self.end(), "empty integer range strategy");
                    let width = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.gen::<u64>() % width) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            (rng.next_u64() & 0xFF) as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            (rng.next_u64() & 0xFFFF) as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u32()
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for a primitive type, e.g. `any::<u16>()`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.gen::<u64>() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` module path used as `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}/{} (deterministic; rerun reproduces it): {}",
                                stringify!($name), case, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current generated case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current generated case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("t", 4);
        assert_ne!(
            crate::test_runner::case_rng("t", 3).next_u64(),
            c.next_u64()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn float_ranges_stay_in_bounds(v in -2.5f64..7.5) {
            prop_assert!((-2.5..7.5).contains(&v));
        }

        #[test]
        fn int_ranges_stay_in_bounds(v in 3u8..=9) {
            prop_assert!((3..=9).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_rejects_cases(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v % 2, 1);
        }
    }
}
