//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container for this repository has no access to crates.io, so
//! the workspace vendors the *exact* subset of the `rand 0.8` API it uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()` and `gen::<bool>()`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a small, well-studied, portable PRNG with 256-bit state.
//! It is **not** the ChaCha12 generator real `rand` uses, so absolute
//! random streams differ from upstream; every consumer in this workspace
//! only relies on determinism-per-seed and statistical quality, both of
//! which hold.
//!
//! Like upstream, `StdRng` is documented as *not* reproducible across
//! versions; within this workspace it is fully deterministic, which is
//! what the experiment harness requires.

/// The core trait every generator implements: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait StandardSample {
    /// Draws one uniformly distributed value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the
    /// construction upstream `rand` uses for `Standard` on `f64`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// User-facing convenience methods over [`RngCore`], mirroring
/// `rand::Rng`. Blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value uniformly: `f64`/`f32` in `[0, 1)`, fair `bool`,
    /// full-range unsigned integers.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, spreading it over the full
    /// state via SplitMix64 (the same stream-derivation idea upstream
    /// `rand` uses for its `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256-bit state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_700..5_300).contains(&heads), "{heads}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut StdRng = &mut rng;
        let v = draw(dynrng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
