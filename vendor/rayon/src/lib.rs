//! Offline vendored stand-in for `rayon`.
//!
//! The build container has no access to crates.io, so the real rayon crate
//! can never resolve. This stand-in provides the subset the workspace uses
//! — [`prelude::IntoParallelIterator`] / [`prelude::ParallelIterator`]
//! with `map` + `collect`, [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! and [`current_num_threads`] — implemented with `std::thread::scope`
//! over a shared work queue, entirely in safe code.
//!
//! Unlike upstream rayon there is no work-stealing deque and no persistent
//! worker pool: each `collect` spawns scoped OS threads that drain an
//! index-tagged queue and the results are re-ordered before returning.
//! That is the right trade-off here because the workspace only
//! parallelizes coarse session-level work (each unit is milliseconds of
//! DSP), where thread spawn cost is noise. Ordering — and therefore
//! bit-identical output at any thread count — is guaranteed by tagging
//! each item with its source index.
//!
//! Thread-count resolution order: [`ThreadPool::install`] override on the
//! current thread, then [`ThreadPoolBuilder::build_global`], then the
//! `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global thread count set by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static INSTALLED_NUM_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the number of threads parallel iterators will use on this
/// thread, honoring `install` overrides, the global pool, the
/// `RAYON_NUM_THREADS` environment variable and the machine's available
/// parallelism, in that order.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_NUM_THREADS.with(Cell::get) {
        return n;
    }
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Error returned by [`ThreadPoolBuilder::build`]; the stand-in never
/// actually fails to build, so this is uninhabited in practice but kept
/// for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with automatic thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; 0 means automatic.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle carrying the configured thread count.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Sets the process-wide default thread count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = self.build()?;
        GLOBAL_NUM_THREADS.store(pool.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Handle scoping a thread count over a region of code.
///
/// The stand-in holds no live workers; threads are spawned per `collect`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_NUM_THREADS.with(|c| c.replace(Some(self.num_threads)));
        // Restore on unwind too, so a panicking op doesn't leak the
        // override into unrelated work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_NUM_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// Returns this pool's configured thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Order-preserving parallel map: applies `f` to every item using up to
/// [`current_num_threads`] scoped threads draining a shared queue.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                let Some((index, item)) = job else { break };
                let result = f(item);
                done.lock().expect("results poisoned").push((index, result));
            });
        }
    });
    let mut tagged = done.into_inner().expect("results poisoned");
    tagged.sort_unstable_by_key(|&(index, _)| index);
    tagged.into_iter().map(|(_, result)| result).collect()
}

pub mod iter {
    //! Parallel iterator traits and adapters (`rayon::iter` subset).

    use super::parallel_map;

    /// Conversion into a parallel iterator, by value.
    pub trait IntoParallelIterator {
        /// Element type produced by the iterator.
        type Item: Send;
        /// Concrete parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Borrowing conversion into a parallel iterator over `&T`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type produced by the iterator (a reference).
        type Item: Send + 'data;
        /// Concrete parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Creates a parallel iterator over references into `self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// The parallel-iterator operations the workspace uses.
    ///
    /// Execution is deferred to [`ParallelIterator::collect`]; adapters
    /// only record the mapping closure.
    pub trait ParallelIterator: Sized {
        /// Element type produced by the iterator.
        type Item: Send;

        /// Materializes the items, running any recorded maps in parallel.
        fn run(self) -> Vec<Self::Item>;

        /// Maps every element through `f` (in parallel at execution).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Executes the pipeline and collects into `C`.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_ordered_vec(self.run())
        }

        /// Executes the pipeline for its effects, discarding results.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            self.map(f).run();
        }
    }

    /// Collection types buildable from an ordered parallel result.
    pub trait FromParallelIterator<T> {
        /// Builds `Self` from items in their original source order.
        fn from_ordered_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
            items.into_iter().collect()
        }
    }

    /// Base parallel iterator over an owned set of items.
    #[derive(Debug)]
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// Lazy map adapter; the closure runs in parallel at `collect`.
    #[derive(Debug)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn run(self) -> Vec<R> {
            parallel_map(self.base.run(), &self.f)
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<usize>;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.as_slice().par_iter()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_is_order_stable_across_thread_counts() {
        let serial: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| (0..64).into_par_iter().map(|i| (i as u64) << 3).collect());
        for n in [2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool");
            let parallel: Vec<u64> =
                pool.install(|| (0..64).into_par_iter().map(|i| (i as u64) << 3).collect());
            assert_eq!(serial, parallel, "thread count {n} changed results");
        }
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let ok: Result<Vec<usize>, String> = vec![1usize, 2, 3]
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.expect("all ok"), vec![1, 2, 3]);

        let err: Result<Vec<usize>, String> = vec![1usize, 2, 3]
            .into_par_iter()
            .map(|i| {
                if i == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.expect_err("second item fails"), "boom");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(
            INSTALLED_NUM_THREADS.with(std::cell::Cell::get),
            Some(3),
            "override must not leak past install"
        );
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = data.par_iter().map(|v| v * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
        assert_eq!(data.len(), 3, "source still usable after par_iter");
    }
}
