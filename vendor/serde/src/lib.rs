//! Offline vendored stand-in for `serde`.
//!
//! The build container has no access to crates.io, and nothing in the
//! workspace serializes data through serde at runtime — the dependency
//! exists only behind optional `serde` cargo features on model types.
//! This stand-in keeps those feature gates compiling: [`Serialize`] and
//! [`Deserialize`] are marker traits blanket-implemented for every type,
//! and the `derive` feature re-exports no-op derive macros.
//!
//! If real serialization is ever needed, replace this vendored crate with
//! the upstream one; no workspace code changes are required.

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        assert_serialize::<Vec<f64>>();
        assert_deserialize::<(u8, String)>();
    }
}
