//! Offline vendored stand-in for `serde_derive`.
//!
//! The vendored `serde` crate blanket-implements its marker traits for
//! every type, so these derives legitimately have nothing to generate —
//! they exist so `#[derive(serde::Serialize, serde::Deserialize)]` (and
//! the `cfg_attr` forms used throughout the workspace) compile unchanged.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
